//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! suites use: the [`proptest!`] macro, range / tuple / `any::<bool>()`
//! strategies, [`collection::vec`], [`Strategy::prop_map`], and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Each test case is generated from a deterministic per-test,
//! per-case seed, and a failure reports that case number and seed so the
//! exact inputs can be regenerated. Swap this path dependency for crates.io
//! `proptest = "1"` once the build environment has network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// The RNG handed to strategies. Re-exported so the [`proptest!`] expansion
/// can name it.
pub type TestRng = StdRng;

/// A failed property, carried out of the test-case closure by
/// `prop_assert!` and friends.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        Self(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_strategy_for_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A.0, B.1);
impl_strategy_for_tuple!(A.0, B.1, C.2);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngExt::random(rng)
    }
}

/// Strategy over every value of `T`; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (`any::<bool>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Range, Strategy, TestRng};

    /// Length specification for [`vec`]: an exact size or a half-open range,
    /// mirroring proptest's `SizeRange` conversions.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            Self(range)
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rand::RngExt::random_range(rng, self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property suites import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Namespace mirror so `prop::collection::vec` resolves as in real
    /// proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// FNV-1a, used to derive a per-test base seed from the test's path.
#[doc(hidden)]
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fails the current property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, …)`
/// becomes a normal `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let seed = base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut rng: $crate::TestRng = $crate::__SeedableRng::seed_from_u64(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!("property failed at case {case} (seed {seed:#x}): {err}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5f64..1.5, n in 3usize..9) {
            prop_assert!((0.5..1.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn map_and_vec_compose(
            v in prop::collection::vec((0u32..10, 0.0f64..1.0).prop_map(|(a, b)| f64::from(a) + b), 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (0.0..11.0).contains(&x)));
            prop_assert!(usize::from(flag) <= 1);
        }
    }

    #[test]
    fn fnv_differs_across_names() {
        assert_ne!(super::fnv1a("a::b"), super::fnv1a("a::c"));
    }
}
