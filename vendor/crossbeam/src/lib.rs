//! Offline stand-in for `crossbeam`, backed by `std::sync` primitives.
//!
//! Provided surfaces: [`thread::scope`] / [`thread::Scope::spawn`] (used by
//! the parallel experiment runner) and [`channel`] (MPMC channels used by
//! the `crowd_serve` ingestion pipeline). One semantic difference in
//! `thread`: if a spawned thread panics, the panic propagates when the
//! scope joins (std behaviour) instead of surfacing as the `Err` arm, so the
//! returned `Result` is always `Ok`. Swap this path dependency for crates.io
//! `crossbeam` once the build environment has network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;

pub mod thread {
    //! Scoped threads with crossbeam's closure signature.

    use std::any::Any;

    /// Handle for spawning scoped threads; mirrors `crossbeam::thread::Scope`.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread running `f`, which receives the scope so
        /// it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope whose spawned threads are all joined before
    /// this returns.
    ///
    /// # Errors
    /// Never returns `Err` in this stand-in; a panicking child thread
    /// propagates its panic at join instead.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_share_stack_data_and_join() {
        let counter = AtomicU32::new(0);
        let result = super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            42
        })
        .expect("no panics");
        assert_eq!(result, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
