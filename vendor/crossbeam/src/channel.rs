//! Multi-producer multi-consumer channels with crossbeam-channel's API
//! surface, backed by a `Mutex<VecDeque>` plus two condvars.
//!
//! Provided: [`bounded`] / [`unbounded`] construction, blocking
//! [`Sender::send`] / [`Receiver::recv`], the non-blocking `try_` variants,
//! [`Receiver::recv_timeout`], channel introspection (`len`, `is_empty`,
//! `capacity`), and cloneable endpoints on both sides (the property the
//! real crate has and `std::sync::mpsc` lacks). Disconnection follows
//! crossbeam semantics: a send fails once every receiver is gone; a receive
//! drains buffered messages first and only then reports disconnection.
//!
//! One deliberate difference: `bounded(0)` is normalised to capacity 1
//! instead of a rendezvous channel (sends may complete before the matching
//! receive arrives). No workspace code relies on rendezvous hand-off.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// The sending side failed because all receivers were dropped; the
/// unsendable message is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// A non-blocking send failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers were dropped.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Full(_) => write!(f, "sending on a full channel"),
            Self::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// The receiving side failed because the channel is empty and all senders
/// were dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// A non-blocking receive failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders were dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "receiving on an empty channel"),
            Self::Disconnected => write!(f, "receiving on an empty and disconnected channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// A receive with a deadline failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the channel still empty.
    Timeout,
    /// The channel is empty and all senders were dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => write!(f, "timed out waiting on an empty channel"),
            Self::Disconnected => write!(f, "receiving on an empty and disconnected channel"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

impl<T> Shared<T> {
    fn new(capacity: Option<usize>) -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Creates a channel holding at most `cap` in-flight messages; sends block
/// while the channel is full (the backpressure mechanism). `cap = 0` is
/// normalised to 1 (see the module docs).
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(Some(cap.max(1)));
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Creates a channel of unlimited capacity; sends never block.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(None);
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers once every clone is dropped.
pub struct Sender<T> {
    shared: std::sync::Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while the channel is full.
    ///
    /// # Errors
    /// Returns the message if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .shared
                        .not_full
                        .wait(st)
                        .unwrap_or_else(|p| p.into_inner());
                }
                _ => {
                    st.queue.push_back(msg);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Sends `msg` without blocking.
    ///
    /// # Errors
    /// [`TrySendError::Full`] when at capacity, [`TrySendError::Disconnected`]
    /// when every receiver is gone.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.capacity {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// `true` when no messages are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shared.lock().queue.is_empty()
    }

    /// The channel's capacity (`None` for unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }
}

/// The receiving half of a channel. Cloneable: any number of consumers may
/// compete for messages (each message is delivered to exactly one).
pub struct Receiver<T> {
    shared: std::sync::Arc<Shared<T>>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    ///
    /// # Errors
    /// Fails only when the channel is empty *and* every sender has been
    /// dropped; buffered messages are always delivered first.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Receives a message without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is buffered,
    /// [`TryRecvError::Disconnected`] when additionally every sender is gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receives a message, blocking for at most `timeout`.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] when the deadline passes,
    /// [`RecvTimeoutError::Disconnected`] on an empty disconnected channel.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(st, remaining)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Number of messages currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// `true` when no messages are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shared.lock().queue.is_empty()
    }

    /// The channel's capacity (`None` for unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn unbounded_fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 5);
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn recv_fails_only_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_once_receivers_gone() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
        assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(tx.capacity(), Some(2));
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| tx.send(1).unwrap()); // blocks until the recv below
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 0);
            assert_eq!(rx.recv().unwrap(), 1);
        });
    }

    #[test]
    fn mpmc_every_message_delivered_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 500;
        let (tx, rx) = bounded(8);
        let received = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.send(p * PER_PRODUCER + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..CONSUMERS {
                let rx = rx.clone();
                let received = &received;
                let sum = &sum;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        received.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
        });
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(received.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
