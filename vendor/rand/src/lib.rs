//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build container has no registry access, so this workspace vendors the
//! tiny slice of `rand` 0.9 it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] extension methods
//! `random::<T>()` / `random_range(..)` over any [`Rng`]. The generator is
//! xoshiro256++ (seeded through SplitMix64), which is deterministic,
//! portable, and statistically strong enough for the workspace's
//! seeded simulations and moment-matching tests.
//!
//! Swap this path dependency for the real crates.io `rand = "0.9"` once the
//! build environment has network access; no source changes should be needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u64`s. Mirrors the role of `rand_core::RngCore`.
pub trait Rng {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from explicit seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for sampling values and ranges from any [`Rng`].
///
/// Mirrors `rand 0.9`'s `Rng` extension trait (`random`, `random_range`,
/// `random_bool`); kept separate so generic code can bound on the object-safe
/// [`Rng`] while call sites import `RngExt` for the methods.
pub trait RngExt: Rng {
    /// Samples a value from the standard distribution of `T`:
    /// `f64`/`f32` uniform in `[0, 1)`, integers uniform over their full
    /// range, `bool` fair.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Distributions sampleable by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / 16_777_216.0)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges sampleable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, span)` via Lemire's multiply-shift rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every u64 pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against round-up onto the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // 53-bit numerator over (2^53 − 1) → uniform in [0, 1].
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_991.0);
        lo + u * (hi - lo)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as crates.io `StdRng` (which is ChaCha12); all
    /// workspace code treats seeds as opaque, so only determinism and
    /// statistical quality matter.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's recommendation.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.random_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..500 {
            let v = rng.random_range(3u32..=4);
            assert!((3..=4).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
            let w = rng.random_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(6);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_700..5_300).contains(&heads), "heads={heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rng.random_range(5usize..5);
    }
}
