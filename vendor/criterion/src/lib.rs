//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the API surface the workspace's five bench targets use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros) with a deliberately
//! lightweight measurement loop: each benchmark is warmed up once and timed
//! over a handful of iterations, and the mean per-iteration time is printed.
//! No statistics, plots, or baselines — enough to keep the benches
//! compiling, runnable and indicative. Swap this path dependency for
//! crates.io `criterion` once the build environment has network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up call).
const TIMED_ITERS: u32 = 5;

/// Entry point handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into(), &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into(), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { total_nanos: 0.0 };
        f(&mut bencher);
        eprintln!("  {}/{id} … {:.1} ns/iter", self.name, bencher.total_nanos);
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    total_nanos: f64,
}

impl Bencher {
    /// Calls `f` once to warm up, then [`TIMED_ITERS`] timed times,
    /// recording the mean wall-clock per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            std::hint::black_box(f());
        }
        self.total_nanos = start.elapsed().as_secs_f64() * 1e9 / f64::from(TIMED_ITERS);
    }

    /// Like [`Bencher::iter`], but each routine call consumes a fresh input
    /// produced by `setup` *outside* the timed region — the crates.io
    /// `iter_batched` shape, used when the measured operation mutates or
    /// consumes state that would otherwise have to be cloned inside the
    /// timing loop.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = std::time::Duration::ZERO;
        for _ in 0..TIMED_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.total_nanos = total.as_secs_f64() * 1e9 / f64::from(TIMED_ITERS);
    }
}

/// How inputs are batched for [`Bencher::iter_batched`]. The stub times one
/// input per routine call regardless; the variants exist for API
/// compatibility with crates.io criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: crates.io batches many per measurement.
    SmallInput,
    /// Large inputs: crates.io uses few per batch.
    LargeInput,
    /// Exactly one input per routine call.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function label and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => f.write_str(func),
            (None, Some(p)) => f.write_str(p),
            (None, None) => f.write_str("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        Self {
            function: Some(function.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        Self {
            function: Some(function),
            parameter: None,
        }
    }
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_ids_render() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.bench_function("direct", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("fn", 3), &2u64, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(calls >= TIMED_ITERS);
        assert_eq!(BenchmarkId::new("a", 1).to_string(), "a/1");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
