//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only [`Mutex`] and [`RwLock`] are provided — the types this workspace
//! uses. The poison-free API is emulated by unwrapping poison into the inner
//! guard (matching parking_lot's semantics of simply continuing after a
//! panicking holder). Swap this path dependency for crates.io `parking_lot`
//! once the build environment has network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Shared-access RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive-access RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock with parking_lot's poison-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until no writer holds the lock.
    /// Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive access, blocking until the lock is free. Never
    /// poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access through an exclusive borrow — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A mutual-exclusion lock with parking_lot's poison-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4_000);
    }

    #[test]
    fn rwlock_read_write_roundtrip() {
        let mut l = super::RwLock::new(7u32);
        assert_eq!(*l.read(), 7);
        *l.write() += 1;
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 9);
    }

    #[test]
    fn rwlock_concurrent_readers_and_writers() {
        let l = super::RwLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..500 {
                        *l.write() += 1;
                    }
                });
            }
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..500 {
                        let v = *l.read();
                        assert!(v <= 1_500);
                    }
                });
            }
        });
        assert_eq!(l.into_inner(), 1_500);
    }
}
