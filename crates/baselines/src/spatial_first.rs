//! The SF (spatial-first) assignment baseline.

use crowd_geo::KdTree;

use crowd_core::{AssignContext, Assigner, Assignment, TaskId, WorkerId};

/// Assigns each requesting worker their `h` *closest* tasks not yet
/// answered by them.
///
/// This is the paper's SF baseline: it "optimized the distance between
/// workers and tasks… assigning the closest undone task(s)". It embodies
/// the spatial-crowdsourcing mindset (minimise travel) that the paper argues
/// is the wrong objective for labelling quality — nearby tasks are not
/// always the most informative ones, and workers cluster spatially, so some
/// tasks drown in answers while others starve (Table II).
///
/// Distances honour multi-location workers: a task's effective distance is
/// the minimum over the worker's locations (same semantics as the inference
/// model). Queries run on a k-d tree over task locations.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpatialFirst;

impl SpatialFirst {
    /// Creates the baseline.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Assigner for SpatialFirst {
    fn assign(&mut self, ctx: &AssignContext<'_>, workers: &[WorkerId], h: usize) -> Assignment {
        let mut per_worker = Vec::with_capacity(workers.len());
        if ctx.tasks.is_empty() || h == 0 {
            return Assignment::new(workers.iter().map(|&w| (w, Vec::new())).collect());
        }
        let tree = KdTree::build(&ctx.tasks.locations());
        for &w in workers {
            let worker = ctx.workers.worker(w);
            let filter = |id: u32| {
                !ctx.log.has_answered(w, TaskId(id)) && !ctx.reserved.contains(w, TaskId(id))
            };
            let chosen: Vec<TaskId> = if worker.locations.len() == 1 {
                tree.k_nearest(worker.locations[0], h, filter)
                    .into_iter()
                    .map(|n| TaskId(n.id))
                    .collect()
            } else {
                // Multi-location: merge per-location k-NN by minimum
                // distance, then take the h best.
                let mut best: Vec<(f64, u32)> = Vec::new();
                for &loc in &worker.locations {
                    for n in tree.k_nearest(loc, h, filter) {
                        match best.iter_mut().find(|(_, id)| *id == n.id) {
                            Some(entry) => entry.0 = entry.0.min(n.distance),
                            None => best.push((n.distance, n.id)),
                        }
                    }
                }
                best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                best.into_iter().take(h).map(|(_, id)| TaskId(id)).collect()
            };
            per_worker.push((w, chosen));
        }
        Assignment::new(per_worker)
    }

    fn name(&self) -> &'static str {
        "SF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::{
        synthetic_task, Answer, AnswerLog, DistanceFunctionSet, Distances, InitStrategy, LabelBits,
        ModelParams, ReservationSet, TaskSet, Worker, WorkerPool,
    };
    use crowd_geo::Point;

    struct World {
        tasks: TaskSet,
        workers: WorkerPool,
        log: AnswerLog,
        params: ModelParams,
        fset: DistanceFunctionSet,
        distances: Distances,
        reserved: ReservationSet,
    }

    impl World {
        fn ctx(&self) -> AssignContext<'_> {
            AssignContext {
                tasks: &self.tasks,
                workers: &self.workers,
                log: &self.log,
                params: &self.params,
                fset: &self.fset,
                alpha: 0.5,
                distances: &self.distances,
                reserved: &self.reserved,
                threads: 1,
            }
        }
    }

    fn line_world(workers: Vec<Worker>) -> World {
        // Tasks at x = 0, 1, 2, 3, 4 on a line.
        let tasks = TaskSet::new(
            (0..5)
                .map(|i| synthetic_task(format!("t{i}"), Point::new(i as f64, 0.0), 2))
                .collect(),
        );
        let workers = WorkerPool::from_workers(workers).unwrap();
        let log = AnswerLog::new(tasks.len(), workers.len());
        let params = ModelParams::init(&tasks, workers.len(), 3, InitStrategy::Uniform, &log);
        let distances = Distances::from_tasks(&tasks);
        World {
            tasks,
            workers,
            log,
            params,
            fset: DistanceFunctionSet::paper_default(),
            distances,
            reserved: ReservationSet::new(),
        }
    }

    #[test]
    fn picks_nearest_tasks() {
        let world = line_world(vec![Worker::at("w", Point::new(0.1, 0.0))]);
        let mut sf = SpatialFirst::new();
        let a = sf.assign(&world.ctx(), &[WorkerId(0)], 2);
        assert_eq!(
            a.tasks_for(WorkerId(0)).unwrap(),
            &[TaskId(0), TaskId(1)],
            "closest two tasks on the line"
        );
    }

    #[test]
    fn skips_answered_tasks() {
        let mut world = line_world(vec![Worker::at("w", Point::new(0.0, 0.0))]);
        world
            .log
            .push(
                &world.tasks,
                Answer {
                    worker: WorkerId(0),
                    task: TaskId(0),
                    bits: LabelBits::from_slice(&[true, false]),
                    distance: 0.0,
                },
            )
            .unwrap();
        let mut sf = SpatialFirst::new();
        let a = sf.assign(&world.ctx(), &[WorkerId(0)], 2);
        assert_eq!(a.tasks_for(WorkerId(0)).unwrap(), &[TaskId(1), TaskId(2)]);
    }

    #[test]
    fn skips_reserved_tasks() {
        let mut world = line_world(vec![Worker::at("w", Point::new(0.0, 0.0))]);
        world.reserved.reserve(WorkerId(0), TaskId(0));
        let mut sf = SpatialFirst::new();
        let a = sf.assign(&world.ctx(), &[WorkerId(0)], 2);
        assert_eq!(
            a.tasks_for(WorkerId(0)).unwrap(),
            &[TaskId(1), TaskId(2)],
            "in-flight pair skipped like an answered one"
        );
    }

    #[test]
    fn multi_location_worker_uses_min_distance() {
        // Locations near both ends of the line: the two nearest tasks are
        // the extremes, not consecutive ones.
        let world = line_world(vec![Worker::with_locations(
            "commuter",
            vec![Point::new(0.0, 0.1), Point::new(4.0, 0.1)],
        )]);
        let mut sf = SpatialFirst::new();
        let a = sf.assign(&world.ctx(), &[WorkerId(0)], 2);
        let mut got = a.tasks_for(WorkerId(0)).unwrap().to_vec();
        got.sort();
        assert_eq!(got, vec![TaskId(0), TaskId(4)]);
    }

    #[test]
    fn two_workers_may_share_a_task() {
        let world = line_world(vec![
            Worker::at("a", Point::new(2.0, 0.1)),
            Worker::at("b", Point::new(2.0, -0.1)),
        ]);
        let mut sf = SpatialFirst::new();
        let a = sf.assign(&world.ctx(), &[WorkerId(0), WorkerId(1)], 1);
        assert_eq!(a.tasks_for(WorkerId(0)).unwrap(), &[TaskId(2)]);
        assert_eq!(a.tasks_for(WorkerId(1)).unwrap(), &[TaskId(2)]);
    }

    #[test]
    fn partial_hit_when_few_tasks_remain() {
        let mut world = line_world(vec![Worker::at("w", Point::new(0.0, 0.0))]);
        for t in 0..4u32 {
            world
                .log
                .push(
                    &world.tasks,
                    Answer {
                        worker: WorkerId(0),
                        task: TaskId(t),
                        bits: LabelBits::from_slice(&[true, false]),
                        distance: 0.1,
                    },
                )
                .unwrap();
        }
        let mut sf = SpatialFirst::new();
        let a = sf.assign(&world.ctx(), &[WorkerId(0)], 3);
        assert_eq!(a.tasks_for(WorkerId(0)).unwrap(), &[TaskId(4)]);
        assert_eq!(sf.name(), "SF");
    }
}
