//! The common inference interface and the core-model adapter.

use crowd_core::model::{run_em, EmConfig};
use crowd_core::{AnswerLog, InferenceResult, TaskSet};

/// A result-inference algorithm: answers in, per-label decisions out.
///
/// Implemented by [`MajorityVote`](crate::MajorityVote),
/// [`DawidSkene`](crate::DawidSkene) and the core model adapter
/// [`LocationAware`], letting experiment drivers sweep methods uniformly.
pub trait InferenceMethod {
    /// Infers the labels of every task from the collected answers.
    fn infer(&self, tasks: &TaskSet, log: &AnswerLog) -> InferenceResult;

    /// Method name used in experiment reports ("MV", "EM", "IM", …).
    fn name(&self) -> &'static str;
}

/// The paper's inference model (IM) behind the [`InferenceMethod`] trait.
///
/// Runs a fresh batch EM per call — exactly what the inference-accuracy
/// experiments (Figure 9) measure.
#[derive(Debug, Clone, Default)]
pub struct LocationAware {
    /// EM configuration (α, tolerance, distance-function set, …).
    pub config: EmConfig,
}

impl LocationAware {
    /// Adapter with the paper's default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl InferenceMethod for LocationAware {
    fn infer(&self, tasks: &TaskSet, log: &AnswerLog) -> InferenceResult {
        let (params, _report) = run_em(tasks, log, &self.config);
        InferenceResult::from_params(tasks, &params)
    }

    fn name(&self) -> &'static str {
        "IM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::{synthetic_task, Answer, LabelBits, TaskId, WorkerId};
    use crowd_geo::Point;

    #[test]
    fn location_aware_infers_consensus() {
        let tasks = TaskSet::new(vec![synthetic_task("a", Point::ORIGIN, 2)]);
        let mut log = AnswerLog::new(1, 2);
        for w in 0..2 {
            log.push(
                &tasks,
                Answer {
                    worker: WorkerId(w),
                    task: TaskId(0),
                    bits: LabelBits::from_slice(&[true, false]),
                    distance: 0.1,
                },
            )
            .unwrap();
        }
        let im = LocationAware::new();
        let result = im.infer(&tasks, &log);
        assert!(result.decision(TaskId(0)).get(0));
        assert!(!result.decision(TaskId(0)).get(1));
        assert_eq!(im.name(), "IM");
    }
}
