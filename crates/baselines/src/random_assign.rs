//! The RANDOM assignment baseline.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crowd_core::{AssignContext, Assigner, Assignment, TaskId, WorkerId};

/// Assigns each requesting worker `h` uniformly random tasks they have not
/// answered yet.
///
/// Deterministic under a fixed seed (required for reproducible experiment
/// sweeps). No quality, no distance, no history beyond the "already
/// answered" constraint — the paper's weakest baseline.
#[derive(Debug)]
pub struct RandomAssigner {
    rng: StdRng,
}

impl RandomAssigner {
    /// Creates the assigner with a deterministic seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Assigner for RandomAssigner {
    fn assign(&mut self, ctx: &AssignContext<'_>, workers: &[WorkerId], h: usize) -> Assignment {
        let mut per_worker = Vec::with_capacity(workers.len());
        for &w in workers {
            let mut eligible: Vec<TaskId> = ctx
                .tasks
                .ids()
                .filter(|&t| !ctx.log.has_answered(w, t) && !ctx.reserved.contains(w, t))
                .collect();
            // Partial Fisher–Yates: draw h tasks without replacement.
            let take = h.min(eligible.len());
            for i in 0..take {
                let j = self.rng.random_range(i..eligible.len());
                eligible.swap(i, j);
            }
            eligible.truncate(take);
            per_worker.push((w, eligible));
        }
        Assignment::new(per_worker)
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::{
        synthetic_task, Answer, AnswerLog, DistanceFunctionSet, Distances, InitStrategy, LabelBits,
        ModelParams, ReservationSet, TaskSet, Worker, WorkerPool,
    };
    use crowd_geo::Point;

    struct World {
        tasks: TaskSet,
        workers: WorkerPool,
        log: AnswerLog,
        params: ModelParams,
        fset: DistanceFunctionSet,
        distances: Distances,
        reserved: ReservationSet,
    }

    fn world(n_tasks: usize, n_workers: usize) -> World {
        let tasks = TaskSet::new(
            (0..n_tasks)
                .map(|i| synthetic_task(format!("t{i}"), Point::new(i as f64, 0.0), 3))
                .collect(),
        );
        let workers = WorkerPool::from_workers(
            (0..n_workers)
                .map(|i| Worker::at(format!("w{i}"), Point::new(i as f64, 1.0)))
                .collect(),
        )
        .unwrap();
        let log = AnswerLog::new(tasks.len(), workers.len());
        let params = ModelParams::init(&tasks, workers.len(), 3, InitStrategy::Uniform, &log);
        let distances = Distances::from_tasks(&tasks);
        World {
            tasks,
            workers,
            log,
            params,
            fset: DistanceFunctionSet::paper_default(),
            distances,
            reserved: ReservationSet::new(),
        }
    }

    impl World {
        fn ctx(&self) -> AssignContext<'_> {
            AssignContext {
                tasks: &self.tasks,
                workers: &self.workers,
                log: &self.log,
                params: &self.params,
                fset: &self.fset,
                alpha: 0.5,
                distances: &self.distances,
                reserved: &self.reserved,
                threads: 1,
            }
        }
    }

    #[test]
    fn assigns_h_distinct_unanswered_tasks() {
        let world = world(10, 2);
        let mut assigner = RandomAssigner::seeded(7);
        let a = assigner.assign(&world.ctx(), &[WorkerId(0), WorkerId(1)], 3);
        assert_eq!(a.total(), 6);
        for (_, ts) in a.per_worker() {
            let mut seen = ts.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), ts.len(), "duplicates in {ts:?}");
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let world = world(20, 3);
        let workers: Vec<WorkerId> = world.workers.ids().collect();
        let a = RandomAssigner::seeded(42).assign(&world.ctx(), &workers, 2);
        let b = RandomAssigner::seeded(42).assign(&world.ctx(), &workers, 2);
        assert_eq!(a, b);
        let c = RandomAssigner::seeded(43).assign(&world.ctx(), &workers, 2);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn respects_answered_history() {
        let mut world = world(3, 1);
        for t in 0..2u32 {
            world
                .log
                .push(
                    &world.tasks,
                    Answer {
                        worker: WorkerId(0),
                        task: crowd_core::TaskId(t),
                        bits: LabelBits::from_slice(&[true, false, true]),
                        distance: 0.1,
                    },
                )
                .unwrap();
        }
        let mut assigner = RandomAssigner::seeded(1);
        let a = assigner.assign(&world.ctx(), &[WorkerId(0)], 5);
        assert_eq!(a.tasks_for(WorkerId(0)).unwrap(), &[crowd_core::TaskId(2)]);
    }

    #[test]
    fn respects_reservations() {
        let mut world = world(3, 1);
        world.reserved.reserve(WorkerId(0), crowd_core::TaskId(0));
        world.reserved.reserve(WorkerId(0), crowd_core::TaskId(1));
        let mut assigner = RandomAssigner::seeded(9);
        let a = assigner.assign(&world.ctx(), &[WorkerId(0)], 5);
        assert_eq!(a.tasks_for(WorkerId(0)).unwrap(), &[crowd_core::TaskId(2)]);
    }

    #[test]
    fn empty_batch_is_empty() {
        let world = world(5, 1);
        let mut assigner = RandomAssigner::seeded(1);
        assert!(assigner.assign(&world.ctx(), &[], 2).is_empty());
        assert_eq!(assigner.name(), "Random");
    }
}
