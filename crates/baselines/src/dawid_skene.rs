//! Dawid–Skene confusion-matrix EM (the paper's "EM" inference baseline).
//!
//! A. P. Dawid and A. M. Skene, *Maximum likelihood estimation of observer
//! error-rates using the EM algorithm*, Applied Statistics 1979 — reference
//! [5] of the paper. Each binary label slot `(t, k)` is an independent item;
//! each worker has a 2×2 confusion matrix `π_w[a][b] = P(answer b | truth
//! a)`. Distance plays no role — the model the paper improves upon.

use crowd_core::prob;
use crowd_core::{AnswerLog, InferenceResult, TaskSet, WorkerId};

use crate::{InferenceMethod, MajorityVote};

/// Configuration of the Dawid–Skene estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DawidSkeneConfig {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the maximum change in any item posterior.
    pub tolerance: f64,
    /// Additive (Laplace) smoothing for confusion-matrix counts, keeping
    /// estimates away from 0/1 for workers with few answers.
    pub smoothing: f64,
}

impl Default for DawidSkeneConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            tolerance: 0.005,
            smoothing: 1.0,
        }
    }
}

/// Diagnostics of a Dawid–Skene run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DawidSkeneReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Final per-worker confusion matrices, `[w]` → `[[p00, p01], [p10,
    /// p11]]` with `p_ab = P(answer = b | truth = a)`.
    pub confusion: Vec<[[f64; 2]; 2]>,
}

impl DawidSkeneReport {
    /// A scalar quality summary per worker: mean of the two diagonal terms
    /// (probability of answering correctly under either truth).
    #[must_use]
    pub fn worker_quality(&self, w: WorkerId) -> f64 {
        let m = &self.confusion[w.index()];
        (m[0][0] + m[1][1]) / 2.0
    }
}

/// The Dawid–Skene binary-label EM.
#[derive(Debug, Clone, Copy, Default)]
pub struct DawidSkene {
    /// Estimator configuration.
    pub config: DawidSkeneConfig,
}

impl DawidSkene {
    /// Estimator with default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Full run returning both the inference and the diagnostics.
    #[must_use]
    pub fn run(&self, tasks: &TaskSet, log: &AnswerLog) -> (InferenceResult, DawidSkeneReport) {
        let n_workers = log.n_workers();
        let n_slots = tasks.total_labels();
        let cfg = &self.config;

        // Item posteriors initialised from vote shares (standard DS warm
        // start).
        let mut pz1 = MajorityVote::vote_shares(tasks, log);
        for p in &mut pz1 {
            *p = prob::clamp_prob(*p);
        }

        // Confusion matrices, initialised mildly diagonal.
        let mut confusion = vec![[[0.7, 0.3], [0.3, 0.7]]; n_workers];
        let mut iterations = 0;
        let mut converged = log.is_empty();

        for _ in 0..cfg.max_iterations {
            iterations += 1;

            // M-step: confusion counts and class priors from the current
            // posteriors.
            let mut counts = vec![[[cfg.smoothing; 2]; 2]; n_workers];
            for answer in log.answers() {
                let base = tasks.label_offset(answer.task);
                let w = answer.worker.index();
                for (k, bit) in answer.bits.iter().enumerate() {
                    let p1 = pz1[base + k];
                    let b = usize::from(bit);
                    counts[w][1][b] += p1;
                    counts[w][0][b] += 1.0 - p1;
                }
            }
            for (w, c) in counts.iter().enumerate() {
                for truth in 0..2 {
                    let total = c[truth][0] + c[truth][1];
                    confusion[w][truth][0] = prob::clamp_prob(c[truth][0] / total);
                    confusion[w][truth][1] = prob::clamp_prob(c[truth][1] / total);
                }
            }
            let prior1 = if n_slots == 0 {
                0.5
            } else {
                pz1.iter().sum::<f64>() / n_slots as f64
            };
            let class_prior = [prob::clamp_prob(1.0 - prior1), prob::clamp_prob(prior1)];

            // E-step: item posteriors from the updated confusion matrices.
            let mut like1 = vec![class_prior[1]; n_slots];
            let mut like0 = vec![class_prior[0]; n_slots];
            for answer in log.answers() {
                let base = tasks.label_offset(answer.task);
                let m = &confusion[answer.worker.index()];
                for (k, bit) in answer.bits.iter().enumerate() {
                    let b = usize::from(bit);
                    like1[base + k] *= m[1][b];
                    like0[base + k] *= m[0][b];
                }
            }
            let mut delta = 0.0f64;
            for slot in 0..n_slots {
                let total = like1[slot] + like0[slot];
                let new = if total > 0.0 {
                    prob::clamp_prob(like1[slot] / total)
                } else {
                    0.5
                };
                delta = delta.max((new - pz1[slot]).abs());
                pz1[slot] = new;
            }

            if delta <= cfg.tolerance {
                converged = true;
                break;
            }
        }

        let result = InferenceResult::from_probabilities(tasks, pz1);
        (
            result,
            DawidSkeneReport {
                iterations,
                converged,
                confusion,
            },
        )
    }
}

impl InferenceMethod for DawidSkene {
    fn infer(&self, tasks: &TaskSet, log: &AnswerLog) -> InferenceResult {
        self.run(tasks, log).0
    }

    fn name(&self) -> &'static str {
        "EM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::{synthetic_task, Answer, LabelBits, TaskId};
    use crowd_geo::Point;

    fn push(log: &mut AnswerLog, tasks: &TaskSet, w: u32, t: u32, bits: &[bool]) {
        log.push(
            tasks,
            Answer {
                worker: WorkerId(w),
                task: TaskId(t),
                bits: LabelBits::from_slice(bits),
                distance: 0.2,
            },
        )
        .unwrap();
    }

    /// Three workers: two reliable, one systematic contrarian.
    fn contrarian_world() -> (TaskSet, AnswerLog) {
        let tasks = TaskSet::new(vec![
            synthetic_task("a", Point::ORIGIN, 4),
            synthetic_task("b", Point::new(1.0, 0.0), 4),
            synthetic_task("c", Point::new(0.0, 1.0), 4),
        ]);
        let truths = [
            [true, true, false, false],
            [true, false, true, false],
            [false, false, true, true],
        ];
        let mut log = AnswerLog::new(3, 3);
        for (t, truth) in truths.iter().enumerate() {
            push(&mut log, &tasks, 0, t as u32, truth);
            push(&mut log, &tasks, 1, t as u32, truth);
            let flipped: Vec<bool> = truth.iter().map(|&b| !b).collect();
            push(&mut log, &tasks, 2, t as u32, &flipped);
        }
        (tasks, log)
    }

    #[test]
    fn recovers_majority_truth_and_flags_contrarian() {
        let (tasks, log) = contrarian_world();
        let (result, report) = DawidSkene::new().run(&tasks, &log);
        assert!(result.decision(TaskId(0)).get(0));
        assert!(!result.decision(TaskId(0)).get(2));
        assert!(report.converged);
        let good = report.worker_quality(WorkerId(0));
        let bad = report.worker_quality(WorkerId(2));
        assert!(good > bad, "good {good} vs contrarian {bad}");
    }

    #[test]
    fn empty_log_is_uninformative() {
        let tasks = TaskSet::new(vec![synthetic_task("a", Point::ORIGIN, 2)]);
        let log = AnswerLog::new(1, 1);
        let (result, report) = DawidSkene::new().run(&tasks, &log);
        assert!(report.converged);
        // Vote share 0.5 hardens to "correct" under the ≥ 0.5 rule; what
        // matters is that probabilities stay uninformative.
        assert!((result.pz1(TaskId(0), 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn tolerance_zero_runs_to_iteration_cap() {
        let (tasks, log) = contrarian_world();
        let ds = DawidSkene {
            config: DawidSkeneConfig {
                tolerance: -1.0, // unattainable
                max_iterations: 7,
                ..DawidSkeneConfig::default()
            },
        };
        let (_, report) = ds.run(&tasks, &log);
        assert_eq!(report.iterations, 7);
        assert!(!report.converged);
    }

    #[test]
    fn confusion_rows_are_distributions() {
        let (tasks, log) = contrarian_world();
        let (_, report) = DawidSkene::new().run(&tasks, &log);
        for m in &report.confusion {
            for row in m {
                assert!((row[0] + row[1] - 1.0).abs() < 1e-6, "{row:?}");
                assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn trait_name_is_em() {
        assert_eq!(DawidSkene::new().name(), "EM");
    }
}
