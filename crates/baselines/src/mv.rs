//! Majority voting (the paper's MV baseline).

use crowd_core::{AnswerLog, InferenceResult, TaskSet};

use crate::InferenceMethod;

/// Per-label majority voting.
///
/// Each label's `P(z = 1)` estimate is its "yes"-vote share; a label is
/// inferred correct when *strictly more* than half the answers say yes.
/// Exact ties (including unanswered labels, whose share is defined as 0.5)
/// are inferred **incorrect** — the deterministic, conservative resolution
/// documented in DESIGN.md §6.4. No worker quality is modelled: every vote
/// weighs the same, which is precisely what the paper's case study (Table I)
/// shows failing on distance-sensitive answers.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl MajorityVote {
    /// Creates the baseline.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Raw yes-vote shares per flat label slot (0.5 where unanswered).
    #[must_use]
    pub fn vote_shares(tasks: &TaskSet, log: &AnswerLog) -> Vec<f64> {
        let mut shares = vec![0.5; tasks.total_labels()];
        for task in tasks.iter() {
            let n = log.n_answers_on(task.id);
            if n == 0 {
                continue;
            }
            let base = tasks.label_offset(task.id);
            let mut yes = vec![0usize; task.n_labels()];
            for answer in log.answers_on(task.id) {
                for (k, bit) in answer.bits.iter().enumerate() {
                    yes[k] += usize::from(bit);
                }
            }
            for (k, &y) in yes.iter().enumerate() {
                shares[base + k] = y as f64 / n as f64;
            }
        }
        shares
    }
}

impl InferenceMethod for MajorityVote {
    fn infer(&self, tasks: &TaskSet, log: &AnswerLog) -> InferenceResult {
        let mut shares = Self::vote_shares(tasks, log);
        // InferenceResult hardens at P ≥ 0.5; nudge exact ties below the
        // threshold so they resolve to "incorrect" per the documented rule.
        for s in &mut shares {
            if (*s - 0.5).abs() < f64::EPSILON {
                *s = 0.5 - 1e-9;
            }
        }
        InferenceResult::from_probabilities(tasks, shares)
    }

    fn name(&self) -> &'static str {
        "MV"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::{synthetic_task, Answer, LabelBits, TaskId, WorkerId};
    use crowd_geo::Point;

    fn push(log: &mut AnswerLog, tasks: &TaskSet, w: u32, t: u32, bits: &[bool]) {
        log.push(
            tasks,
            Answer {
                worker: WorkerId(w),
                task: TaskId(t),
                bits: LabelBits::from_slice(bits),
                distance: 0.2,
            },
        )
        .unwrap();
    }

    #[test]
    fn majority_wins() {
        let tasks = TaskSet::new(vec![synthetic_task("a", Point::ORIGIN, 2)]);
        let mut log = AnswerLog::new(1, 3);
        push(&mut log, &tasks, 0, 0, &[true, false]);
        push(&mut log, &tasks, 1, 0, &[true, true]);
        push(&mut log, &tasks, 2, 0, &[false, false]);
        let result = MajorityVote::new().infer(&tasks, &log);
        assert!(result.decision(TaskId(0)).get(0)); // 2/3 yes
        assert!(!result.decision(TaskId(0)).get(1)); // 1/3 yes
    }

    #[test]
    fn exact_tie_is_incorrect() {
        let tasks = TaskSet::new(vec![synthetic_task("a", Point::ORIGIN, 1)]);
        let mut log = AnswerLog::new(1, 2);
        push(&mut log, &tasks, 0, 0, &[true]);
        push(&mut log, &tasks, 1, 0, &[false]);
        let result = MajorityVote::new().infer(&tasks, &log);
        assert!(!result.decision(TaskId(0)).get(0));
    }

    #[test]
    fn unanswered_labels_resolve_incorrect() {
        let tasks = TaskSet::new(vec![
            synthetic_task("answered", Point::ORIGIN, 1),
            synthetic_task("silent", Point::new(1.0, 0.0), 2),
        ]);
        let mut log = AnswerLog::new(2, 1);
        push(&mut log, &tasks, 0, 0, &[true]);
        let result = MajorityVote::new().infer(&tasks, &log);
        assert!(result.decision(TaskId(0)).get(0));
        assert!(!result.decision(TaskId(1)).get(0));
        assert!(!result.decision(TaskId(1)).get(1));
    }

    #[test]
    fn vote_shares_are_exact_fractions() {
        let tasks = TaskSet::new(vec![synthetic_task("a", Point::ORIGIN, 2)]);
        let mut log = AnswerLog::new(1, 4);
        for w in 0..4 {
            push(&mut log, &tasks, w, 0, &[w < 3, w < 1]);
        }
        let shares = MajorityVote::vote_shares(&tasks, &log);
        assert!((shares[0] - 0.75).abs() < 1e-12);
        assert!((shares[1] - 0.25).abs() < 1e-12);
    }
}
