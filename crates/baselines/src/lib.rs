//! Baseline algorithms the paper compares against.
//!
//! Inference (Figure 9 / 12):
//! * [`MajorityVote`] — per-label majority of worker verdicts;
//! * [`DawidSkene`] — the classic confusion-matrix EM of Dawid & Skene
//!   (1979), the paper's "EM" baseline;
//! * [`LocationAware`] — adapter running the crowd-core inference model
//!   behind the same [`InferenceMethod`] trait, so experiment drivers treat
//!   all three uniformly.
//!
//! Assignment (Figure 11 / Table II):
//! * [`RandomAssigner`] — uniformly random undone tasks;
//! * [`SpatialFirst`] — the SF baseline: each worker receives their
//!   *closest* undone tasks (k-d tree backed).
//!
//! All baselines operate on the exact same data structures as the core
//! system (`TaskSet`, `AnswerLog`, `Assigner`), so head-to-head comparisons
//! differ only in algorithm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dawid_skene;
mod mv;
mod random_assign;
mod spatial_first;
mod traits;

pub use dawid_skene::{DawidSkene, DawidSkeneConfig, DawidSkeneReport};
pub use mv::MajorityVote;
pub use random_assign::RandomAssigner;
pub use spatial_first::SpatialFirst;
pub use traits::{InferenceMethod, LocationAware};
