//! Synthetic POI datasets standing in for the paper's Beijing / China task
//! sets.

use crowd_core::{synthetic_task, InferenceResult, LabelBits, TaskId, TaskSet};
use crowd_geo::{BoundingBox, Point};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::rngx;

/// POI influence class, bucketed by review count exactly as Figure 8 of the
/// paper buckets Dianping reviews.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum InfluenceClass {
    /// More than 2500 reviews — landmark POIs.
    VeryHigh,
    /// 1001–2500 reviews.
    High,
    /// 501–1000 reviews.
    Medium,
    /// At most 500 reviews — obscure POIs.
    Low,
}

impl InfluenceClass {
    /// Buckets a review count.
    #[must_use]
    pub fn from_reviews(reviews: u32) -> Self {
        match reviews {
            r if r > 2500 => Self::VeryHigh,
            r if r > 1000 => Self::High,
            r if r > 500 => Self::Medium,
            _ => Self::Low,
        }
    }

    /// The generative POI-influence mixture over the paper's three-function
    /// set `{f_0.1, f_10, f_100}`: famous POIs put their mass on the flat
    /// function (answer quality barely decays with distance), obscure POIs
    /// on the steep one.
    #[must_use]
    pub fn true_dt(&self) -> [f64; 3] {
        match self {
            Self::VeryHigh => [0.80, 0.15, 0.05],
            Self::High => [0.50, 0.35, 0.15],
            Self::Medium => [0.25, 0.45, 0.30],
            Self::Low => [0.10, 0.30, 0.60],
        }
    }

    /// Display label matching the Figure 8 legend.
    #[must_use]
    pub fn legend(&self) -> &'static str {
        match self {
            Self::VeryHigh => "Rev>2500",
            Self::High => "Rev>1000",
            Self::Medium => "Rev>500",
            Self::Low => "Rev<500",
        }
    }
}

/// A synthetic POI dataset with ground truth.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PoiDataset {
    /// Dataset name ("Beijing", "China", …).
    pub name: String,
    /// The labelling tasks.
    pub tasks: TaskSet,
    /// Ground-truth label vector per task (by task id).
    pub truth: Vec<LabelBits>,
    /// Synthetic review counts (the influence proxy of Figure 8).
    pub review_counts: Vec<u32>,
    /// Influence class per task.
    pub influence: Vec<InfluenceClass>,
    /// Generative POI-influence mixture per task.
    pub true_dt: Vec<[f64; 3]>,
    /// Geographic extent.
    pub bbox: BoundingBox,
    /// Cluster centres used during generation (workers are settled around
    /// the same centres).
    pub cluster_centers: Vec<Point>,
}

impl PoiDataset {
    /// Total number of correct (positive) ground-truth labels.
    #[must_use]
    pub fn n_correct_labels(&self) -> usize {
        self.truth.iter().map(LabelBits::count_ones).sum()
    }

    /// Total number of incorrect (negative) ground-truth labels.
    #[must_use]
    pub fn n_incorrect_labels(&self) -> usize {
        self.tasks.total_labels() - self.n_correct_labels()
    }

    /// The paper's accuracy metric (Equation 1): the mean, over tasks, of
    /// the fraction of labels whose inferred verdict matches ground truth
    /// (both positive and negative labels count).
    #[must_use]
    pub fn accuracy_of(&self, inference: &InferenceResult) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for task in self.tasks.iter() {
            let truth = &self.truth[task.id.index()];
            let decision = inference.decision(task.id);
            total += truth.agreement(&decision) as f64 / task.n_labels() as f64;
        }
        total / self.tasks.len() as f64
    }

    /// Fraction of a single answer's verdicts that match ground truth —
    /// the per-answer accuracy used throughout the data-analysis figures.
    #[must_use]
    pub fn answer_accuracy(&self, task: TaskId, bits: &LabelBits) -> f64 {
        let truth = &self.truth[task.index()];
        truth.agreement(bits) as f64 / truth.len().max(1) as f64
    }
}

/// Generation parameters for a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DatasetConfig {
    /// Dataset name.
    pub name: String,
    /// Number of POI tasks (the paper uses 200 per dataset).
    pub n_tasks: usize,
    /// Candidate labels per task (the paper uses 10).
    pub n_labels: usize,
    /// Side length of the square extent, in kilometres.
    pub extent_km: f64,
    /// Number of POI clusters (city districts / cities).
    pub n_clusters: usize,
    /// Cluster standard deviation in kilometres.
    pub cluster_sigma_km: f64,
    /// Probability that any single label is correct; the per-task correct
    /// count is `Binomial(n_labels, p_correct)` clamped to `≥ 1`, matching
    /// the paper's "randomly selected 1∼10 correct labels".
    pub p_correct: f64,
    /// Log-normal review-count parameters `(mu, sigma)` of `ln reviews`.
    pub review_mu: f64,
    /// See `review_mu`.
    pub review_sigma: f64,
    /// Fraction of POIs placed uniformly over the extent instead of in a
    /// cluster — remote attractions (mountain parks, scenic overlooks) far
    /// from the residential clusters where workers live. This is the
    /// paper's "spatial distribution of tasks and workers were not even":
    /// distance-greedy assignment never reaches these POIs.
    pub remote_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The paper's Beijing dataset: 200 POIs in a ~40 km metropolitan box,
/// 927 correct / 1073 incorrect labels (`p_correct` calibrated to that
/// ratio).
#[must_use]
pub fn beijing(seed: u64) -> PoiDataset {
    generate(&DatasetConfig {
        name: "Beijing".to_owned(),
        n_tasks: 200,
        n_labels: 10,
        extent_km: 40.0,
        n_clusters: 8,
        cluster_sigma_km: 3.0,
        p_correct: 0.4635,
        review_mu: 6.3,
        review_sigma: 1.25,
        remote_rate: 0.3,
        seed,
    })
}

/// The paper's China dataset: 200 scenic spots spread over a country-scale
/// extent, 864 correct / 1136 incorrect labels.
#[must_use]
pub fn china(seed: u64) -> PoiDataset {
    generate(&DatasetConfig {
        name: "China".to_owned(),
        n_tasks: 200,
        n_labels: 10,
        extent_km: 3000.0,
        n_clusters: 15,
        cluster_sigma_km: 40.0,
        p_correct: 0.432,
        review_mu: 6.8,
        review_sigma: 1.1,
        remote_rate: 0.3,
        seed,
    })
}

/// Generates a synthetic dataset from explicit parameters.
///
/// # Panics
/// Panics on degenerate configurations (no tasks, no labels, no clusters).
#[must_use]
pub fn generate(cfg: &DatasetConfig) -> PoiDataset {
    assert!(cfg.n_tasks > 0, "dataset needs at least one task");
    assert!(cfg.n_labels > 0, "tasks need at least one label");
    assert!(cfg.n_clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let bbox = BoundingBox::new(Point::ORIGIN, Point::new(cfg.extent_km, cfg.extent_km));

    // Cluster centres away from the very edge.
    let margin = cfg.extent_km * 0.1;
    let cluster_centers: Vec<Point> = (0..cfg.n_clusters)
        .map(|_| {
            Point::new(
                rng.random_range(margin..cfg.extent_km - margin),
                rng.random_range(margin..cfg.extent_km - margin),
            )
        })
        .collect();

    let mut tasks = Vec::with_capacity(cfg.n_tasks);
    let mut truth = Vec::with_capacity(cfg.n_tasks);
    let mut review_counts = Vec::with_capacity(cfg.n_tasks);
    let mut influence = Vec::with_capacity(cfg.n_tasks);
    let mut true_dt = Vec::with_capacity(cfg.n_tasks);

    for i in 0..cfg.n_tasks {
        let location = if rng.random::<f64>() < cfg.remote_rate {
            // A remote attraction, anywhere in the extent.
            Point::new(
                rng.random_range(0.0..cfg.extent_km),
                rng.random_range(0.0..cfg.extent_km),
            )
        } else {
            let center = cluster_centers[rng.random_range(0..cluster_centers.len())];
            bbox.clamp(Point::new(
                rngx::normal(&mut rng, center.x, cfg.cluster_sigma_km),
                rngx::normal(&mut rng, center.y, cfg.cluster_sigma_km),
            ))
        };
        tasks.push(synthetic_task(
            format!("{}-poi-{i}", cfg.name),
            location,
            cfg.n_labels,
        ));

        // Ground truth: Binomial(n_labels, p_correct) correct labels,
        // at least one, at random positions.
        let n_correct = (0..cfg.n_labels)
            .filter(|_| rng.random::<f64>() < cfg.p_correct)
            .count()
            .max(1);
        let mut positions: Vec<usize> = (0..cfg.n_labels).collect();
        for k in 0..n_correct {
            let j = rng.random_range(k..positions.len());
            positions.swap(k, j);
        }
        truth.push(LabelBits::from_positions(
            cfg.n_labels,
            &positions[..n_correct],
        ));

        let reviews = rngx::log_normal(&mut rng, cfg.review_mu, cfg.review_sigma)
            .round()
            .clamp(1.0, 1_000_000.0) as u32;
        let class = InfluenceClass::from_reviews(reviews);
        review_counts.push(reviews);
        influence.push(class);
        true_dt.push(class.true_dt());
    }

    PoiDataset {
        name: cfg.name.clone(),
        tasks: TaskSet::new(tasks),
        truth,
        review_counts,
        influence,
        true_dt,
        bbox,
        cluster_centers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn influence_class_thresholds_match_figure8() {
        assert_eq!(InfluenceClass::from_reviews(2501), InfluenceClass::VeryHigh);
        assert_eq!(InfluenceClass::from_reviews(2500), InfluenceClass::High);
        assert_eq!(InfluenceClass::from_reviews(1001), InfluenceClass::High);
        assert_eq!(InfluenceClass::from_reviews(501), InfluenceClass::Medium);
        assert_eq!(InfluenceClass::from_reviews(500), InfluenceClass::Low);
        assert_eq!(InfluenceClass::from_reviews(0), InfluenceClass::Low);
    }

    #[test]
    fn influence_mixtures_are_simplices_ordered_by_flatness() {
        for class in [
            InfluenceClass::VeryHigh,
            InfluenceClass::High,
            InfluenceClass::Medium,
            InfluenceClass::Low,
        ] {
            let w = class.true_dt();
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        // Flat-function weight decreases with obscurity.
        assert!(InfluenceClass::VeryHigh.true_dt()[0] > InfluenceClass::Low.true_dt()[0]);
        assert!(InfluenceClass::Low.true_dt()[2] > InfluenceClass::VeryHigh.true_dt()[2]);
    }

    #[test]
    fn beijing_matches_paper_shape() {
        let d = beijing(42);
        assert_eq!(d.tasks.len(), 200);
        assert_eq!(d.tasks.total_labels(), 2000);
        // Correct-label total close to the paper's 927 (Binomial noise).
        let correct = d.n_correct_labels();
        assert!((850..=1010).contains(&correct), "got {correct}");
        assert_eq!(correct + d.n_incorrect_labels(), 2000);
        // Every task has at least one correct label.
        assert!(d.truth.iter().all(|t| t.count_ones() >= 1));
        // All locations inside the box.
        for task in d.tasks.iter() {
            assert!(d.bbox.contains(task.location));
        }
    }

    #[test]
    fn china_is_country_scale() {
        let d = china(42);
        assert_eq!(d.tasks.len(), 200);
        assert!(d.bbox.width() > 1000.0);
        let correct = d.n_correct_labels();
        assert!((790..=950).contains(&correct), "got {correct}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = beijing(7);
        let b = beijing(7);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.review_counts, b.review_counts);
        assert_eq!(
            a.tasks.task(TaskId(13)).location,
            b.tasks.task(TaskId(13)).location
        );
        let c = beijing(8);
        assert_ne!(a.review_counts, c.review_counts);
    }

    #[test]
    fn review_classes_are_diverse() {
        let d = beijing(1);
        let mut seen = std::collections::HashSet::new();
        for class in &d.influence {
            seen.insert(*class);
        }
        assert!(seen.len() >= 3, "influence classes too uniform: {seen:?}");
    }

    #[test]
    fn accuracy_of_perfect_and_inverted_inference() {
        let d = beijing(3);
        // Perfect inference: probabilities = truth.
        let perfect: Vec<f64> = d
            .truth
            .iter()
            .flat_map(|bits| bits.iter().map(|b| if b { 1.0 } else { 0.0 }))
            .collect();
        let result = InferenceResult::from_probabilities(&d.tasks, perfect.clone());
        assert!((d.accuracy_of(&result) - 1.0).abs() < 1e-12);
        // Inverted inference scores exactly the complement.
        let inverted: Vec<f64> = perfect.iter().map(|p| 1.0 - p).collect();
        let bad = InferenceResult::from_probabilities(&d.tasks, inverted);
        assert!(d.accuracy_of(&bad) < 1e-12);
    }

    #[test]
    fn answer_accuracy_counts_matches() {
        let d = beijing(5);
        let t = TaskId(0);
        let truth = d.truth[0];
        assert_eq!(d.answer_accuracy(t, &truth), 1.0);
        let flipped = LabelBits::from_slice(&truth.iter().map(|b| !b).collect::<Vec<_>>());
        assert_eq!(d.answer_accuracy(t, &flipped), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_rejected() {
        let mut cfg = DatasetConfig {
            name: "x".into(),
            n_tasks: 0,
            n_labels: 10,
            extent_km: 10.0,
            n_clusters: 2,
            cluster_sigma_km: 1.0,
            p_correct: 0.5,
            review_mu: 6.0,
            review_sigma: 1.0,
            remote_rate: 0.0,
            seed: 0,
        };
        cfg.n_tasks = 0;
        let _ = generate(&cfg);
    }
}
