//! The generative answering process.

use crowd_core::{DistanceFunctionSet, LabelBits};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::workers::WorkerProfile;

/// Parameters of the answer generator — deliberately the same law as the
/// paper's inference model (Equations 7–8), so that the model is
/// well-specified on simulated data while the distance-blind baselines
/// (MV, Dawid–Skene) are not.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BehaviorConfig {
    /// Mixing weight α between worker distance quality and POI influence.
    pub alpha: f64,
    /// The distance-function set `F`.
    pub fset: DistanceFunctionSet,
    /// Probability that an *inattentive* verdict ticks the label,
    /// independent of the truth.
    ///
    /// The paper's model idealises unqualified workers as unbiased coin
    /// flips (Equation 7: match probability 0.5); real careless workers
    /// instead tick few plausible boxes, producing *systematically biased*
    /// errors (they miss true labels far more often than they confirm
    /// false ones). `0.5` recovers the idealised coin flip; the default
    /// `0.3` reproduces the correlated-error pollution that separates the
    /// inference methods in the paper's Figure 9: MV absorbs the bias
    /// wholesale, Dawid–Skene soaks it into its per-truth confusion rows,
    /// and IM additionally discounts by distance.
    pub careless_tick_rate: f64,
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            fset: DistanceFunctionSet::paper_default(),
            careless_tick_rate: 0.3,
        }
    }
}

/// Samples worker answers given hidden profiles and ground truth.
///
/// Not `Clone`: `StdRng` in rand 0.10 is deliberately non-cloneable; create
/// a fresh simulator from the same seed to replay a stream.
#[derive(Debug)]
pub struct AnswerSimulator {
    cfg: BehaviorConfig,
    rng: StdRng,
}

impl AnswerSimulator {
    /// Creates a simulator with a deterministic seed.
    #[must_use]
    pub fn new(cfg: BehaviorConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The attentive-mode quality `q = α·f_{d_w}(d) + (1−α)·f_{d_t}(d)` of
    /// Equation 8 with the worker's *true* mixtures.
    #[must_use]
    pub fn attentive_quality(&self, profile: &WorkerProfile, true_dt: &[f64], d: f64) -> f64 {
        let qw = self.cfg.fset.mixture(&profile.dw_weights, d);
        let qt = self.cfg.fset.mixture(true_dt, d);
        self.cfg.alpha * qw + (1.0 - self.cfg.alpha) * qt
    }

    /// The probability that this worker's verdict on a label with the given
    /// truth is correct: with probability `reliability` the worker is
    /// attentive (correct w.p. `q`), otherwise careless (ticks w.p.
    /// `careless_tick_rate` regardless of truth).
    #[must_use]
    pub fn correct_probability(
        &self,
        profile: &WorkerProfile,
        true_dt: &[f64],
        d: f64,
        truth_bit: bool,
    ) -> f64 {
        let q = self.attentive_quality(profile, true_dt, d);
        let careless_correct = if truth_bit {
            self.cfg.careless_tick_rate
        } else {
            1.0 - self.cfg.careless_tick_rate
        };
        profile.reliability * q + (1.0 - profile.reliability) * careless_correct
    }

    /// Samples a full answer vector for one (worker, task) pair.
    pub fn answer(
        &mut self,
        profile: &WorkerProfile,
        true_dt: &[f64],
        truth: &LabelBits,
        d: f64,
    ) -> LabelBits {
        let q = self.attentive_quality(profile, true_dt, d);
        let mut bits = LabelBits::zeros(truth.len());
        for (k, truth_bit) in truth.iter().enumerate() {
            let bit = if self.rng.random::<f64>() < profile.reliability {
                // Attentive: correct with the distance-mixed quality.
                truth_bit == (self.rng.random::<f64>() < q)
            } else {
                // Careless: tick with a fixed rate, truth-independent.
                self.rng.random::<f64>() < self.cfg.careless_tick_rate
            };
            bits.set(k, bit);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local_profile() -> WorkerProfile {
        WorkerProfile {
            reliability: 0.9,
            dw_weights: vec![0.05, 0.25, 0.70],
        }
    }

    fn spammer() -> WorkerProfile {
        WorkerProfile {
            reliability: 0.0,
            dw_weights: vec![1.0 / 3.0; 3],
        }
    }

    #[test]
    fn attentive_quality_bounds_and_monotonicity() {
        let sim = AnswerSimulator::new(BehaviorConfig::default(), 1);
        let dt = [0.25, 0.45, 0.30];
        let profile = local_profile();
        let mut prev = 2.0;
        for d in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let q = sim.attentive_quality(&profile, &dt, d);
            assert!((0.5..=1.0).contains(&q), "d={d} q={q}");
            assert!(q <= prev, "q must decrease with distance");
            prev = q;
        }
    }

    #[test]
    fn careless_worker_is_biased_against_true_labels() {
        let sim = AnswerSimulator::new(BehaviorConfig::default(), 2);
        let dt = [0.8, 0.15, 0.05];
        // A fully careless worker (reliability 0) ticks at the careless
        // rate regardless of distance: correct on true labels with p=0.3,
        // on false labels with p=0.7.
        let on_true = sim.correct_probability(&spammer(), &dt, 0.0, true);
        let on_false = sim.correct_probability(&spammer(), &dt, 0.0, false);
        assert!((on_true - 0.3).abs() < 1e-12);
        assert!((on_false - 0.7).abs() < 1e-12);
        // Distance-independent.
        assert_eq!(on_true, sim.correct_probability(&spammer(), &dt, 1.0, true));
    }

    #[test]
    fn idealised_coin_flip_recovered_at_half_tick_rate() {
        let cfg = BehaviorConfig {
            careless_tick_rate: 0.5,
            ..BehaviorConfig::default()
        };
        let sim = AnswerSimulator::new(cfg, 2);
        let dt = [0.8, 0.15, 0.05];
        assert_eq!(sim.correct_probability(&spammer(), &dt, 0.2, true), 0.5);
        assert_eq!(sim.correct_probability(&spammer(), &dt, 0.2, false), 0.5);
    }

    #[test]
    fn sampled_accuracy_tracks_probability() {
        let mut sim = AnswerSimulator::new(BehaviorConfig::default(), 3);
        let profile = local_profile();
        let dt = [0.25, 0.45, 0.30];
        let truth = LabelBits::from_slice(&[
            true, false, true, true, false, false, true, false, true, false,
        ]);
        let d = 0.1;
        // Expected per-answer accuracy: mean over labels of the
        // truth-conditional correctness probability.
        let expected = truth
            .iter()
            .map(|t| sim.correct_probability(&profile, &dt, d, t))
            .sum::<f64>()
            / truth.len() as f64;
        let n = 2000;
        let mut matches = 0usize;
        for _ in 0..n {
            let bits = sim.answer(&profile, &dt, &truth, d);
            matches += truth.agreement(&bits);
        }
        let rate = matches as f64 / (n * truth.len()) as f64;
        assert!(
            (rate - expected).abs() < 0.02,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn nearby_answers_beat_distant_ones_for_locals() {
        let mut sim = AnswerSimulator::new(BehaviorConfig::default(), 4);
        let profile = local_profile();
        let dt = [0.10, 0.30, 0.60];
        let truth = LabelBits::from_positions(10, &[0, 3, 7]);
        let trials = 1500;
        let mut near = 0usize;
        let mut far = 0usize;
        for _ in 0..trials {
            near += truth.agreement(&sim.answer(&profile, &dt, &truth, 0.05));
            far += truth.agreement(&sim.answer(&profile, &dt, &truth, 0.95));
        }
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = BehaviorConfig::default();
        let truth = LabelBits::from_positions(10, &[1, 2, 3]);
        let profile = local_profile();
        let dt = [0.5, 0.35, 0.15];
        let a: Vec<LabelBits> = {
            let mut sim = AnswerSimulator::new(cfg.clone(), 5);
            (0..10)
                .map(|_| sim.answer(&profile, &dt, &truth, 0.4))
                .collect()
        };
        let b: Vec<LabelBits> = {
            let mut sim = AnswerSimulator::new(cfg, 5);
            (0..10)
                .map(|_| sim.answer(&profile, &dt, &truth, 0.4))
                .collect()
        };
        assert_eq!(a, b);
    }
}
