//! Synthetic worker populations.

use crowd_core::{Worker, WorkerPool};
use crowd_geo::Point;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::PoiDataset;
use crate::rngx;

/// A worker's latent ground-truth behaviour — the quantities the inference
/// model tries to recover.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkerProfile {
    /// True inherent quality `P(i_w = 1)`: the fraction of verdicts the
    /// worker produces attentively (the rest are coin flips). Matches the
    /// paper's Figure 6 observation that even nearby answers span 50–95%
    /// accuracy.
    pub reliability: f64,
    /// True distance-sensitivity mixture over the three-function set
    /// `{f_0.1, f_10, f_100}` (flat → answers well everywhere; steep →
    /// only reliable nearby).
    pub dw_weights: Vec<f64>,
}

impl WorkerProfile {
    /// Whether the worker is a "qualified" worker in the paper's sense.
    ///
    /// Generation draws qualified reliabilities from `[0.45, 0.85]` and
    /// careless ones from `[0.05, 0.35]`; `0.4` separates the two bands.
    #[must_use]
    pub fn is_qualified(&self) -> bool {
        self.reliability >= 0.4
    }
}

/// A generated population: the registrable pool plus the hidden profiles.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Population {
    /// Workers with locations (what the platform sees).
    pub pool: WorkerPool,
    /// Hidden behaviour per worker, aligned with pool ids (what only the
    /// answer simulator sees).
    pub profiles: Vec<WorkerProfile>,
}

impl Population {
    /// Number of workers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Worker archetypes: (dw mixture, sampling weight). Mirrors the paper's
/// observation (Figure 7) that distance affects different workers very
/// differently.
const ARCHETYPES: &[([f64; 3], f64)] = &[
    // "Locals": only reliable close to home.
    ([0.05, 0.25, 0.70], 0.40),
    // "Regionals": moderate decay.
    ([0.20, 0.60, 0.20], 0.35),
    // "Globetrotters": barely distance-sensitive.
    ([0.70, 0.25, 0.05], 0.25),
];

/// Population generation parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PopulationConfig {
    /// Number of workers.
    pub n_workers: usize,
    /// Probability a worker is qualified; qualified workers draw their
    /// reliability from `[0.55, 0.95]`, the rest (spammers / careless
    /// workers) from `[0.05, 0.35]`. The paper's Figure 6 shows roughly an
    /// 80/20 split on both datasets.
    pub p_qualified: f64,
    /// Probability a worker submits a second familiar location (home +
    /// office), per the platform's multi-location support.
    pub multi_location_rate: f64,
    /// Standard deviation (km) of worker locations around cluster centres;
    /// `0` derives a default from the dataset extent.
    pub location_sigma_km: f64,
    /// Zipf exponent skewing which clusters workers settle in (0 =
    /// uniform). Real crowds concentrate in big cities, which is what makes
    /// the spatial-first baseline starve remote tasks (Table II).
    pub cluster_skew: f64,
    /// Fraction of workers settled *uniformly* over the extent rather than
    /// in a POI cluster. A national crowd platform recruits far beyond the
    /// dataset's cities; for such offsite workers "nearest task" is an
    /// arbitrary choice (everything is far), which is where spatial-first
    /// assignment loses to quality-aware assignment.
    pub offsite_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PopulationConfig {
    /// A sensible default population of `n_workers` workers.
    #[must_use]
    pub fn with_workers(n_workers: usize, seed: u64) -> Self {
        Self {
            n_workers,
            p_qualified: 0.8,
            multi_location_rate: 0.2,
            location_sigma_km: 0.0, // filled from dataset extent at generation
            cluster_skew: 1.5,
            offsite_rate: 0.0,
            seed,
        }
    }
}

/// Generates a worker population settled around the dataset's POI clusters.
///
/// # Panics
/// Panics if `cfg.n_workers` is zero.
#[must_use]
pub fn generate_population(cfg: &PopulationConfig, dataset: &PoiDataset) -> Population {
    assert!(cfg.n_workers > 0, "population needs at least one worker");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sigma = if cfg.location_sigma_km > 0.0 {
        cfg.location_sigma_km
    } else {
        // Default: a tenth of the dataset extent — workers live in town,
        // not on top of single POIs.
        dataset.bbox.width().max(dataset.bbox.height()) * 0.1
    };
    let centers = &dataset.cluster_centers;
    // Zipf-skewed settlement over clusters.
    let cluster_weights: Vec<f64> = (0..centers.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.cluster_skew))
        .collect();
    let archetype_weights: Vec<f64> = ARCHETYPES.iter().map(|(_, w)| *w).collect();

    let mut pool = WorkerPool::new();
    let mut profiles = Vec::with_capacity(cfg.n_workers);
    for i in 0..cfg.n_workers {
        let mut locations = Vec::with_capacity(2);
        let n_locs = 1 + usize::from(rng.random::<f64>() < cfg.multi_location_rate);
        let offsite = rng.random::<f64>() < cfg.offsite_rate;
        for _ in 0..n_locs {
            let location = if offsite {
                // Anywhere in the extent — typically far from every POI
                // cluster.
                Point::new(
                    rng.random_range(dataset.bbox.min.x..=dataset.bbox.max.x),
                    rng.random_range(dataset.bbox.min.y..=dataset.bbox.max.y),
                )
            } else {
                let center = centers[rngx::categorical(&mut rng, &cluster_weights)];
                dataset.bbox.clamp(Point::new(
                    rngx::normal(&mut rng, center.x, sigma),
                    rngx::normal(&mut rng, center.y, sigma),
                ))
            };
            locations.push(location);
        }
        pool.register(Worker::with_locations(format!("worker-{i}"), locations))
            .expect("generated workers always have locations");

        let archetype = rngx::categorical(&mut rng, &archetype_weights);
        let reliability = if rng.random::<f64>() < cfg.p_qualified {
            rng.random_range(0.55..0.95)
        } else {
            rng.random_range(0.05..0.35)
        };
        profiles.push(WorkerProfile {
            reliability,
            dw_weights: rngx::jitter_simplex(&mut rng, &ARCHETYPES[archetype].0, 0.05),
        });
    }

    Population { pool, profiles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::beijing;

    #[test]
    fn generates_requested_count_with_valid_profiles() {
        let d = beijing(1);
        let p = generate_population(&PopulationConfig::with_workers(50, 9), &d);
        assert_eq!(p.len(), 50);
        assert_eq!(p.pool.len(), 50);
        for profile in &p.profiles {
            assert_eq!(profile.dw_weights.len(), 3);
            assert!((profile.dw_weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(profile.dw_weights.iter().all(|&w| w > 0.0));
            assert!((0.0..=1.0).contains(&profile.reliability));
        }
    }

    #[test]
    fn qualified_rate_close_to_configured() {
        let d = beijing(1);
        let cfg = PopulationConfig::with_workers(600, 10);
        let p = generate_population(&cfg, &d);
        let rate =
            p.profiles.iter().filter(|p| p.is_qualified()).count() as f64 / p.profiles.len() as f64;
        assert!((rate - 0.8).abs() < 0.06, "qualified rate {rate}");
    }

    #[test]
    fn reliability_ranges_separate_spammers() {
        let d = beijing(2);
        let p = generate_population(&PopulationConfig::with_workers(300, 17), &d);
        for profile in &p.profiles {
            if profile.is_qualified() {
                assert!((0.55..0.95).contains(&profile.reliability));
            } else {
                assert!((0.05..0.35).contains(&profile.reliability));
            }
        }
    }

    #[test]
    fn some_workers_have_two_locations() {
        let d = beijing(2);
        let p = generate_population(&PopulationConfig::with_workers(200, 11), &d);
        let multi = p.pool.iter().filter(|w| w.locations.len() == 2).count();
        assert!(multi > 10, "expected ~20% multi-location, got {multi}/200");
        // All locations inside the dataset box.
        for w in p.pool.iter() {
            for &loc in &w.locations {
                assert!(d.bbox.contains(loc));
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = beijing(3);
        let cfg = PopulationConfig::with_workers(40, 12);
        let a = generate_population(&cfg, &d);
        let b = generate_population(&cfg, &d);
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.pool, b.pool);
    }

    #[test]
    fn cluster_skew_concentrates_settlement() {
        let d = beijing(4);
        let mut uniform_cfg = PopulationConfig::with_workers(400, 13);
        uniform_cfg.cluster_skew = 0.0;
        let mut skewed_cfg = uniform_cfg.clone();
        skewed_cfg.cluster_skew = 2.0;
        let spread = |p: &Population| {
            // Mean distance of workers to the dataset's first cluster.
            let c = d.cluster_centers[0];
            p.pool
                .iter()
                .map(|w| w.locations[0].distance(c))
                .sum::<f64>()
                / p.pool.len() as f64
        };
        let uniform = spread(&generate_population(&uniform_cfg, &d));
        let skewed = spread(&generate_population(&skewed_cfg, &d));
        assert!(
            skewed < uniform,
            "skewed settlement should concentrate near cluster 0: {skewed} vs {uniform}"
        );
    }

    #[test]
    fn archetype_diversity_present() {
        let d = beijing(4);
        let p = generate_population(&PopulationConfig::with_workers(300, 13), &d);
        // Count workers whose dominant weight is each function.
        let mut dominant = [0usize; 3];
        for profile in &p.profiles {
            let argmax = profile
                .dw_weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            dominant[argmax] += 1;
        }
        assert!(dominant.iter().all(|&c| c > 20), "archetypes {dominant:?}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let d = beijing(5);
        let _ = generate_population(&PopulationConfig::with_workers(0, 1), &d);
    }
}
