//! Simulated crowdsourcing platform for POI labelling.
//!
//! The paper's evaluation ran on ChinaCrowds (a real crowdsourcing market)
//! over two 200-POI datasets with Dianping-derived labels and review counts.
//! None of that is available offline, so this crate builds the closest
//! synthetic equivalent (see DESIGN.md §4 for the substitution argument):
//!
//! * [`dataset`] — synthetic **Beijing** (clustered metropolitan box) and
//!   **China** (multi-city country extent) datasets: 200 POIs, 10 candidate
//!   labels with known ground truth, log-normal review counts mapped to the
//!   influence classes of Figure 8;
//! * [`workers`] — worker populations with latent qualified/spammer flags
//!   and per-worker distance-sensitivity mixtures (the quantities the
//!   inference model estimates);
//! * [`behavior`] — the generative answering process: a qualified worker
//!   answers each label correctly with probability
//!   `α·f_{d_w}(d) + (1−α)·f_{d_t}(d)`, a spammer coin-flips — exactly the
//!   law the paper's data analysis (Figures 6–8) observed empirically;
//! * [`platform`] — the platform loop: Deployment 1 (fixed answers per
//!   task, for inference experiments) and Deployment 2 (budgeted campaigns
//!   with pluggable assigners, for assignment experiments).
//!
//! Everything is deterministic under explicit seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod dataset;
pub mod platform;
pub mod rngx;
pub mod workers;

pub use behavior::{AnswerSimulator, BehaviorConfig};
pub use dataset::{beijing, china, generate, DatasetConfig, InfluenceClass, PoiDataset};
pub use platform::{CampaignConfig, CampaignReport, SimPlatform};
pub use workers::{generate_population, Population, PopulationConfig, WorkerProfile};
