//! The simulated crowdsourcing platform loop.

use crowd_core::{
    Answer, AnswerLog, Assigner, Distances, EmConfig, Framework, FrameworkConfig, TaskId,
    UpdatePolicy, WorkerId,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::behavior::{AnswerSimulator, BehaviorConfig};
use crate::dataset::PoiDataset;
use crate::workers::Population;

/// A dataset + population + behaviour bundle that can replay the paper's
/// two experiment deployments.
#[derive(Debug, Clone)]
pub struct SimPlatform {
    /// The task side: POIs, labels, ground truth, influence.
    pub dataset: PoiDataset,
    /// The worker side: pool + hidden profiles.
    pub population: Population,
    behavior: BehaviorConfig,
    seed: u64,
}

/// Deployment-2 campaign parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CampaignConfig {
    /// Total assignment budget `B`.
    pub budget: usize,
    /// Tasks per HIT (the paper uses `h = 2`).
    pub h: usize,
    /// Workers requesting tasks per round.
    pub batch_size: usize,
    /// Inference configuration.
    pub em: EmConfig,
    /// Online-update policy.
    pub policy: UpdatePolicy,
    /// Arrival-rate multiplier for unqualified workers.
    ///
    /// Crowd markets show volume-chasing behaviour: careless workers
    /// request far more HITs than diligent ones (they optimise pay per
    /// minute). `1.0` gives uniform arrivals; the default `2.0` makes a
    /// careless worker twice as likely to appear in a request batch. This
    /// is the market condition under which assignment quality matters:
    /// every strategy receives the same polluted batches, but only a
    /// quality-aware assigner can route the pollution to tasks where it is
    /// harmless.
    pub careless_arrival_boost: f64,
    /// RNG seed for worker arrivals.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            budget: 1000,
            h: 2,
            batch_size: 5,
            em: EmConfig::default(),
            policy: UpdatePolicy::default(),
            careless_arrival_boost: 2.0,
            seed: 0,
        }
    }
}

/// Outcome of a Deployment-2 campaign.
#[derive(Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CampaignReport {
    /// `(budget used, accuracy)` after every round — the curves of
    /// Figure 11.
    pub accuracy_curve: Vec<(usize, f64)>,
    /// Accuracy at campaign end (Equation 1 against ground truth).
    pub final_accuracy: f64,
    /// The final framework state (model parameters, answer log, …).
    pub framework: Framework,
}

impl SimPlatform {
    /// Bundles a dataset, a population and an answering behaviour.
    #[must_use]
    pub fn new(
        dataset: PoiDataset,
        population: Population,
        behavior: BehaviorConfig,
        seed: u64,
    ) -> Self {
        Self {
            dataset,
            population,
            behavior,
            seed,
        }
    }

    /// The behaviour configuration in use.
    #[must_use]
    pub fn behavior(&self) -> &BehaviorConfig {
        &self.behavior
    }

    /// **Deployment 1**: every task is answered by exactly `k` distinct
    /// random workers (the paper had each task answered by five workers).
    /// The resulting stream is globally shuffled so budget-prefix replays
    /// (Figure 9) drop answers uniformly.
    ///
    /// # Panics
    /// Panics if the population is smaller than `k`.
    #[must_use]
    pub fn deployment1(&self, k: usize) -> AnswerLog {
        self.deployment1_with_seed(k, self.seed)
    }

    /// [`SimPlatform::deployment1`] with an explicit seed — used to draw
    /// independent replications of the answer stream.
    ///
    /// # Panics
    /// Panics if the population is smaller than `k`.
    #[must_use]
    pub fn deployment1_with_seed(&self, k: usize, seed: u64) -> AnswerLog {
        let n_workers = self.population.len();
        assert!(
            k <= n_workers,
            "need at least {k} workers, have {n_workers}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = AnswerSimulator::new(self.behavior.clone(), seed.wrapping_add(1));
        let distances = Distances::from_tasks(&self.dataset.tasks);

        // Choose k distinct workers per task.
        let mut pairs: Vec<(WorkerId, TaskId)> = Vec::with_capacity(k * self.dataset.tasks.len());
        let mut worker_ids: Vec<usize> = (0..n_workers).collect();
        for task in self.dataset.tasks.ids() {
            for i in 0..k {
                let j = rng.random_range(i..worker_ids.len());
                worker_ids.swap(i, j);
                pairs.push((WorkerId::from_index(worker_ids[i]), task));
            }
        }
        // Shuffle the global stream.
        for i in (1..pairs.len()).rev() {
            let j = rng.random_range(0..=i);
            pairs.swap(i, j);
        }

        let mut log = AnswerLog::new(self.dataset.tasks.len(), n_workers);
        for (w, t) in pairs {
            let worker = self.population.pool.worker(w);
            let task = self.dataset.tasks.task(t);
            let d = distances.between(worker, task);
            let bits = sim.answer(
                &self.population.profiles[w.index()],
                &self.dataset.true_dt[t.index()],
                &self.dataset.truth[t.index()],
                d,
            );
            log.push(
                &self.dataset.tasks,
                Answer {
                    worker: w,
                    task: t,
                    bits,
                    distance: d,
                },
            )
            .expect("deployment1 never duplicates (worker, task) pairs");
        }
        log
    }

    /// **Deployment 2**: a budgeted online campaign. Each round,
    /// `batch_size` random workers request tasks; `assigner` picks them; the
    /// simulated workers answer; the framework updates its model online.
    /// Runs until the budget is exhausted (or no assignable pair remains).
    #[must_use]
    pub fn run_campaign(
        &self,
        assigner: &mut dyn Assigner,
        cfg: &CampaignConfig,
    ) -> CampaignReport {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sim = AnswerSimulator::new(self.behavior.clone(), cfg.seed.wrapping_add(1));
        let mut framework = Framework::new(
            self.dataset.tasks.clone(),
            self.population.pool.clone(),
            FrameworkConfig {
                em: cfg.em.clone(),
                policy: cfg.policy,
                budget: cfg.budget,
                h: cfg.h,
            },
        );

        let n_workers = self.population.len();
        // Arrival weights: careless workers request HITs more often.
        let weights: Vec<f64> = self
            .population
            .profiles
            .iter()
            .map(|p| {
                if p.is_qualified() {
                    1.0
                } else {
                    cfg.careless_arrival_boost.max(0.0)
                }
            })
            .collect();
        let mut accuracy_curve = Vec::new();

        while framework.budget_remaining() > 0 {
            // Weighted sampling without replacement (Efraimidis–Spirakis:
            // order by u^(1/w), take the best `batch_size`).
            let batch_len = cfg.batch_size.min(n_workers);
            let mut keyed: Vec<(f64, usize)> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                    (u.powf(1.0 / w.max(1e-9)), i)
                })
                .collect();
            keyed.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            let batch: Vec<WorkerId> = keyed[..batch_len]
                .iter()
                .map(|&(_, i)| WorkerId::from_index(i))
                .collect();

            let assignment = match framework.request(assigner, &batch) {
                Ok(a) => a,
                Err(_) => break, // budget exhausted
            };
            if assignment.is_empty() {
                // Every batch worker has answered everything assignable.
                break;
            }
            for (w, t) in assignment.pairs() {
                let worker = self.population.pool.worker(w);
                let task = self.dataset.tasks.task(t);
                let d = framework.distances().between(worker, task);
                let bits = sim.answer(
                    &self.population.profiles[w.index()],
                    &self.dataset.true_dt[t.index()],
                    &self.dataset.truth[t.index()],
                    d,
                );
                framework
                    .submit(w, t, bits)
                    .expect("assigners never duplicate (worker, task) pairs");
            }
            let accuracy = self.dataset.accuracy_of(&framework.inference());
            accuracy_curve.push((framework.budget_used(), accuracy));
        }

        // Harden the final model with one full EM pass for the report.
        framework.force_full_em();
        let final_accuracy = self.dataset.accuracy_of(&framework.inference());
        CampaignReport {
            accuracy_curve,
            final_accuracy,
            framework,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::beijing;
    use crate::workers::{generate_population, PopulationConfig};
    use crowd_baselines::RandomAssigner;
    use crowd_core::AccOptAssigner;

    fn small_platform() -> SimPlatform {
        let dataset = crate::dataset::generate(&crate::dataset::DatasetConfig {
            name: "mini".into(),
            n_tasks: 20,
            n_labels: 5,
            extent_km: 10.0,
            n_clusters: 3,
            cluster_sigma_km: 1.0,
            p_correct: 0.5,
            review_mu: 6.0,
            review_sigma: 1.0,
            remote_rate: 0.3,
            seed: 11,
        });
        let population = generate_population(&PopulationConfig::with_workers(15, 12), &dataset);
        SimPlatform::new(dataset, population, BehaviorConfig::default(), 13)
    }

    #[test]
    fn deployment1_answers_each_task_k_times() {
        let p = small_platform();
        let log = p.deployment1(5);
        assert_eq!(log.len(), 100);
        for t in p.dataset.tasks.ids() {
            assert_eq!(log.n_answers_on(t), 5, "task {t}");
            // All answering workers distinct (push would have failed
            // otherwise) — verify arity via the worker set.
            let workers: std::collections::HashSet<_> =
                log.answers_on(t).map(|a| a.worker).collect();
            assert_eq!(workers.len(), 5);
        }
    }

    #[test]
    fn deployment1_is_deterministic() {
        let p = small_platform();
        let a = p.deployment1(3);
        let b = p.deployment1(3);
        assert_eq!(a.answers().len(), b.answers().len());
        for (x, y) in a.answers().iter().zip(b.answers()) {
            assert_eq!(x.worker, y.worker);
            assert_eq!(x.task, y.task);
            assert_eq!(x.bits, y.bits);
        }
    }

    #[test]
    fn campaign_consumes_budget_and_reports_curve() {
        let p = small_platform();
        let mut assigner = RandomAssigner::seeded(1);
        let cfg = CampaignConfig {
            budget: 60,
            h: 2,
            batch_size: 4,
            ..CampaignConfig::default()
        };
        let report = p.run_campaign(&mut assigner, &cfg);
        assert_eq!(report.framework.budget_used(), 60);
        assert!(!report.accuracy_curve.is_empty());
        let (last_budget, _) = *report.accuracy_curve.last().unwrap();
        assert_eq!(last_budget, 60);
        assert!((0.0..=1.0).contains(&report.final_accuracy));
    }

    #[test]
    fn campaign_with_accopt_runs_to_budget() {
        let p = small_platform();
        let mut assigner = AccOptAssigner::new();
        let cfg = CampaignConfig {
            budget: 40,
            h: 2,
            batch_size: 3,
            ..CampaignConfig::default()
        };
        let report = p.run_campaign(&mut assigner, &cfg);
        assert_eq!(report.framework.budget_used(), 40);
        // Sanity: collected answers equal consumed budget (simulated
        // workers always respond).
        assert_eq!(report.framework.log().len(), 40);
    }

    #[test]
    fn campaign_stops_when_everything_answered() {
        // Budget far exceeding the number of possible (worker, task) pairs.
        let p = small_platform();
        let mut assigner = RandomAssigner::seeded(2);
        let cfg = CampaignConfig {
            budget: 100_000,
            h: 5,
            batch_size: 15,
            ..CampaignConfig::default()
        };
        let report = p.run_campaign(&mut assigner, &cfg);
        // 15 workers × 20 tasks = 300 possible answers.
        assert_eq!(report.framework.log().len(), 300);
        assert!(report.framework.budget_remaining() > 0);
    }

    #[test]
    fn campaign_accuracy_is_meaningfully_high() {
        // With mostly qualified workers the end accuracy must beat random
        // guessing by a wide margin.
        let p = small_platform();
        let mut assigner = RandomAssigner::seeded(3);
        let cfg = CampaignConfig {
            budget: 200,
            h: 2,
            batch_size: 5,
            ..CampaignConfig::default()
        };
        let report = p.run_campaign(&mut assigner, &cfg);
        assert!(
            report.final_accuracy > 0.6,
            "accuracy {}",
            report.final_accuracy
        );
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn deployment1_rejects_oversized_k() {
        let p = small_platform();
        let _ = p.deployment1(99);
    }

    #[test]
    fn beijing_platform_smoke() {
        let dataset = beijing(21);
        let population = generate_population(&PopulationConfig::with_workers(30, 22), &dataset);
        let platform = SimPlatform::new(dataset, population, BehaviorConfig::default(), 23);
        let log = platform.deployment1(2);
        assert_eq!(log.len(), 400);
    }
}
