//! Small sampling helpers on top of `rand` (normal / log-normal /
//! categorical), avoiding an extra distribution crate.

use rand::{Rng, RngExt};

/// A well-mixed deterministic seed for an ordered pair — the SplitMix64 /
/// golden-ratio constants. Used by the service-layer drivers (stress test,
/// example, bench) to give each (worker, task) pair a reproducible answer
/// regardless of thread interleaving.
#[must_use]
pub fn pair_seed(a: u64, b: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 31;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 33)
}

/// Standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log against a zero uniform.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Log-normal sample: `exp(N(mu, sigma))`.
///
/// Used for POI review counts — a classic heavy-tailed popularity model
/// (most POIs obscure, a few famous).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples an index proportionally to `weights` (need not be normalised).
///
/// # Panics
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "categorical needs at least one weight");
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must sum to a positive finite value, got {total}"
    );
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1 // float round-off fallback
}

/// Adds symmetric uniform jitter to each weight and renormalises onto the
/// simplex, keeping every entry strictly positive. Used to individualise
/// worker archetypes.
pub fn jitter_simplex<R: Rng + ?Sized>(rng: &mut R, weights: &[f64], jitter: f64) -> Vec<f64> {
    let mut out: Vec<f64> = weights
        .iter()
        .map(|&w| (w + rng.random_range(-jitter..=jitter)).max(1e-3))
        .collect();
    let sum: f64 = out.iter().sum();
    for w in &mut out {
        *w /= sum;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_and_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..5_000).map(|_| log_normal(&mut rng, 6.0, 1.2)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = {
            let mut s = samples.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        assert!(mean > median, "heavy tail: mean {mean} > median {median}");
    }

    #[test]
    fn categorical_frequencies_follow_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[categorical(&mut rng, &weights)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.02,
                "idx {i}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn categorical_degenerate_single_weight() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(categorical(&mut rng, &[2.5]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn categorical_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = categorical(&mut rng, &[]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn categorical_rejects_zero_sum() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = categorical(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn jitter_simplex_stays_on_simplex() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let out = jitter_simplex(&mut rng, &[0.5, 0.3, 0.2], 0.15);
            assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(out.iter().all(|&w| w > 0.0));
        }
    }
}
