//! Planar points.

use std::fmt;

/// A location in the plane.
///
/// The workspace stores POI and worker locations either in a synthetic
/// normalised plane (kilometres or unit square) or as longitude/latitude
/// degrees (`x` = lon, `y` = lat) when paired with the
/// [`Haversine`](crate::Haversine) metric.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate (or longitude in degrees).
    pub x: f64,
    /// Vertical coordinate (or latitude in degrees).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Self = Self::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(&self, other: Self) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared euclidean distance to `other` (no `sqrt`; cheaper for
    /// comparisons inside index search loops).
    #[must_use]
    pub fn distance_sq(&self, other: Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation between `self` (at `t = 0`) and `other`
    /// (at `t = 1`). `t` outside `[0, 1]` extrapolates.
    #[must_use]
    pub fn lerp(&self, other: Self, t: f64) -> Self {
        Self::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Component-wise translation.
    #[must_use]
    pub fn translate(&self, dx: f64, dy: f64) -> Self {
        Self::new(self.x + dx, self.y + dy)
    }

    /// Returns `true` if both coordinates are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// The coordinate along dimension `dim` (0 = x, 1 = y).
    ///
    /// # Panics
    /// Panics if `dim > 1`.
    #[must_use]
    pub fn coord(&self, dim: usize) -> f64 {
        match dim {
            0 => self.x,
            1 => self.y,
            _ => panic!("Point has two dimensions, got dim={dim}"),
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Self::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.5, -2.5);
        let b = Point::new(-0.5, 7.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn translate_shifts_both_axes() {
        let p = Point::new(1.0, 2.0).translate(-1.0, 3.0);
        assert_eq!(p, Point::new(0.0, 5.0));
    }

    #[test]
    fn coord_accessor_covers_both_dims() {
        let p = Point::new(3.0, 9.0);
        assert_eq!(p.coord(0), 3.0);
        assert_eq!(p.coord(1), 9.0);
    }

    #[test]
    #[should_panic(expected = "two dimensions")]
    fn coord_accessor_panics_on_bad_dim() {
        let _ = Point::new(0.0, 0.0).coord(2);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn from_tuple_and_display() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
        assert_eq!(format!("{p}"), "(1.0000, 2.0000)");
    }
}
