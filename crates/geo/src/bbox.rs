//! Axis-aligned bounding boxes.

use crate::Point;

/// An axis-aligned bounding box, closed on all sides.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoundingBox {
    /// Corner with the smallest coordinates.
    pub min: Point,
    /// Corner with the largest coordinates.
    pub max: Point,
}

impl BoundingBox {
    /// Creates a box from two opposite corners (in any order).
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The unit square `[0, 1] × [0, 1]`.
    #[must_use]
    pub fn unit() -> Self {
        Self::new(Point::ORIGIN, Point::new(1.0, 1.0))
    }

    /// Tightest box covering `points`. Returns `None` for an empty slice.
    #[must_use]
    pub fn from_points(points: &[Point]) -> Option<Self> {
        let first = *points.first()?;
        let mut bbox = Self::new(first, first);
        for p in &points[1..] {
            bbox.expand_to(*p);
        }
        Some(bbox)
    }

    /// Grows the box (in place) so that it contains `p`.
    pub fn expand_to(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Width along the x axis.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along the y axis.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Length of the diagonal; an upper bound on any pairwise euclidean
    /// distance between contained points.
    #[must_use]
    pub fn diagonal(&self) -> f64 {
        self.min.distance(self.max)
    }

    /// Geometric centre of the box.
    #[must_use]
    pub fn center(&self) -> Point {
        self.min.lerp(self.max, 0.5)
    }

    /// Clamps `p` to the closest point inside the box.
    #[must_use]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Squared euclidean distance from `p` to the box (0 if inside).
    #[must_use]
    pub fn distance_sq_to(&self, p: Point) -> f64 {
        self.clamp(p).distance_sq(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises_corner_order() {
        let b = BoundingBox::new(Point::new(2.0, -1.0), Point::new(-2.0, 5.0));
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(2.0, 5.0));
    }

    #[test]
    fn from_points_is_tight() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, -2.0),
            Point::new(1.0, 7.0),
        ];
        let b = BoundingBox::from_points(&pts).unwrap();
        assert_eq!(b.min, Point::new(0.0, -2.0));
        assert_eq!(b.max, Point::new(3.0, 7.0));
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(&[]).is_none());
    }

    #[test]
    fn contains_boundary_points() {
        let b = BoundingBox::unit();
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(b.contains(Point::new(0.5, 1.0)));
        assert!(!b.contains(Point::new(1.0000001, 0.5)));
    }

    #[test]
    fn diagonal_dominates_member_distances() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.9),
            Point::new(1.0, 0.2),
        ];
        let b = BoundingBox::from_points(&pts).unwrap();
        for a in pts {
            for c in pts {
                assert!(a.distance(c) <= b.diagonal() + 1e-12);
            }
        }
    }

    #[test]
    fn clamp_and_distance_sq_to() {
        let b = BoundingBox::unit();
        assert_eq!(b.clamp(Point::new(2.0, 0.5)), Point::new(1.0, 0.5));
        assert_eq!(b.clamp(Point::new(0.3, 0.4)), Point::new(0.3, 0.4));
        assert!((b.distance_sq_to(Point::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
        assert_eq!(b.distance_sq_to(Point::new(0.5, 0.5)), 0.0);
    }

    #[test]
    fn width_height_center() {
        let b = BoundingBox::new(Point::new(1.0, 2.0), Point::new(4.0, 8.0));
        assert_eq!(b.width(), 3.0);
        assert_eq!(b.height(), 6.0);
        assert_eq!(b.center(), Point::new(2.5, 5.0));
    }
}
