//! Brute-force reference implementations.
//!
//! `O(n)` scans with the exact same semantics as [`GridIndex`](crate::GridIndex)
//! and [`KdTree`](crate::KdTree) queries. They serve as test oracles for the
//! indexes and as the sensible choice for tiny point sets.

use crate::{Neighbor, Point};

/// Nearest eligible point to `query` by linear scan.
///
/// `filter` decides eligibility by point id; ties are broken by smaller id.
#[must_use]
pub fn nearest(points: &[Point], query: Point, filter: impl Fn(u32) -> bool) -> Option<Neighbor> {
    let mut best: Option<Neighbor> = None;
    for (id, &p) in points.iter().enumerate() {
        let id = id as u32;
        if !filter(id) {
            continue;
        }
        let cand = Neighbor::new(id, p.distance(query));
        match &best {
            Some(b) if b.ordering(&cand) != std::cmp::Ordering::Greater => {}
            _ => best = Some(cand),
        }
    }
    best
}

/// The `k` nearest eligible points to `query`, sorted by distance then id.
#[must_use]
pub fn k_nearest(
    points: &[Point],
    query: Point,
    k: usize,
    filter: impl Fn(u32) -> bool,
) -> Vec<Neighbor> {
    if k == 0 {
        return Vec::new();
    }
    let mut all: Vec<Neighbor> = points
        .iter()
        .enumerate()
        .filter(|(id, _)| filter(*id as u32))
        .map(|(id, &p)| Neighbor::new(id as u32, p.distance(query)))
        .collect();
    all.sort_unstable_by(|a, b| a.ordering(b));
    all.truncate(k);
    all
}

/// All eligible points within `radius` of `query`, sorted by distance then id.
#[must_use]
pub fn within_radius(
    points: &[Point],
    query: Point,
    radius: f64,
    filter: impl Fn(u32) -> bool,
) -> Vec<Neighbor> {
    let mut hits: Vec<Neighbor> = points
        .iter()
        .enumerate()
        .filter(|(id, _)| filter(*id as u32))
        .map(|(id, &p)| Neighbor::new(id as u32, p.distance(query)))
        .filter(|n| n.distance <= radius)
        .collect();
    hits.sort_unstable_by(|a, b| a.ordering(b));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(3.0, 3.0),
        ]
    }

    #[test]
    fn nearest_picks_closest() {
        let n = nearest(&pts(), Point::new(0.9, 0.1), |_| true).unwrap();
        assert_eq!(n.id, 1);
    }

    #[test]
    fn nearest_respects_filter() {
        let n = nearest(&pts(), Point::new(0.9, 0.1), |id| id != 1).unwrap();
        assert_eq!(n.id, 0);
    }

    #[test]
    fn nearest_none_when_all_filtered() {
        assert!(nearest(&pts(), Point::ORIGIN, |_| false).is_none());
        assert!(nearest(&[], Point::ORIGIN, |_| true).is_none());
    }

    #[test]
    fn nearest_breaks_ties_by_smaller_id() {
        let points = vec![Point::new(1.0, 0.0), Point::new(-1.0, 0.0)];
        let n = nearest(&points, Point::ORIGIN, |_| true).unwrap();
        assert_eq!(n.id, 0);
    }

    #[test]
    fn k_nearest_sorted_and_truncated() {
        let r = k_nearest(&pts(), Point::ORIGIN, 2, |_| true);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].id, 0);
        assert_eq!(r[1].id, 1);
        assert!(r[0].distance <= r[1].distance);
    }

    #[test]
    fn k_nearest_with_k_zero_or_large() {
        assert!(k_nearest(&pts(), Point::ORIGIN, 0, |_| true).is_empty());
        let r = k_nearest(&pts(), Point::ORIGIN, 99, |_| true);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn within_radius_includes_boundary() {
        let r = within_radius(&pts(), Point::ORIGIN, 2.0, |_| true);
        let ids: Vec<u32> = r.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
