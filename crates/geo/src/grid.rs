//! Uniform grid spatial index.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{BoundingBox, Neighbor, Point};

/// A uniform grid over a point set with filtered nearest / k-nearest /
/// radius queries.
///
/// Points are bucketed into `nx × ny` cells stored in CSR layout (a flat id
/// array plus per-cell offsets), so queries touch contiguous memory. Nearest
/// queries expand in Chebyshev "rings" of cells around the query cell and
/// stop once the ring's lower distance bound exceeds the best candidate.
///
/// The spatial-first assignment baseline issues `nearest`/`k_nearest` calls
/// with a filter that rejects tasks the worker has already answered, which is
/// why every query takes an id predicate.
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point>,
    bbox: BoundingBox,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    /// CSR offsets: ids of cell `c` are `ids[starts[c] .. starts[c + 1]]`.
    starts: Vec<u32>,
    ids: Vec<u32>,
}

/// Max-heap wrapper ordering neighbours worst-first (farthest, then larger id).
#[derive(Debug, Clone, Copy, PartialEq)]
struct WorstFirst(Neighbor);

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.ordering(&other.0)
    }
}

impl GridIndex {
    /// Builds a grid over `points`, targeting roughly `target_per_cell`
    /// points per cell (clamped to at least one cell per axis).
    ///
    /// # Panics
    /// Panics if `points` is empty or contains non-finite coordinates.
    #[must_use]
    pub fn build(points: &[Point], target_per_cell: usize) -> Self {
        assert!(!points.is_empty(), "cannot index an empty point set");
        assert!(
            points.iter().all(Point::is_finite),
            "points must have finite coordinates"
        );
        let bbox = BoundingBox::from_points(points).expect("non-empty");
        let target = target_per_cell.max(1);
        let n_cells_f = (points.len() as f64 / target as f64).max(1.0);
        let aspect = if bbox.height() > 0.0 && bbox.width() > 0.0 {
            bbox.width() / bbox.height()
        } else {
            1.0
        };
        let nx = ((n_cells_f * aspect).sqrt().round() as usize).max(1);
        let ny = ((n_cells_f / aspect).sqrt().round() as usize).max(1);
        // Degenerate extents (all points on a line/point) still get one cell.
        let cell_w = if bbox.width() > 0.0 {
            bbox.width() / nx as f64
        } else {
            1.0
        };
        let cell_h = if bbox.height() > 0.0 {
            bbox.height() / ny as f64
        } else {
            1.0
        };

        // Counting sort into CSR layout.
        let n_cells = nx * ny;
        let mut counts = vec![0u32; n_cells + 1];
        let cell_of = |p: Point| -> usize {
            let cx = (((p.x - bbox.min.x) / cell_w) as usize).min(nx - 1);
            let cy = (((p.y - bbox.min.y) / cell_h) as usize).min(ny - 1);
            cy * nx + cx
        };
        for &p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..=n_cells {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut ids = vec![0u32; points.len()];
        for (id, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            ids[cursor[c] as usize] = id as u32;
            cursor[c] += 1;
        }

        Self {
            points: points.to_vec(),
            bbox,
            nx,
            ny,
            cell_w,
            cell_h,
            starts,
            ids,
        }
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: construction rejects empty inputs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Grid dimensions `(nx, ny)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Total number of cells (`nx × ny`).
    #[must_use]
    pub fn n_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// The flat cell index covering `p` (points outside the bounding box
    /// clamp to the border cell). This is the geographic-partition hook:
    /// callers can treat cells as contiguous spatial buckets — e.g. the
    /// `crowd_serve` shard map routes every task and worker location through
    /// it.
    #[must_use]
    pub fn cell_of(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.nx + cx
    }

    /// Ids of the indexed points bucketed in flat cell `cell`.
    ///
    /// # Panics
    /// Panics if `cell >= n_cells()`.
    #[must_use]
    pub fn cell_members(&self, cell: usize) -> &[u32] {
        let lo = self.starts[cell] as usize;
        let hi = self.starts[cell + 1] as usize;
        &self.ids[lo..hi]
    }

    /// The indexed point for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn point(&self, id: u32) -> Point {
        self.points[id as usize]
    }

    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let clamped = self.bbox.clamp(p);
        let cx = (((clamped.x - self.bbox.min.x) / self.cell_w) as usize).min(self.nx - 1);
        let cy = (((clamped.y - self.bbox.min.y) / self.cell_h) as usize).min(self.ny - 1);
        (cx, cy)
    }

    fn cell_ids(&self, cx: usize, cy: usize) -> &[u32] {
        let c = cy * self.nx + cx;
        let lo = self.starts[c] as usize;
        let hi = self.starts[c + 1] as usize;
        &self.ids[lo..hi]
    }

    /// Visits every cell on the Chebyshev ring at radius `r` around
    /// `(cx, cy)`, clipped to the grid.
    fn for_ring(&self, cx: usize, cy: usize, r: usize, mut visit: impl FnMut(usize, usize)) {
        if r == 0 {
            visit(cx, cy);
            return;
        }
        let x_lo = cx.saturating_sub(r);
        let x_hi = (cx + r).min(self.nx - 1);
        let y_lo = cy.saturating_sub(r);
        let y_hi = (cy + r).min(self.ny - 1);
        // Top and bottom rows of the ring.
        if cy >= r {
            for x in x_lo..=x_hi {
                visit(x, cy - r);
            }
        }
        if cy + r < self.ny {
            for x in x_lo..=x_hi {
                visit(x, cy + r);
            }
        }
        // Left and right columns, excluding the corners already visited.
        let row_lo = if cy >= r { cy - r + 1 } else { y_lo };
        let row_hi = if cy + r < self.ny { cy + r - 1 } else { y_hi };
        if row_lo <= row_hi {
            if cx >= r {
                for y in row_lo..=row_hi {
                    visit(cx - r, y);
                }
            }
            if cx + r < self.nx {
                for y in row_lo..=row_hi {
                    visit(cx + r, y);
                }
            }
        }
    }

    /// Lower bound on the distance from `query` to any point in a ring-`r`
    /// cell. Zero for rings 0 and 1 (the query may sit on a cell edge).
    fn ring_lower_bound(&self, r: usize) -> f64 {
        if r <= 1 {
            0.0
        } else {
            (r - 1) as f64 * self.cell_w.min(self.cell_h)
        }
    }

    /// Nearest eligible point to `query`; ties broken by smaller id.
    #[must_use]
    pub fn nearest(&self, query: Point, filter: impl Fn(u32) -> bool) -> Option<Neighbor> {
        self.k_nearest(query, 1, filter).into_iter().next()
    }

    /// The `k` nearest eligible points, sorted by distance then id.
    #[must_use]
    pub fn k_nearest(&self, query: Point, k: usize, filter: impl Fn(u32) -> bool) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let (cx, cy) = self.cell_coords(query);
        let max_ring = self.nx.max(self.ny);
        let mut heap: BinaryHeap<WorstFirst> = BinaryHeap::with_capacity(k + 1);
        for r in 0..=max_ring {
            if heap.len() == k {
                let worst = heap.peek().expect("non-empty").0.distance;
                if self.ring_lower_bound(r) > worst {
                    break;
                }
            }
            self.for_ring(cx, cy, r, |x, y| {
                for &id in self.cell_ids(x, y) {
                    if !filter(id) {
                        continue;
                    }
                    let cand = Neighbor::new(id, self.points[id as usize].distance(query));
                    if heap.len() < k {
                        heap.push(WorstFirst(cand));
                    } else if cand.ordering(&heap.peek().expect("non-empty").0) == Ordering::Less {
                        heap.pop();
                        heap.push(WorstFirst(cand));
                    }
                }
            });
        }
        let mut out: Vec<Neighbor> = heap.into_iter().map(|w| w.0).collect();
        out.sort_unstable_by(|a, b| a.ordering(b));
        out
    }

    /// All eligible points within `radius` of `query`, sorted by distance
    /// then id. The boundary is inclusive.
    #[must_use]
    pub fn within_radius(
        &self,
        query: Point,
        radius: f64,
        filter: impl Fn(u32) -> bool,
    ) -> Vec<Neighbor> {
        let mut out = Vec::new();
        if radius < 0.0 {
            return out;
        }
        // Cell range overlapping the circle's bounding square.
        let lo = self.cell_coords(Point::new(query.x - radius, query.y - radius));
        let hi = self.cell_coords(Point::new(query.x + radius, query.y + radius));
        for cy in lo.1..=hi.1 {
            for cx in lo.0..=hi.0 {
                for &id in self.cell_ids(cx, cy) {
                    if !filter(id) {
                        continue;
                    }
                    let d = self.points[id as usize].distance(query);
                    if d <= radius {
                        out.push(Neighbor::new(id, d));
                    }
                }
            }
        }
        out.sort_unstable_by(|a, b| a.ordering(b));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    fn cross_points() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(f64::from(i) * 0.7, f64::from(j) * 1.3));
            }
        }
        pts
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = cross_points();
        let g = GridIndex::build(&pts, 4);
        for q in [
            Point::new(0.0, 0.0),
            Point::new(3.33, 7.77),
            Point::new(-5.0, -5.0),
            Point::new(100.0, 100.0),
            Point::new(4.5, 0.1),
        ] {
            assert_eq!(
                g.nearest(q, |_| true),
                brute::nearest(&pts, q, |_| true),
                "query {q}"
            );
        }
    }

    #[test]
    fn k_nearest_matches_brute_force_with_filter() {
        let pts = cross_points();
        let g = GridIndex::build(&pts, 3);
        let filter = |id: u32| id % 3 != 0;
        for q in [Point::new(2.0, 2.0), Point::new(6.0, 12.0)] {
            for k in [1, 5, 17, 200] {
                assert_eq!(
                    g.k_nearest(q, k, filter),
                    brute::k_nearest(&pts, q, k, filter),
                    "query {q} k={k}"
                );
            }
        }
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let pts = cross_points();
        let g = GridIndex::build(&pts, 5);
        let q = Point::new(3.0, 6.0);
        for r in [0.0, 0.5, 2.0, 100.0] {
            assert_eq!(
                g.within_radius(q, r, |_| true),
                brute::within_radius(&pts, q, r, |_| true),
                "radius {r}"
            );
        }
    }

    #[test]
    fn all_filtered_returns_empty() {
        let pts = cross_points();
        let g = GridIndex::build(&pts, 5);
        assert!(g.nearest(Point::ORIGIN, |_| false).is_none());
        assert!(g.k_nearest(Point::ORIGIN, 3, |_| false).is_empty());
        assert!(g.within_radius(Point::ORIGIN, 10.0, |_| false).is_empty());
    }

    #[test]
    fn degenerate_collinear_points_still_work() {
        let pts: Vec<Point> = (0..20).map(|i| Point::new(f64::from(i), 5.0)).collect();
        let g = GridIndex::build(&pts, 2);
        let q = Point::new(7.2, 5.0);
        assert_eq!(g.nearest(q, |_| true).unwrap().id, 7);
    }

    #[test]
    fn single_point_index() {
        let pts = vec![Point::new(1.0, 1.0)];
        let g = GridIndex::build(&pts, 8);
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
        let n = g.nearest(Point::new(5.0, 5.0), |_| true).unwrap();
        assert_eq!(n.id, 0);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn build_rejects_empty() {
        let _ = GridIndex::build(&[], 4);
    }

    #[test]
    #[should_panic(expected = "finite coordinates")]
    fn build_rejects_nan() {
        let _ = GridIndex::build(&[Point::new(f64::NAN, 0.0)], 4);
    }

    #[test]
    fn negative_radius_is_empty() {
        let pts = cross_points();
        let g = GridIndex::build(&pts, 5);
        assert!(g.within_radius(Point::ORIGIN, -1.0, |_| true).is_empty());
    }

    #[test]
    fn cell_partition_covers_every_point_once() {
        let pts = cross_points();
        let g = GridIndex::build(&pts, 4);
        let mut seen = vec![false; pts.len()];
        for cell in 0..g.n_cells() {
            for &id in g.cell_members(cell) {
                assert!(!seen[id as usize], "point {id} bucketed twice");
                seen[id as usize] = true;
                // Membership agrees with the forward map.
                assert_eq!(g.cell_of(pts[id as usize]), cell);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cell_of_clamps_outside_points_to_border_cells() {
        let pts = cross_points();
        let g = GridIndex::build(&pts, 4);
        assert_eq!(g.cell_of(Point::new(-100.0, -100.0)), 0);
        assert_eq!(g.cell_of(Point::new(1e9, 1e9)), g.n_cells() - 1);
    }

    #[test]
    fn point_accessor_round_trips() {
        let pts = cross_points();
        let g = GridIndex::build(&pts, 5);
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(g.point(i as u32), p);
        }
    }
}
