//! Derivation of the distance-normalisation constant.

use crate::{BoundingBox, Euclidean, Metric, NormalizedMetric, Point};

/// Computes the constant used to map raw distances into `[0, 1]`.
///
/// The paper normalises `d(w, t)` by "a maximum distance (e.g. the maximum
/// distance between POIs)". Two strategies are provided:
///
/// * [`DistanceNormalizer::max_pairwise`] — the exact maximum pairwise
///   distance (the diameter of the point set), `O(n²)`; fine for the paper's
///   200-POI datasets and used by default;
/// * [`DistanceNormalizer::bbox_diagonal`] — the bounding-box diagonal, an
///   `O(n)` upper bound on the diameter; preferred for the scalability
///   experiments with tens of thousands of tasks.
///
/// Both guarantee that every pairwise distance between the supplied points
/// normalises to at most `1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceNormalizer {
    max_distance: f64,
}

impl DistanceNormalizer {
    /// Exact diameter of `points` under `metric`. `O(n²)`.
    ///
    /// Returns `None` if fewer than two points are supplied or the diameter
    /// is zero (all points identical) — there is nothing to normalise by.
    #[must_use]
    pub fn max_pairwise<M: Metric>(points: &[Point], metric: &M) -> Option<Self> {
        if points.len() < 2 {
            return None;
        }
        let mut max = 0.0_f64;
        for (i, &a) in points.iter().enumerate() {
            for &b in &points[i + 1..] {
                max = max.max(metric.distance(a, b));
            }
        }
        (max > 0.0).then_some(Self { max_distance: max })
    }

    /// Bounding-box diagonal of `points` (euclidean upper bound). `O(n)`.
    ///
    /// Returns `None` for degenerate inputs (fewer than two points, or a
    /// zero-area zero-diagonal box).
    #[must_use]
    pub fn bbox_diagonal(points: &[Point]) -> Option<Self> {
        if points.len() < 2 {
            return None;
        }
        let diag = BoundingBox::from_points(points)?.diagonal();
        (diag > 0.0).then_some(Self { max_distance: diag })
    }

    /// A normaliser with an explicitly chosen constant.
    ///
    /// # Panics
    /// Panics unless `max_distance` is positive and finite.
    #[must_use]
    pub fn fixed(max_distance: f64) -> Self {
        assert!(
            max_distance.is_finite() && max_distance > 0.0,
            "normalisation constant must be positive and finite, got {max_distance}"
        );
        Self { max_distance }
    }

    /// The normalisation constant.
    #[must_use]
    pub fn max_distance(&self) -> f64 {
        self.max_distance
    }

    /// Normalises one raw distance into `[0, 1]`.
    #[must_use]
    pub fn normalize(&self, raw: f64) -> f64 {
        (raw / self.max_distance).clamp(0.0, 1.0)
    }

    /// Wraps `metric` into a [`NormalizedMetric`] using this constant.
    #[must_use]
    pub fn metric<M: Metric>(&self, metric: M) -> NormalizedMetric<M> {
        NormalizedMetric::new(metric, self.max_distance)
    }

    /// Convenience: normalised euclidean metric.
    #[must_use]
    pub fn euclidean(&self) -> NormalizedMetric<Euclidean> {
        self.metric(Euclidean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ]
    }

    #[test]
    fn max_pairwise_finds_the_diameter() {
        let n = DistanceNormalizer::max_pairwise(&square(), &Euclidean).unwrap();
        assert!((n.max_distance() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bbox_diagonal_upper_bounds_diameter() {
        let pts = square();
        let exact = DistanceNormalizer::max_pairwise(&pts, &Euclidean).unwrap();
        let bound = DistanceNormalizer::bbox_diagonal(&pts).unwrap();
        assert!(bound.max_distance() >= exact.max_distance() - 1e-12);
    }

    #[test]
    fn normalize_is_within_unit_interval_for_members() {
        let pts = square();
        let n = DistanceNormalizer::max_pairwise(&pts, &Euclidean).unwrap();
        for &a in &pts {
            for &b in &pts {
                let d = n.normalize(Euclidean.distance(a, b));
                assert!((0.0..=1.0).contains(&d));
            }
        }
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(DistanceNormalizer::max_pairwise(&[], &Euclidean).is_none());
        assert!(DistanceNormalizer::max_pairwise(&[Point::ORIGIN], &Euclidean).is_none());
        let same = vec![Point::new(2.0, 2.0); 5];
        assert!(DistanceNormalizer::max_pairwise(&same, &Euclidean).is_none());
        assert!(DistanceNormalizer::bbox_diagonal(&same).is_none());
    }

    #[test]
    fn fixed_constant_round_trips() {
        let n = DistanceNormalizer::fixed(10.0);
        assert_eq!(n.normalize(5.0), 0.5);
        assert_eq!(n.normalize(20.0), 1.0);
        assert_eq!(n.euclidean().max_distance(), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn fixed_rejects_negative() {
        let _ = DistanceNormalizer::fixed(-1.0);
    }
}
