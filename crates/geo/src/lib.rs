//! Spatial substrate for crowdsourced POI labelling.
//!
//! The inference model of Hu et al. (ICDE 2016) is *location aware*: every
//! quality estimate depends on the normalised distance `d(w, t) ∈ [0, 1]`
//! between a worker and a POI, and the spatial-first assignment baseline
//! needs efficient nearest-undone-task queries. This crate provides the
//! geometric building blocks used by the rest of the workspace:
//!
//! * [`Point`] — a planar location (also usable as lon/lat degrees with the
//!   [`Haversine`] metric);
//! * [`BoundingBox`] — axis-aligned extents, used by dataset generators and
//!   index construction;
//! * [`Metric`] implementations ([`Euclidean`], [`SquaredEuclidean`],
//!   [`Haversine`]) and the [`NormalizedMetric`] wrapper that maps raw
//!   distances into `[0, 1]` as required by Definition 3 of the paper;
//! * [`DistanceNormalizer`] — derives the normalisation constant from a point
//!   set (maximum pairwise distance, exactly or via the bbox diagonal);
//! * two spatial indexes with identical query semantics: a uniform
//!   [`GridIndex`] and a [`KdTree`], both supporting filtered nearest /
//!   k-nearest / radius queries (the filter is how the spatial-first assigner
//!   skips tasks a worker has already answered);
//! * [`brute`] — reference implementations used as test oracles.
//!
//! All indexes are built over an immutable slice of points and refer to them
//! by dense `u32` ids, matching the id-indexed storage convention of
//! `crowd-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
pub mod brute;
mod grid;
mod kdtree;
mod metric;
mod normalize;
mod point;

pub use bbox::BoundingBox;
pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use metric::{Euclidean, Haversine, Metric, NormalizedMetric, SquaredEuclidean};
pub use normalize::DistanceNormalizer;
pub use point::Point;

/// A point id paired with its distance to a query point.
///
/// Returned by nearest-neighbour queries of [`GridIndex`], [`KdTree`] and the
/// [`brute`] oracles. Ordered by distance, ties broken by id, so query
/// results are deterministic and comparable across index implementations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Dense id of the point inside the indexed slice.
    pub id: u32,
    /// Distance from the query point under the index's metric.
    pub distance: f64,
}

impl Neighbor {
    /// Creates a neighbour record.
    #[must_use]
    pub fn new(id: u32, distance: f64) -> Self {
        Self { id, distance }
    }

    /// Total order used by all k-NN implementations: distance, then id.
    #[must_use]
    pub fn ordering(&self, other: &Self) -> std::cmp::Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then(self.id.cmp(&other.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_ordering_is_distance_then_id() {
        let a = Neighbor::new(3, 1.0);
        let b = Neighbor::new(1, 2.0);
        let c = Neighbor::new(0, 1.0);
        assert_eq!(a.ordering(&b), std::cmp::Ordering::Less);
        assert_eq!(b.ordering(&a), std::cmp::Ordering::Greater);
        assert_eq!(c.ordering(&a), std::cmp::Ordering::Less);
        assert_eq!(a.ordering(&a), std::cmp::Ordering::Equal);
    }
}
