//! Distance metrics and the `[0, 1]` normalisation wrapper.

use crate::Point;

/// A distance function over [`Point`]s.
///
/// Implementations must be symmetric and return `0` for identical points.
/// The paper's model only ever consumes *normalised* distances (see
/// [`NormalizedMetric`]), but the raw metrics are exposed for index
/// construction and dataset generation.
pub trait Metric {
    /// Distance between `a` and `b`.
    fn distance(&self, a: Point, b: Point) -> f64;
}

/// Straight-line euclidean distance in the plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric for Euclidean {
    fn distance(&self, a: Point, b: Point) -> f64 {
        a.distance(b)
    }
}

/// Squared euclidean distance.
///
/// Not a metric in the mathematical sense (triangle inequality fails) but
/// order-compatible with [`Euclidean`], so nearest-neighbour searches can use
/// it to avoid `sqrt` in inner loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredEuclidean;

impl Metric for SquaredEuclidean {
    fn distance(&self, a: Point, b: Point) -> f64 {
        a.distance_sq(b)
    }
}

/// Great-circle distance in kilometres, treating `x` as longitude and `y` as
/// latitude, both in degrees.
///
/// Used when datasets carry real geographic coordinates; the synthetic
/// datasets in `crowd-sim` use a planar box and [`Euclidean`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Haversine {
    /// Sphere radius in kilometres.
    pub radius_km: f64,
}

impl Haversine {
    /// Mean Earth radius in kilometres.
    pub const EARTH_RADIUS_KM: f64 = 6371.0088;

    /// Haversine metric over the Earth.
    #[must_use]
    pub fn earth() -> Self {
        Self {
            radius_km: Self::EARTH_RADIUS_KM,
        }
    }
}

impl Default for Haversine {
    fn default() -> Self {
        Self::earth()
    }
}

impl Metric for Haversine {
    fn distance(&self, a: Point, b: Point) -> f64 {
        let (lon1, lat1) = (a.x.to_radians(), a.y.to_radians());
        let (lon2, lat2) = (b.x.to_radians(), b.y.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * self.radius_km * h.sqrt().clamp(0.0, 1.0).asin()
    }
}

/// Wraps a metric so distances fall in `[0, 1]`, dividing by a maximum
/// distance and clamping.
///
/// Footnote 2 of the paper: *"d(w, t) is normalized by a maximum distance
/// (e.g. the maximum distance between POIs)"*. The maximum is usually
/// obtained from a [`DistanceNormalizer`](crate::DistanceNormalizer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedMetric<M> {
    metric: M,
    max_distance: f64,
}

impl<M: Metric> NormalizedMetric<M> {
    /// Wraps `metric`, normalising by `max_distance`.
    ///
    /// # Panics
    /// Panics if `max_distance` is not strictly positive and finite.
    #[must_use]
    pub fn new(metric: M, max_distance: f64) -> Self {
        assert!(
            max_distance.is_finite() && max_distance > 0.0,
            "normalisation constant must be positive and finite, got {max_distance}"
        );
        Self {
            metric,
            max_distance,
        }
    }

    /// The normalisation constant.
    #[must_use]
    pub fn max_distance(&self) -> f64 {
        self.max_distance
    }

    /// The wrapped metric.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.metric
    }
}

impl<M: Metric> Metric for NormalizedMetric<M> {
    fn distance(&self, a: Point, b: Point) -> f64 {
        (self.metric.distance(a, b) / self.max_distance).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_point_distance() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(Euclidean.distance(a, b), 5.0);
        assert_eq!(SquaredEuclidean.distance(a, b), 25.0);
    }

    #[test]
    fn haversine_known_pairs() {
        // Beijing (116.40, 39.90) to Shanghai (121.47, 31.23): ~1068 km.
        let beijing = Point::new(116.40, 39.90);
        let shanghai = Point::new(121.47, 31.23);
        let d = Haversine::earth().distance(beijing, shanghai);
        assert!((d - 1068.0).abs() < 10.0, "got {d}");
        // Zero distance on identical points.
        assert_eq!(Haversine::earth().distance(beijing, beijing), 0.0);
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = Point::new(10.0, 50.0);
        let b = Point::new(-70.0, -33.0);
        let m = Haversine::earth();
        assert!((m.distance(a, b) - m.distance(b, a)).abs() < 1e-9);
    }

    #[test]
    fn normalized_metric_clamps_to_unit_interval() {
        let m = NormalizedMetric::new(Euclidean, 2.0);
        let a = Point::ORIGIN;
        assert_eq!(m.distance(a, Point::new(1.0, 0.0)), 0.5);
        assert_eq!(m.distance(a, Point::new(2.0, 0.0)), 1.0);
        // Beyond the normaliser: clamped, never > 1.
        assert_eq!(m.distance(a, Point::new(10.0, 0.0)), 1.0);
        assert_eq!(m.distance(a, a), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn normalized_metric_rejects_zero_max() {
        let _ = NormalizedMetric::new(Euclidean, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn normalized_metric_rejects_nan_max() {
        let _ = NormalizedMetric::new(Euclidean, f64::NAN);
    }
}
