//! Static k-d tree over a point set.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{Neighbor, Point};

/// A balanced, static 2-d tree with filtered nearest / k-nearest / radius
/// queries.
///
/// Built once by recursive median partitioning (`O(n log n)`); nodes are
/// stored in a flat arena so traversal is pointer-free. Query semantics are
/// identical to [`GridIndex`](crate::GridIndex) and the [`brute`](crate::brute)
/// oracles: distances are euclidean, ties break by smaller id, filters reject
/// candidates by id.
///
/// The spatial-first assignment baseline uses this index when the task set is
/// large and sparse (where grid cells would be mostly empty).
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    points: Vec<Point>,
    root: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Id of the point stored at this node.
    id: u32,
    /// Split dimension: 0 = x, 1 = y.
    dim: u8,
    left: Option<u32>,
    right: Option<u32>,
}

impl KdTree {
    /// Builds a k-d tree over `points`.
    ///
    /// # Panics
    /// Panics if `points` is empty or contains non-finite coordinates.
    #[must_use]
    pub fn build(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "cannot index an empty point set");
        assert!(
            points.iter().all(Point::is_finite),
            "points must have finite coordinates"
        );
        let mut ids: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::with_capacity(points.len());
        let root = Self::build_rec(points, &mut ids, 0, &mut nodes);
        Self {
            nodes,
            points: points.to_vec(),
            root,
        }
    }

    fn build_rec(
        points: &[Point],
        ids: &mut [u32],
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> Option<u32> {
        if ids.is_empty() {
            return None;
        }
        let dim = (depth % 2) as u8;
        let mid = ids.len() / 2;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            points[a as usize]
                .coord(dim as usize)
                .total_cmp(&points[b as usize].coord(dim as usize))
                .then(a.cmp(&b))
        });
        let id = ids[mid];
        let node_idx = nodes.len() as u32;
        nodes.push(Node {
            id,
            dim,
            left: None,
            right: None,
        });
        let (lo, rest) = ids.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = Self::build_rec(points, lo, depth + 1, nodes);
        let right = Self::build_rec(points, hi, depth + 1, nodes);
        nodes[node_idx as usize].left = left;
        nodes[node_idx as usize].right = right;
        Some(node_idx)
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: construction rejects empty inputs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed point for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn point(&self, id: u32) -> Point {
        self.points[id as usize]
    }

    /// Nearest eligible point to `query`; ties broken by smaller id.
    #[must_use]
    pub fn nearest(&self, query: Point, filter: impl Fn(u32) -> bool) -> Option<Neighbor> {
        self.k_nearest(query, 1, filter).into_iter().next()
    }

    /// The `k` nearest eligible points, sorted by distance then id.
    #[must_use]
    pub fn k_nearest(&self, query: Point, k: usize, filter: impl Fn(u32) -> bool) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<WorstFirst> = BinaryHeap::with_capacity(k + 1);
        if let Some(root) = self.root {
            self.knn_rec(root, query, k, &filter, &mut heap);
        }
        let mut out: Vec<Neighbor> = heap.into_iter().map(|w| w.0).collect();
        out.sort_unstable_by(|a, b| a.ordering(b));
        out
    }

    fn knn_rec(
        &self,
        node_idx: u32,
        query: Point,
        k: usize,
        filter: &impl Fn(u32) -> bool,
        heap: &mut BinaryHeap<WorstFirst>,
    ) {
        let node = self.nodes[node_idx as usize];
        let p = self.points[node.id as usize];
        if filter(node.id) {
            let cand = Neighbor::new(node.id, p.distance(query));
            if heap.len() < k {
                heap.push(WorstFirst(cand));
            } else if cand.ordering(&heap.peek().expect("non-empty").0) == Ordering::Less {
                heap.pop();
                heap.push(WorstFirst(cand));
            }
        }
        let delta = query.coord(node.dim as usize) - p.coord(node.dim as usize);
        let (near, far) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.knn_rec(n, query, k, filter, heap);
        }
        // Only descend the far side if the splitting plane is closer than the
        // current k-th best (or we have not found k candidates yet).
        let must_check_far =
            heap.len() < k || delta.abs() <= heap.peek().expect("non-empty").0.distance;
        if must_check_far {
            if let Some(f) = far {
                self.knn_rec(f, query, k, filter, heap);
            }
        }
    }

    /// All eligible points within `radius` of `query`, sorted by distance
    /// then id. The boundary is inclusive.
    #[must_use]
    pub fn within_radius(
        &self,
        query: Point,
        radius: f64,
        filter: impl Fn(u32) -> bool,
    ) -> Vec<Neighbor> {
        let mut out = Vec::new();
        if radius < 0.0 {
            return out;
        }
        if let Some(root) = self.root {
            self.radius_rec(root, query, radius, &filter, &mut out);
        }
        out.sort_unstable_by(|a, b| a.ordering(b));
        out
    }

    fn radius_rec(
        &self,
        node_idx: u32,
        query: Point,
        radius: f64,
        filter: &impl Fn(u32) -> bool,
        out: &mut Vec<Neighbor>,
    ) {
        let node = self.nodes[node_idx as usize];
        let p = self.points[node.id as usize];
        let d = p.distance(query);
        if d <= radius && filter(node.id) {
            out.push(Neighbor::new(node.id, d));
        }
        let delta = query.coord(node.dim as usize) - p.coord(node.dim as usize);
        let (near, far) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.radius_rec(n, query, radius, filter, out);
        }
        if delta.abs() <= radius {
            if let Some(f) = far {
                self.radius_rec(f, query, radius, filter, out);
            }
        }
    }
}

/// Max-heap wrapper ordering neighbours worst-first (farthest, then larger id).
#[derive(Debug, Clone, Copy, PartialEq)]
struct WorstFirst(Neighbor);

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.ordering(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    fn jittered_grid() -> Vec<Point> {
        // Deterministic pseudo-jitter, no RNG dependency in unit tests.
        let mut pts = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let jitter = f64::from((i * 31 + j * 17) % 7) * 0.01;
                pts.push(Point::new(f64::from(i) + jitter, f64::from(j) - jitter));
            }
        }
        pts
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = jittered_grid();
        let t = KdTree::build(&pts);
        for q in [
            Point::new(0.0, 0.0),
            Point::new(5.5, 5.5),
            Point::new(-3.0, 20.0),
            Point::new(11.9, 0.1),
        ] {
            assert_eq!(
                t.nearest(q, |_| true),
                brute::nearest(&pts, q, |_| true),
                "query {q}"
            );
        }
    }

    #[test]
    fn k_nearest_matches_brute_force_with_filter() {
        let pts = jittered_grid();
        let t = KdTree::build(&pts);
        let filter = |id: u32| id % 4 != 1;
        for q in [Point::new(3.3, 9.1), Point::new(8.0, 2.0)] {
            for k in [1, 7, 50, 1000] {
                assert_eq!(
                    t.k_nearest(q, k, filter),
                    brute::k_nearest(&pts, q, k, filter),
                    "query {q} k={k}"
                );
            }
        }
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let pts = jittered_grid();
        let t = KdTree::build(&pts);
        let q = Point::new(6.0, 6.0);
        for r in [0.0, 1.0, 3.5, 50.0] {
            assert_eq!(
                t.within_radius(q, r, |_| true),
                brute::within_radius(&pts, q, r, |_| true),
                "radius {r}"
            );
        }
    }

    #[test]
    fn duplicate_points_are_all_reachable() {
        let pts = vec![Point::new(1.0, 1.0); 5];
        let t = KdTree::build(&pts);
        let r = t.k_nearest(Point::new(1.0, 1.0), 5, |_| true);
        let ids: Vec<u32> = r.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn filter_excludes_everything() {
        let pts = jittered_grid();
        let t = KdTree::build(&pts);
        assert!(t.nearest(Point::ORIGIN, |_| false).is_none());
        assert!(t.within_radius(Point::ORIGIN, 100.0, |_| false).is_empty());
    }

    #[test]
    fn single_point_tree() {
        let t = KdTree::build(&[Point::new(2.0, 3.0)]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let n = t.nearest(Point::ORIGIN, |_| true).unwrap();
        assert_eq!(n.id, 0);
        assert!((n.distance - 13f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn build_rejects_empty() {
        let _ = KdTree::build(&[]);
    }

    #[test]
    #[should_panic(expected = "finite coordinates")]
    fn build_rejects_infinite() {
        let _ = KdTree::build(&[Point::new(0.0, f64::INFINITY)]);
    }
}
