//! Property-based tests: both spatial indexes must agree with the brute-force
//! oracle on arbitrary point sets and queries, and the metrics must satisfy
//! the metric axioms that the inference model relies on.

use crowd_geo::{
    brute, DistanceNormalizer, Euclidean, GridIndex, Haversine, KdTree, Metric, Point,
};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), 1..max)
}

/// Neighbour lists can differ in float noise only; ids must match exactly.
fn ids(neighbors: &[crowd_geo::Neighbor]) -> Vec<u32> {
    neighbors.iter().map(|n| n.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn euclidean_metric_axioms(a in arb_point(), b in arb_point(), c in arb_point()) {
        let m = Euclidean;
        prop_assert!(m.distance(a, b) >= 0.0);
        prop_assert!((m.distance(a, b) - m.distance(b, a)).abs() < 1e-9);
        prop_assert!(m.distance(a, a) < 1e-12);
        // Triangle inequality with float slack.
        prop_assert!(m.distance(a, c) <= m.distance(a, b) + m.distance(b, c) + 1e-9);
    }

    #[test]
    fn haversine_symmetry_and_nonnegativity(
        lon1 in -180.0f64..180.0, lat1 in -89.0f64..89.0,
        lon2 in -180.0f64..180.0, lat2 in -89.0f64..89.0,
    ) {
        let m = Haversine::earth();
        let a = Point::new(lon1, lat1);
        let b = Point::new(lon2, lat2);
        let d = m.distance(a, b);
        prop_assert!(d >= 0.0);
        prop_assert!((d - m.distance(b, a)).abs() < 1e-6);
        // Cannot exceed half the circumference.
        prop_assert!(d <= std::f64::consts::PI * Haversine::EARTH_RADIUS_KM + 1e-6);
    }

    #[test]
    fn normalizer_maps_members_into_unit_interval(pts in arb_points(40)) {
        if let Some(n) = DistanceNormalizer::max_pairwise(&pts, &Euclidean) {
            for &a in &pts {
                for &b in &pts {
                    let d = n.normalize(Euclidean.distance(a, b));
                    prop_assert!((0.0..=1.0).contains(&d));
                }
            }
        }
    }

    #[test]
    fn bbox_diagonal_never_smaller_than_exact_diameter(pts in arb_points(40)) {
        let exact = DistanceNormalizer::max_pairwise(&pts, &Euclidean);
        let bound = DistanceNormalizer::bbox_diagonal(&pts);
        if let (Some(exact), Some(bound)) = (exact, bound) {
            prop_assert!(bound.max_distance() + 1e-9 >= exact.max_distance());
        }
    }

    #[test]
    fn grid_knn_agrees_with_brute(
        pts in arb_points(120),
        q in arb_point(),
        k in 0usize..15,
        cell in 1usize..16,
        modulus in 1u32..5,
    ) {
        let g = GridIndex::build(&pts, cell);
        let filter = |id: u32| id % modulus != 0 || modulus == 1;
        prop_assert_eq!(
            ids(&g.k_nearest(q, k, filter)),
            ids(&brute::k_nearest(&pts, q, k, filter))
        );
    }

    #[test]
    fn kdtree_knn_agrees_with_brute(
        pts in arb_points(120),
        q in arb_point(),
        k in 0usize..15,
        modulus in 1u32..5,
    ) {
        let t = KdTree::build(&pts);
        let filter = |id: u32| id % modulus != 0 || modulus == 1;
        prop_assert_eq!(
            ids(&t.k_nearest(q, k, filter)),
            ids(&brute::k_nearest(&pts, q, k, filter))
        );
    }

    #[test]
    fn grid_and_kdtree_agree_with_each_other(
        pts in arb_points(80),
        q in arb_point(),
        k in 1usize..10,
    ) {
        let g = GridIndex::build(&pts, 4);
        let t = KdTree::build(&pts);
        prop_assert_eq!(ids(&g.k_nearest(q, k, |_| true)), ids(&t.k_nearest(q, k, |_| true)));
    }

    #[test]
    fn radius_queries_agree_with_brute(
        pts in arb_points(80),
        q in arb_point(),
        r in 0.0f64..80.0,
    ) {
        let g = GridIndex::build(&pts, 4);
        let t = KdTree::build(&pts);
        let expect = ids(&brute::within_radius(&pts, q, r, |_| true));
        prop_assert_eq!(ids(&g.within_radius(q, r, |_| true)), expect.clone());
        prop_assert_eq!(ids(&t.within_radius(q, r, |_| true)), expect);
    }

    #[test]
    fn knn_distances_are_sorted_and_consistent(
        pts in arb_points(60),
        q in arb_point(),
        k in 1usize..10,
    ) {
        let t = KdTree::build(&pts);
        let result = t.k_nearest(q, k, |_| true);
        for w in result.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance + 1e-12);
        }
        for n in &result {
            prop_assert!((n.distance - pts[n.id as usize].distance(q)).abs() < 1e-9);
        }
    }
}

/// Lattice-snapped points: coarse integer coordinates force duplicate
/// locations and exact distance ties, the worst case for tie-breaking.
fn arb_lattice_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0u32..6, 0u32..6).prop_map(|(x, y)| Point::new(f64::from(x), f64::from(y))),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kdtree_nearest_agrees_with_brute_on_tie_heavy_sets(
        pts in arb_lattice_points(80),
        qx in 0u32..6,
        qy in 0u32..6,
        modulus in 1u32..4,
    ) {
        let query = Point::new(f64::from(qx), f64::from(qy));
        let tree = KdTree::build(&pts);
        let filter = |id: u32| id % modulus != 0 || modulus == 1;
        prop_assert_eq!(
            tree.nearest(query, filter).map(|n| n.id),
            brute::nearest(&pts, query, filter).map(|n| n.id)
        );
        // A filter rejecting every point yields no neighbour.
        prop_assert!(tree.nearest(query, |_| false).is_none());
    }

    #[test]
    fn kdtree_knn_agrees_with_brute_on_duplicate_lattices(
        pts in arb_lattice_points(60),
        qx in 0u32..6,
        qy in 0u32..6,
        k in 0usize..70,
    ) {
        // k may exceed the point count; both sides must truncate identically
        // and break exact distance ties by id.
        let query = Point::new(f64::from(qx), f64::from(qy));
        let tree = KdTree::build(&pts);
        prop_assert_eq!(
            ids(&tree.k_nearest(query, k, |_| true)),
            ids(&brute::k_nearest(&pts, query, k, |_| true))
        );
    }
}
