//! Campaign persistence: serialise each shard's answer log + the service
//! configuration to JSON, and rebuild a service deterministically by
//! replaying the log through [`crowd_core::Framework::submit`].
//!
//! The snapshot does **not** persist model parameters. Replaying a shard's
//! *event stream* in its recorded order — answers interleaved with gossip
//! folds and hardening sweeps at their recorded positions — reproduces
//! the exact sequence the live shard processed (every incremental-EM
//! absorption, every delayed full-EM trigger, every peer-statistic fold,
//! every `force_full_em` sweep), so the restored model state is
//! bit-identical to the snapshotted one. What must be stored is only what
//! replay cannot recompute: the answers themselves, their order, the
//! out-of-stream events (fold payloads came from racy cross-shard timing;
//! sweeps from explicit operator calls), each shard's publish counter
//! (the delta version stamp), the in-flight exchange slots (each shard's
//! latest *published* delta, so a resumed service keeps gossiping from
//! where it left off), and the budget already charged for assignments
//! whose answers had not arrived yet.
//!
//! Version history: v1 (pre-gossip) documents carry no `gossip_every`, no
//! `gossip_events` and no `exchange`; they restore with gossip disabled,
//! exactly as they were recorded.

use crowd_core::{
    CoreError, DistanceFunctionSet, EmConfig, InitStrategy, LabelBits, TaskId, TaskSet,
    UpdatePolicy, WorkerId, WorkerPool, WorkerStatDelta,
};

use crate::json::{Json, JsonError};
use crate::service::{LabellingService, ServeConfig};
use crate::shard::{GossipEvent, GossipEventKind};

/// Current snapshot format version. Version 1 (pre-gossip) documents are
/// still accepted by [`ServiceSnapshot::from_json`].
pub const SNAPSHOT_VERSION: u64 = 2;

/// Errors from snapshot encoding, decoding or restore.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is valid JSON but not a valid snapshot.
    Schema(String),
    /// The snapshot does not match the task set / worker pool / shard map
    /// it is being restored against.
    Mismatch(String),
    /// A recorded answer was rejected during replay (corrupt log).
    Replay {
        /// The shard whose replay failed.
        shard: usize,
        /// The rejection.
        error: CoreError,
    },
}

impl From<JsonError> for SnapshotError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Json(e) => write!(f, "{e}"),
            Self::Schema(msg) => write!(f, "snapshot schema error: {msg}"),
            Self::Mismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
            Self::Replay { shard, error } => {
                write!(f, "replay failed on shard {shard}: {error}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One recorded answer, in the global task id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SnapshotAnswer {
    /// The answering worker.
    pub worker: WorkerId,
    /// The answered task (global id).
    pub task: TaskId,
    /// The verdict bits.
    pub bits: LabelBits,
}

/// One shard's persisted state.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShardSnapshot {
    /// Shard id.
    pub shard: usize,
    /// The shard's budget slice.
    pub budget: usize,
    /// Budget charged at snapshot time (may exceed the answer count:
    /// assignments can be issued and not yet answered).
    pub budget_used: usize,
    /// The shard's answers in arrival order.
    pub answers: Vec<SnapshotAnswer>,
    /// Out-of-stream model events (peer-statistic folds, hardening full
    /// sweeps) applied to this shard, in order, each stamped with the
    /// answer-log position it was applied at. Restore interleaves them
    /// with the answer replay to reproduce the exact event stream.
    pub gossip_events: Vec<GossipEvent>,
    /// Deltas the shard has published — the version-stamp counter, so a
    /// restored shard's next publish continues the sequence instead of
    /// reusing an already-seen version.
    pub publishes: u64,
}

/// A whole-service snapshot.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Task count of the campaign the snapshot belongs to.
    pub n_tasks: usize,
    /// Worker count of the campaign the snapshot belongs to.
    pub n_workers: usize,
    /// The service configuration (shard count already clamped).
    pub config: ServeConfig,
    /// Per-shard state, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
    /// The gossip exchange at snapshot time: each shard's latest
    /// *published* delta (the "in-flight" statistics peers have not
    /// necessarily folded yet), indexed by shard id. Empty when gossip is
    /// disabled or in v1 documents.
    pub exchange: Vec<Option<WorkerStatDelta>>,
}

fn bits_to_string(bits: LabelBits) -> String {
    bits.iter().map(|b| if b { '1' } else { '0' }).collect()
}

fn bits_from_string(s: &str) -> Result<LabelBits, SnapshotError> {
    if s.len() > LabelBits::MAX_LABELS || s.chars().any(|c| c != '0' && c != '1') {
        return Err(SnapshotError::Schema(format!("invalid bit string '{s}'")));
    }
    let values: Vec<bool> = s.chars().map(|c| c == '1').collect();
    Ok(LabelBits::from_slice(&values))
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, SnapshotError> {
    obj.get(key)
        .ok_or_else(|| SnapshotError::Schema(format!("missing field '{key}'")))
}

fn usize_field(obj: &Json, key: &str) -> Result<usize, SnapshotError> {
    field(obj, key)?.as_usize().ok_or_else(|| {
        SnapshotError::Schema(format!("field '{key}' is not a non-negative integer"))
    })
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, SnapshotError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| SnapshotError::Schema(format!("field '{key}' is not a number")))
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, SnapshotError> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| SnapshotError::Schema(format!("field '{key}' is not a string")))
}

fn f64_array(obj: &Json, key: &str) -> Result<Vec<f64>, SnapshotError> {
    field(obj, key)?
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema(format!("'{key}' is not an array")))?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| SnapshotError::Schema(format!("'{key}' holds a non-number")))
        })
        .collect()
}

fn u32_array(obj: &Json, key: &str) -> Result<Vec<u32>, SnapshotError> {
    field(obj, key)?
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema(format!("'{key}' is not an array")))?
        .iter()
        .map(|v| {
            v.as_usize()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| SnapshotError::Schema(format!("'{key}' holds an invalid count")))
        })
        .collect()
}

#[allow(clippy::cast_precision_loss)] // ids/versions/counts stay below 2^53
fn delta_to_json(delta: &WorkerStatDelta) -> Json {
    Json::Obj(vec![
        ("source".into(), Json::Num(delta.source as f64)),
        ("version".into(), Json::Num(delta.version as f64)),
        ("n_funcs".into(), Json::Num(delta.n_funcs as f64)),
        ("i_sum".into(), Json::num_array(delta.i_sum.iter().copied())),
        (
            "worker_bits".into(),
            Json::num_array(delta.worker_bits.iter().map(|&b| f64::from(b))),
        ),
        (
            "dw_sum".into(),
            Json::num_array(delta.dw_sum.iter().copied()),
        ),
    ])
}

fn delta_from_json(value: &Json) -> Result<WorkerStatDelta, SnapshotError> {
    let delta = WorkerStatDelta {
        source: usize_field(value, "source")? as u64,
        version: usize_field(value, "version")? as u64,
        n_funcs: usize_field(value, "n_funcs")?,
        i_sum: f64_array(value, "i_sum")?,
        worker_bits: u32_array(value, "worker_bits")?,
        dw_sum: f64_array(value, "dw_sum")?,
    };
    if !delta.is_well_formed() {
        return Err(SnapshotError::Schema(
            "worker-stat delta has inconsistent shapes".into(),
        ));
    }
    Ok(delta)
}

fn em_to_json(em: &EmConfig) -> Json {
    Json::Obj(vec![
        ("alpha".into(), Json::Num(em.alpha)),
        ("tolerance".into(), Json::Num(em.tolerance)),
        ("max_iterations".into(), Json::Num(em.max_iterations as f64)),
        (
            "init".into(),
            Json::Str(
                match em.init {
                    InitStrategy::Uniform => "uniform",
                    InitStrategy::VoteShare => "vote_share",
                }
                .into(),
            ),
        ),
        (
            "lambdas".into(),
            Json::Arr(
                em.fset
                    .functions()
                    .iter()
                    .map(|f| Json::Num(f.lambda))
                    .collect(),
            ),
        ),
    ])
}

fn em_from_json(value: &Json) -> Result<EmConfig, SnapshotError> {
    let init = match str_field(value, "init")? {
        "uniform" => InitStrategy::Uniform,
        "vote_share" => InitStrategy::VoteShare,
        other => {
            return Err(SnapshotError::Schema(format!(
                "unknown init strategy '{other}'"
            )))
        }
    };
    let lambdas: Vec<f64> = field(value, "lambdas")?
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema("'lambdas' is not an array".into()))?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|l| l.is_finite() && *l >= 0.0)
                .ok_or_else(|| SnapshotError::Schema("invalid lambda".into()))
        })
        .collect::<Result<_, _>>()?;
    if lambdas.is_empty() {
        return Err(SnapshotError::Schema("'lambdas' must be non-empty".into()));
    }
    Ok(EmConfig {
        alpha: f64_field(value, "alpha")?,
        tolerance: f64_field(value, "tolerance")?,
        max_iterations: usize_field(value, "max_iterations")?,
        init,
        fset: DistanceFunctionSet::new(&lambdas),
    })
}

fn config_to_json(config: &ServeConfig) -> Json {
    Json::Obj(vec![
        ("n_shards".into(), Json::Num(config.n_shards as f64)),
        (
            "ingest_threads".into(),
            Json::Num(config.ingest_threads as f64),
        ),
        (
            "queue_capacity".into(),
            Json::Num(config.queue_capacity as f64),
        ),
        ("drain_batch".into(), Json::Num(config.drain_batch as f64)),
        ("budget".into(), Json::Num(config.budget as f64)),
        ("h".into(), Json::Num(config.h as f64)),
        ("em".into(), em_to_json(&config.em)),
        (
            "full_em_every".into(),
            config
                .policy
                .full_em_every
                .map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
        (
            "full_sweep_every".into(),
            Json::Num(config.policy.full_sweep_every as f64),
        ),
        (
            "dirty_coverage_fallback".into(),
            Json::Num(config.policy.dirty_coverage_fallback as f64),
        ),
        (
            "gossip_every".into(),
            config
                .gossip_every
                .map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
    ])
}

fn config_from_json(value: &Json) -> Result<ServeConfig, SnapshotError> {
    let full_em_every = match field(value, "full_em_every")? {
        Json::Null => None,
        v => Some(v.as_usize().ok_or_else(|| {
            SnapshotError::Schema("'full_em_every' is not an integer or null".into())
        })?),
    };
    // Absent in pre-dirty-set snapshots, which were recorded under
    // always-full-sweep behaviour — restore them exactly as such.
    let full_sweep_every = match value.get("full_sweep_every") {
        None => 1,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| SnapshotError::Schema("'full_sweep_every' is not an integer".into()))?,
    };
    // Absent before the threshold was promoted to a policy field; 60 is
    // the hard-coded value those snapshots ran under.
    let dirty_coverage_fallback = match value.get("dirty_coverage_fallback") {
        None => 60,
        Some(v) => v.as_usize().ok_or_else(|| {
            SnapshotError::Schema("'dirty_coverage_fallback' is not an integer".into())
        })?,
    };
    // Absent in v1 (pre-gossip) documents: restore with gossip disabled,
    // exactly as the campaign was recorded.
    let gossip_every = match value.get("gossip_every") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_usize().ok_or_else(|| {
            SnapshotError::Schema("'gossip_every' is not an integer or null".into())
        })?),
    };
    Ok(ServeConfig {
        n_shards: usize_field(value, "n_shards")?,
        ingest_threads: usize_field(value, "ingest_threads")?,
        queue_capacity: usize_field(value, "queue_capacity")?,
        drain_batch: usize_field(value, "drain_batch")?,
        budget: usize_field(value, "budget")?,
        h: usize_field(value, "h")?,
        em: em_from_json(field(value, "em")?)?,
        policy: UpdatePolicy {
            full_em_every,
            full_sweep_every,
            dirty_coverage_fallback,
        },
        gossip_every,
    })
}

impl ServiceSnapshot {
    /// Renders the snapshot as a deterministic JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("shard".into(), Json::Num(s.shard as f64)),
                    ("budget".into(), Json::Num(s.budget as f64)),
                    ("budget_used".into(), Json::Num(s.budget_used as f64)),
                    (
                        "answers".into(),
                        Json::Arr(
                            s.answers
                                .iter()
                                .map(|a| {
                                    Json::Obj(vec![
                                        ("w".into(), Json::Num(f64::from(a.worker.0))),
                                        ("t".into(), Json::Num(f64::from(a.task.0))),
                                        ("bits".into(), Json::Str(bits_to_string(a.bits))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "gossip_events".into(),
                        Json::Arr(
                            s.gossip_events
                                .iter()
                                .map(|e| {
                                    let mut entry =
                                        vec![("position".into(), Json::Num(e.position as f64))];
                                    match &e.kind {
                                        GossipEventKind::Fold(delta) => {
                                            entry.push(("delta".into(), delta_to_json(delta)));
                                        }
                                        GossipEventKind::FullSweep => {
                                            entry.push(("sweep".into(), Json::Bool(true)));
                                        }
                                    }
                                    Json::Obj(entry)
                                })
                                .collect(),
                        ),
                    ),
                    ("publishes".into(), Json::Num(s.publishes as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::Num(self.version as f64)),
            ("n_tasks".into(), Json::Num(self.n_tasks as f64)),
            ("n_workers".into(), Json::Num(self.n_workers as f64)),
            ("config".into(), config_to_json(&self.config)),
            ("shards".into(), Json::Arr(shards)),
            (
                "exchange".into(),
                Json::Arr(
                    self.exchange
                        .iter()
                        .map(|slot| slot.as_ref().map_or(Json::Null, delta_to_json))
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Parses a snapshot document.
    ///
    /// # Errors
    /// [`SnapshotError::Json`] on malformed JSON, [`SnapshotError::Schema`]
    /// on a structurally invalid or version-incompatible document.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let doc = Json::parse(text)?;
        let version = usize_field(&doc, "version")? as u64;
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(SnapshotError::Schema(format!(
                "unsupported snapshot version {version} (expected 1..={SNAPSHOT_VERSION})"
            )));
        }
        let shards_json = field(&doc, "shards")?
            .as_arr()
            .ok_or_else(|| SnapshotError::Schema("'shards' is not an array".into()))?;
        let mut shards = Vec::with_capacity(shards_json.len());
        for shard_json in shards_json {
            let answers_json = field(shard_json, "answers")?
                .as_arr()
                .ok_or_else(|| SnapshotError::Schema("'answers' is not an array".into()))?;
            let mut answers = Vec::with_capacity(answers_json.len());
            for a in answers_json {
                answers.push(SnapshotAnswer {
                    worker: WorkerId(
                        u32::try_from(usize_field(a, "w")?)
                            .map_err(|_| SnapshotError::Schema("worker id out of range".into()))?,
                    ),
                    task: TaskId(
                        u32::try_from(usize_field(a, "t")?)
                            .map_err(|_| SnapshotError::Schema("task id out of range".into()))?,
                    ),
                    bits: bits_from_string(str_field(a, "bits")?)?,
                });
            }
            // v1 documents predate gossip; an absent array means none.
            let mut gossip_events = Vec::new();
            if let Some(events_json) = shard_json.get("gossip_events") {
                let events_json = events_json.as_arr().ok_or_else(|| {
                    SnapshotError::Schema("'gossip_events' is not an array".into())
                })?;
                for e in events_json {
                    let kind =
                        match (e.get("delta"), e.get("sweep")) {
                            (Some(delta), None) => GossipEventKind::Fold(delta_from_json(delta)?),
                            (None, Some(Json::Bool(true))) => GossipEventKind::FullSweep,
                            _ => return Err(SnapshotError::Schema(
                                "gossip event must carry exactly one of 'delta' or 'sweep':true"
                                    .into(),
                            )),
                        };
                    gossip_events.push(GossipEvent {
                        position: usize_field(e, "position")?,
                        kind,
                    });
                }
            }
            let publishes = match shard_json.get("publishes") {
                None => 0,
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| SnapshotError::Schema("'publishes' is not an integer".into()))?
                    as u64,
            };
            shards.push(ShardSnapshot {
                shard: usize_field(shard_json, "shard")?,
                budget: usize_field(shard_json, "budget")?,
                budget_used: usize_field(shard_json, "budget_used")?,
                answers,
                gossip_events,
                publishes,
            });
        }
        let mut exchange = Vec::new();
        if let Some(exchange_json) = doc.get("exchange") {
            let slots = exchange_json
                .as_arr()
                .ok_or_else(|| SnapshotError::Schema("'exchange' is not an array".into()))?;
            for slot in slots {
                exchange.push(match slot {
                    Json::Null => None,
                    v => Some(delta_from_json(v)?),
                });
            }
        }
        Ok(Self {
            version,
            n_tasks: usize_field(&doc, "n_tasks")?,
            n_workers: usize_field(&doc, "n_workers")?,
            config: config_from_json(field(&doc, "config")?)?,
            shards,
            exchange,
        })
    }
}

impl LabellingService {
    /// Captures the campaign state. Flushes the ingestion queue first
    /// (producers must have stopped, as for
    /// [`LabellingService::quiesce`]).
    #[must_use]
    pub fn snapshot(&self) -> ServiceSnapshot {
        self.quiesce();
        let shards = self
            .inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, lock)| {
                let shard = lock.read();
                ShardSnapshot {
                    shard: i,
                    budget: shard.framework().config().budget,
                    budget_used: shard.framework().budget_used(),
                    answers: shard
                        .answers_global()
                        .map(|(worker, task, bits)| SnapshotAnswer { worker, task, bits })
                        .collect(),
                    gossip_events: shard.gossip_events().to_vec(),
                    publishes: shard.publishes(),
                }
            })
            .collect();
        let exchange = self
            .inner
            .exchange
            .iter()
            .map(|slot| slot.read().clone())
            .collect();
        ServiceSnapshot {
            version: SNAPSHOT_VERSION,
            n_tasks: self.inner.map.n_tasks(),
            n_workers: self.inner.n_workers(),
            config: self.config.clone(),
            shards,
            exchange,
        }
    }

    /// Rebuilds a service from a snapshot over the *same* task set and
    /// worker pool the snapshot was taken from, replaying every shard's
    /// recorded event stream — answers in arrival order, interleaved with
    /// the gossip folds at their recorded positions. The restored model
    /// state is bit-identical to the snapshotted one (see the module
    /// docs), the exchange is re-seeded with the snapshotted in-flight
    /// deltas, and the service is live — producers can resume (and keep
    /// gossiping) where the campaign left off.
    ///
    /// # Errors
    /// [`SnapshotError::Mismatch`] when `tasks` / `workers` do not match
    /// the snapshot's shapes (or the derived shard map / budget slices
    /// disagree, or a gossip event is mis-positioned),
    /// [`SnapshotError::Replay`] when a recorded answer is rejected.
    pub fn restore(
        tasks: &TaskSet,
        workers: &WorkerPool,
        snapshot: &ServiceSnapshot,
    ) -> Result<Self, SnapshotError> {
        if snapshot.n_tasks != tasks.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot covers {} tasks, task set has {}",
                snapshot.n_tasks,
                tasks.len()
            )));
        }
        if snapshot.n_workers != workers.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot covers {} workers, pool has {}",
                snapshot.n_workers,
                workers.len()
            )));
        }
        let service = Self::start(tasks, workers, snapshot.config.clone());
        if service.n_shards() != snapshot.shards.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} shards, rebuilt map has {}",
                snapshot.shards.len(),
                service.n_shards()
            )));
        }
        for (i, shard_snapshot) in snapshot.shards.iter().enumerate() {
            if shard_snapshot.shard != i {
                return Err(SnapshotError::Mismatch(format!(
                    "shard entry {i} is labelled {}",
                    shard_snapshot.shard
                )));
            }
            let mut shard = service.inner.shards[i].write();
            if shard.framework().config().budget != shard_snapshot.budget {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i} slice is {}, snapshot says {}",
                    shard.framework().config().budget,
                    shard_snapshot.budget
                )));
            }
            // Replay the event stream: before the answer at index `p`,
            // apply every event recorded at position `p` (i.e. after `p`
            // answers had been applied), in recorded order. The events
            // re-record themselves, so a re-snapshot is identical.
            let mut events = shard_snapshot.gossip_events.iter().peekable();
            let mut apply_events_at =
                |shard: &mut crate::shard::Shard, position: usize| -> Result<(), SnapshotError> {
                    while events.peek().is_some_and(|e| e.position == position) {
                        let event = events.next().expect("peeked");
                        match &event.kind {
                            GossipEventKind::Fold(delta) => {
                                if !shard.fold_peer(delta) {
                                    return Err(SnapshotError::Mismatch(format!(
                                        "shard {i}: recorded gossip fold at position {position} \
                                         was stale on replay (corrupt event order)"
                                    )));
                                }
                            }
                            GossipEventKind::FullSweep => shard.harden(),
                        }
                    }
                    Ok(())
                };
            for (p, answer) in shard_snapshot.answers.iter().enumerate() {
                apply_events_at(&mut shard, p)?;
                let triggered = shard
                    .submit_global(answer.worker, answer.task, answer.bits)
                    .map_err(|error| SnapshotError::Replay { shard: i, error })?;
                service.inner.metrics[i].record_submit(triggered);
            }
            // Trailing events recorded at the final answer count (e.g. an
            // end-of-campaign exchange cycle + hardening sweep).
            apply_events_at(&mut shard, shard_snapshot.answers.len())?;
            if let Some(stray) = events.next() {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i}: gossip event at position {} but only {} answers recorded",
                    stray.position,
                    shard_snapshot.answers.len()
                )));
            }
            shard.set_publishes(shard_snapshot.publishes);
            // Seed the gossip counters from the replayed fold events so
            // the restored metrics are consistent with the replayed
            // submit/rebuild counters (distinct fold positions = rounds
            // that folded something; publish-only rounds are not
            // persisted).
            let fold_positions: Vec<usize> = shard_snapshot
                .gossip_events
                .iter()
                .filter(|e| matches!(e.kind, GossipEventKind::Fold(_)))
                .map(|e| e.position)
                .collect();
            if let Some(&last) = fold_positions.last() {
                let rounds = 1 + fold_positions.windows(2).filter(|w| w[0] != w[1]).count() as u64;
                service.inner.metrics[i].seed_gossip(
                    rounds,
                    fold_positions.len() as u64,
                    last as u64,
                );
            }
            let charged = shard.framework_mut().charge(shard_snapshot.budget_used);
            if charged != shard_snapshot.budget_used {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i} cannot re-charge {} of budget {}",
                    shard_snapshot.budget_used, shard_snapshot.budget
                )));
            }
            service.inner.metrics[i].set_budget_remaining(shard.framework().budget_remaining());
        }
        // Re-seed the exchange with the snapshotted in-flight deltas so the
        // resumed service gossips from exactly where the original stood —
        // republishing current state instead would hand peers *newer*
        // statistics than the original exchange held and break
        // resume-lockstep with a still-running original.
        if !snapshot.exchange.is_empty() {
            if snapshot.exchange.len() != service.n_shards() {
                return Err(SnapshotError::Mismatch(format!(
                    "snapshot exchange has {} slots, service has {} shards",
                    snapshot.exchange.len(),
                    service.n_shards()
                )));
            }
            for (slot, held) in service.inner.exchange.iter().zip(&snapshot.exchange) {
                *slot.write() = held.clone();
            }
        }
        Ok(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_delta(source: u64, version: u64) -> WorkerStatDelta {
        WorkerStatDelta {
            source,
            version,
            n_funcs: 2,
            i_sum: vec![0.1 + 0.2, 1.5],
            worker_bits: vec![2, 4],
            dw_sum: vec![0.25, 1.0 / 3.0, 0.5, 0.125],
        }
    }

    fn sample_snapshot() -> ServiceSnapshot {
        ServiceSnapshot {
            version: SNAPSHOT_VERSION,
            n_tasks: 20,
            n_workers: 7,
            config: ServeConfig {
                n_shards: 3,
                budget: 123,
                gossip_every: Some(50),
                ..ServeConfig::default()
            },
            shards: vec![
                ShardSnapshot {
                    shard: 0,
                    budget: 60,
                    budget_used: 12,
                    answers: vec![
                        SnapshotAnswer {
                            worker: WorkerId(3),
                            task: TaskId(11),
                            bits: LabelBits::from_slice(&[true, false, true]),
                        },
                        SnapshotAnswer {
                            worker: WorkerId(0),
                            task: TaskId(4),
                            bits: LabelBits::from_slice(&[false, false, false]),
                        },
                    ],
                    gossip_events: vec![
                        GossipEvent {
                            position: 1,
                            kind: GossipEventKind::Fold(sample_delta(1, 9)),
                        },
                        GossipEvent {
                            position: 2,
                            kind: GossipEventKind::FullSweep,
                        },
                    ],
                    publishes: 3,
                },
                ShardSnapshot {
                    shard: 1,
                    budget: 63,
                    budget_used: 0,
                    answers: vec![],
                    gossip_events: vec![],
                    publishes: 0,
                },
            ],
            exchange: vec![Some(sample_delta(0, 2)), None, Some(sample_delta(2, 7))],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snapshot = sample_snapshot();
        let text = snapshot.to_json();
        let back = ServiceSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snapshot);
        // Determinism: rendering twice gives identical bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn em_config_floats_survive_round_trip() {
        let mut snapshot = sample_snapshot();
        snapshot.config.em.alpha = 0.1 + 0.2; // a float with an ugly tail
        snapshot.config.em.tolerance = 1e-9;
        snapshot.config.policy = UpdatePolicy {
            full_em_every: None,
            full_sweep_every: 5,
            dirty_coverage_fallback: 42,
        };
        let back = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(
            back.config.em.alpha.to_bits(),
            snapshot.config.em.alpha.to_bits()
        );
        assert_eq!(back.config.policy.full_em_every, None);
        assert_eq!(back.config.policy.full_sweep_every, 5);
        assert_eq!(back.config.policy.dirty_coverage_fallback, 42);
        assert_eq!(back.config.em.fset, snapshot.config.em.fset);
    }

    #[test]
    fn missing_full_sweep_every_restores_as_exact() {
        // Pre-dirty-set snapshots carry no 'full_sweep_every'; they must
        // restore to always-full-sweep behaviour, matching how they were
        // recorded.
        let snapshot = sample_snapshot();
        let text = snapshot.to_json();
        let stripped = text.replace(",\"full_sweep_every\":8", "");
        assert_ne!(stripped, text, "expected the field to be present");
        let back = ServiceSnapshot::from_json(&stripped).unwrap();
        assert_eq!(back.config.policy.full_sweep_every, 1);
    }

    #[test]
    fn gossip_payload_round_trips_exactly() {
        let snapshot = sample_snapshot();
        let back = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(back.exchange, snapshot.exchange);
        assert_eq!(
            back.shards[0].gossip_events,
            snapshot.shards[0].gossip_events
        );
        // Float payloads survive bit-for-bit (0.1 + 0.2 has an ugly tail).
        let held = back.exchange[0].as_ref().unwrap();
        assert_eq!(held.i_sum[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(back.config.gossip_every, Some(50));
        assert_eq!(back.config.policy.dirty_coverage_fallback, 60);
    }

    #[test]
    fn v1_documents_without_gossip_fields_still_parse() {
        // A pre-gossip (version 1) snapshot carries none of the new
        // fields; it must parse with gossip disabled and no events.
        let v1 = "{\"version\":1,\"n_tasks\":4,\"n_workers\":2,\
                  \"config\":{\"n_shards\":1,\"ingest_threads\":1,\
                  \"queue_capacity\":8,\"drain_batch\":4,\"budget\":10,\"h\":2,\
                  \"em\":{\"alpha\":0.5,\"tolerance\":0.005,\"max_iterations\":100,\
                  \"init\":\"vote_share\",\"lambdas\":[0.4,1.0,2.5]},\
                  \"full_em_every\":100,\"full_sweep_every\":8},\
                  \"shards\":[{\"shard\":0,\"budget\":10,\"budget_used\":0,\
                  \"answers\":[{\"w\":0,\"t\":1,\"bits\":\"101\"}]}]}";
        let parsed = ServiceSnapshot::from_json(v1).unwrap();
        assert_eq!(parsed.version, 1);
        assert_eq!(parsed.config.gossip_every, None);
        assert_eq!(parsed.config.policy.dirty_coverage_fallback, 60);
        assert!(parsed.shards[0].gossip_events.is_empty());
        assert!(parsed.exchange.is_empty());
    }

    #[test]
    fn malformed_delta_payload_is_rejected() {
        let mut snapshot = sample_snapshot();
        snapshot.exchange[0].as_mut().unwrap().i_sum.pop();
        let err = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut snapshot = sample_snapshot();
        snapshot.version = 99;
        let err = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(matches!(
            ServiceSnapshot::from_json("{not json"),
            Err(SnapshotError::Json(_))
        ));
        assert!(matches!(
            ServiceSnapshot::from_json("{\"version\": 1}"),
            Err(SnapshotError::Schema(_))
        ));
        let bad_bits = sample_snapshot().to_json().replace("101", "10x");
        assert!(ServiceSnapshot::from_json(&bad_bits).is_err());
    }
}
