//! Campaign persistence: snapshot format **v4** — elastic-aware on top of
//! the v3 parameter-carrying, delta-deduplicated layout — plus the
//! v1/v2/v3 readers and the replay-based restore kept as the verification
//! path.
//!
//! The full spec lives in `docs/SNAPSHOT_FORMAT.md`; the short version:
//!
//! * **v1** (pre-gossip) stored each shard's answer log; restore replayed
//!   it through [`crowd_core::Framework::submit`].
//! * **v2** added the gossip layer: positioned out-of-stream events (peer
//!   folds, hardening sweeps) with *inline* delta payloads, per-shard
//!   publish counters, and the in-flight exchange. Restore replayed the
//!   whole event stream — answers interleaved with events — which is
//!   bit-identical but costs a full campaign's worth of incremental-EM
//!   work, and the inline payloads stored every published delta once *per
//!   folding peer*.
//! * **v3** fixes both growth terms:
//!   1. **Parameters**: each shard persists its latest full-sweep
//!      [`ModelCheckpoint`] (position, event index, converged
//!      [`ModelParams`]). Right after a full sweep the whole model state
//!      is a pure function of `(params, log prefix, folded peers)` — see
//!      [`crowd_core::OnlineModel::restore_checkpoint`] — so restore
//!      bulk-loads the prefix, re-seeds the parameters, recomputes the
//!      sufficient statistics with one deterministic E-pass and replays
//!      only the short suffix recorded after the checkpoint.
//!      [`LabellingService::restore_replay`] keeps the full replay as the
//!      verify path, and [`LabellingService::restore_verified`] runs both
//!      and proves them bit-identical.
//!   2. **Deduplication**: every [`WorkerStatDelta`] payload is stored
//!      once in a top-level table keyed `(source, version)` (the publish
//!      counter makes the key unique); fold events and exchange slots are
//!      two-number references into it.
//!   3. **Increments**: [`Shard::snapshot_delta`] emits only the answers
//!      and events recorded past a [`SnapshotCursor`];
//!      [`ServiceSnapshot::compact`] folds a chain of
//!      [`ServiceSnapshotDelta`]s back into a v3 base that is
//!      byte-identical to a fresh full snapshot.
//!
//! * **v4** makes elasticity persistable. Three content-conditional
//!   additions to the v3 layout — absent on a campaign that never used
//!   them, so such documents differ from v3 only in the version stamp:
//!   1. a top-level `map {version, cells}` block recording the current
//!      [`ShardMap`] whenever a split/merge has bumped it
//!      past the initial version 1 (restore re-partitions shards by it
//!      before replaying);
//!   2. a per-shard `seqs` array of canonical global sequence numbers,
//!      present once a handoff has materialized them (they order the
//!      merged answer streams of later handoffs);
//!   3. a `register` gossip-event kind recording mid-campaign worker
//!      registration at its stream position, replayed into the pool so a
//!      restored service re-grows it identically.
//!
//!   A `prune_every` config field (the periodic self-scheduled prune)
//!   rides along, emitted only when set. Incremental deltas are **not**
//!   defined over elastic documents: [`LabellingService::snapshot_delta`]
//!   rejects a campaign whose map has moved (re-base on a full snapshot
//!   instead).
//!
//! v1–v3 documents still parse and restore exactly as recorded (v1/v2
//! carry no checkpoint, so restore falls back to the replay path).

use std::collections::BTreeMap;

use crowd_core::{
    CoreError, DistanceFunctionSet, EmConfig, EmParallelism, InitStrategy, LabelBits, ModelParams,
    PeerStats, SufficientStats, TaskId, TaskSet, UpdatePolicy, Worker, WorkerId, WorkerPool,
    WorkerStatDelta,
};
use crowd_geo::Point;

use crate::json::{Json, JsonError};
use crate::service::{LabellingService, RetentionPolicy, ServeConfig};
use crate::shard::{GossipEvent, GossipEventKind, ModelCheckpoint, Shard, ShardMap};

/// Current snapshot format version. Versions 1 (pre-gossip), 2 (gossip,
/// inline payloads, no checkpoint) and 3 (checkpoints + delta table, no
/// elasticity) are still accepted by [`ServiceSnapshot::from_json`] and
/// can be re-emitted by [`ServiceSnapshot::to_json_versioned`].
pub const SNAPSHOT_VERSION: u64 = 4;

/// Errors from snapshot encoding, decoding or restore.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is valid JSON but not a valid snapshot.
    Schema(String),
    /// The snapshot does not match the task set / worker pool / shard map
    /// it is being restored against (or a delta does not chain onto its
    /// base, or the two restore paths disagreed under verification).
    Mismatch(String),
    /// A recorded answer was rejected during replay (corrupt log).
    Replay {
        /// The shard whose replay failed.
        shard: usize,
        /// The rejection.
        error: CoreError,
    },
}

impl From<JsonError> for SnapshotError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Json(e) => write!(f, "{e}"),
            Self::Schema(msg) => write!(f, "snapshot schema error: {msg}"),
            Self::Mismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
            Self::Replay { shard, error } => {
                write!(f, "replay failed on shard {shard}: {error}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One recorded answer, in the global task id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SnapshotAnswer {
    /// The answering worker.
    pub worker: WorkerId,
    /// The answered task (global id).
    pub task: TaskId,
    /// The verdict bits.
    pub bits: LabelBits,
}

/// One shard's persisted state.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShardSnapshot {
    /// Shard id.
    pub shard: usize,
    /// The shard's budget slice.
    pub budget: usize,
    /// Budget charged at snapshot time (may exceed the answer count:
    /// assignments can be issued and not yet answered).
    pub budget_used: usize,
    /// The shard's answers in arrival order.
    pub answers: Vec<SnapshotAnswer>,
    /// Out-of-stream model events (peer-statistic folds, hardening full
    /// sweeps) applied to this shard, in order, each stamped with the
    /// answer-log position it was applied at. Restore interleaves them
    /// with the answer replay to reproduce the exact event stream.
    pub gossip_events: Vec<GossipEvent>,
    /// Deltas the shard has published — the version-stamp counter, so a
    /// restored shard's next publish continues the sequence instead of
    /// reusing an already-seen version.
    pub publishes: u64,
    /// The shard's latest full-sweep checkpoint (v3): restore hardens from
    /// these parameters and replays only the stream recorded after it.
    /// `None` in v1/v2 documents and before the first full sweep — restore
    /// then replays the whole stream.
    pub checkpoint: Option<ModelCheckpoint>,
    /// The `(worker, global task)` pairs of answers truncated from the
    /// front of the stream by a retention prune
    /// ([`Shard::prune_to_checkpoint`]). Their payloads live only in the
    /// spill tier (if configured); the pairs keep duplicate detection and
    /// per-worker/per-task counts exact. Empty until a prune; when
    /// non-empty, `answers` holds only the stream suffix from position
    /// `pruned_pairs.len()` on and the shard must carry a checkpoint at or
    /// past that floor.
    pub pruned_pairs: Vec<(WorkerId, TaskId)>,
    /// The frozen sufficient-statistics baseline the pruned prefix
    /// contributed ([`crowd_core::OnlineModel::frozen_baseline`]). Present
    /// exactly when the shard has pruned; restore re-seeds the model from
    /// it before recomputing the resident suffix.
    pub frozen: Option<SufficientStats>,
    /// Canonical global sequence numbers of this shard's answers, in
    /// arrival order (v4, present once a handoff has materialized them —
    /// `None` on a campaign whose map never moved). They record the total
    /// order handoffs merge answer streams in; restore adopts them
    /// verbatim and resumes the global counter past their maximum.
    pub seqs: Option<Vec<u64>>,
}

/// The versioned grid-cell → shard partition of a v4 document, recorded
/// whenever a split/merge has pushed the [`ShardMap`]
/// past its initial version.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SnapshotShardMap {
    /// Monotone map version (1 = the startup partition).
    pub version: u64,
    /// Owning shard of each grid cell, indexed by cell id.
    pub cells: Vec<u32>,
}

/// A whole-service snapshot.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Task count of the campaign the snapshot belongs to.
    pub n_tasks: usize,
    /// Worker count of the campaign the snapshot belongs to.
    pub n_workers: usize,
    /// The service configuration (shard count already clamped).
    pub config: ServeConfig,
    /// Per-shard state, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
    /// The gossip exchange at snapshot time: each shard's latest
    /// *published* delta (the "in-flight" statistics peers have not
    /// necessarily folded yet), indexed by shard id. Empty when gossip is
    /// disabled or in v1 documents.
    pub exchange: Vec<Option<WorkerStatDelta>>,
    /// The current shard map, recorded (v4) only when elasticity has
    /// bumped its version past the initial partition — `None` means the
    /// startup [`ShardMap`] derived from the task set and
    /// `config.n_shards` is still in force, exactly as in v1–v3.
    pub map: Option<SnapshotShardMap>,
}

/// A per-shard position in the persisted stream: how many answers and how
/// many out-of-stream events a base snapshot (or delta chain) already
/// covers. [`Shard::snapshot_delta`] emits everything past the cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SnapshotCursor {
    /// Answers already covered.
    pub answers: usize,
    /// Recorded events already covered.
    pub events: usize,
}

/// One shard's incremental snapshot: the stream recorded past a cursor,
/// plus the shard's current counters and latest checkpoint.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShardDelta {
    /// Shard id.
    pub shard: usize,
    /// Where the base (or previous delta) left off.
    pub since: SnapshotCursor,
    /// Budget charged at delta time (current total, not an increment).
    pub budget_used: usize,
    /// Publish counter at delta time (current total).
    pub publishes: u64,
    /// Answers recorded after `since.answers`, in arrival order.
    pub answers: Vec<SnapshotAnswer>,
    /// Events recorded after `since.events`, in order.
    pub gossip_events: Vec<GossipEvent>,
    /// The shard's latest checkpoint at delta time (may predate the
    /// cursor when no full sweep ran since the base).
    pub checkpoint: Option<ModelCheckpoint>,
}

/// A whole-service incremental snapshot: everything recorded since a base
/// snapshot (or since the previous delta in a chain). Fold a chain back
/// into a restorable base with [`ServiceSnapshot::compact`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceSnapshotDelta {
    /// Format version (always [`SNAPSHOT_VERSION`]; deltas exist only in v3).
    pub version: u64,
    /// Task count of the campaign (validated against the base on compact).
    pub n_tasks: usize,
    /// Worker count of the campaign.
    pub n_workers: usize,
    /// Per-shard increments, indexed by shard id.
    pub shards: Vec<ShardDelta>,
    /// The full exchange at delta time (supersedes the base's).
    pub exchange: Vec<Option<WorkerStatDelta>>,
}

fn bits_to_string(bits: LabelBits) -> String {
    bits.iter().map(|b| if b { '1' } else { '0' }).collect()
}

fn bits_from_string(s: &str) -> Result<LabelBits, SnapshotError> {
    if s.len() > LabelBits::MAX_LABELS || s.chars().any(|c| c != '0' && c != '1') {
        return Err(SnapshotError::Schema(format!("invalid bit string '{s}'")));
    }
    let values: Vec<bool> = s.chars().map(|c| c == '1').collect();
    Ok(LabelBits::from_slice(&values))
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, SnapshotError> {
    obj.get(key)
        .ok_or_else(|| SnapshotError::Schema(format!("missing field '{key}'")))
}

fn usize_field(obj: &Json, key: &str) -> Result<usize, SnapshotError> {
    field(obj, key)?.as_usize().ok_or_else(|| {
        SnapshotError::Schema(format!("field '{key}' is not a non-negative integer"))
    })
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, SnapshotError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| SnapshotError::Schema(format!("field '{key}' is not a number")))
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, SnapshotError> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| SnapshotError::Schema(format!("field '{key}' is not a string")))
}

fn f64_array(obj: &Json, key: &str) -> Result<Vec<f64>, SnapshotError> {
    field(obj, key)?
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema(format!("'{key}' is not an array")))?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| SnapshotError::Schema(format!("'{key}' holds a non-number")))
        })
        .collect()
}

fn u32_array(obj: &Json, key: &str) -> Result<Vec<u32>, SnapshotError> {
    field(obj, key)?
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema(format!("'{key}' is not an array")))?
        .iter()
        .map(|v| {
            v.as_usize()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| SnapshotError::Schema(format!("'{key}' holds an invalid count")))
        })
        .collect()
}

#[allow(clippy::cast_precision_loss)] // n_funcs stays far below 2^53
fn delta_to_json(delta: &WorkerStatDelta) -> Json {
    Json::Obj(vec![
        ("source".into(), Json::uint(delta.source)),
        ("version".into(), Json::uint(delta.version)),
        ("n_funcs".into(), Json::Num(delta.n_funcs as f64)),
        ("i_sum".into(), Json::num_array(delta.i_sum.iter().copied())),
        (
            "worker_bits".into(),
            Json::num_array(delta.worker_bits.iter().map(|&b| f64::from(b))),
        ),
        (
            "dw_sum".into(),
            Json::num_array(delta.dw_sum.iter().copied()),
        ),
    ])
}

fn delta_from_json(value: &Json) -> Result<WorkerStatDelta, SnapshotError> {
    let delta = WorkerStatDelta {
        source: usize_field(value, "source")? as u64,
        version: usize_field(value, "version")? as u64,
        n_funcs: usize_field(value, "n_funcs")?,
        i_sum: f64_array(value, "i_sum")?,
        worker_bits: u32_array(value, "worker_bits")?,
        dw_sum: f64_array(value, "dw_sum")?,
    };
    if !delta.is_well_formed() {
        return Err(SnapshotError::Schema(
            "worker-stat delta has inconsistent shapes".into(),
        ));
    }
    Ok(delta)
}

/// The deduplicated payload table of a v3 document: each referenced
/// [`WorkerStatDelta`] exactly once, keyed by its unique `(source,
/// version)` stamp, in key order for deterministic rendering.
type DeltaTable<'a> = BTreeMap<(u64, u64), &'a WorkerStatDelta>;

fn table_insert<'a>(table: &mut DeltaTable<'a>, delta: &'a WorkerStatDelta) {
    let prior = table.insert((delta.source, delta.version), delta);
    debug_assert!(
        prior.is_none_or(|p| p == delta),
        "two distinct payloads share the stamp ({}, {}) — publish counters must be unique",
        delta.source,
        delta.version
    );
}

/// Collects every delta payload referenced by `events` and `exchange`.
fn build_delta_table<'a>(
    shard_events: impl Iterator<Item = &'a [GossipEvent]>,
    exchange: &'a [Option<WorkerStatDelta>],
) -> DeltaTable<'a> {
    let mut table = DeltaTable::new();
    for events in shard_events {
        for event in events {
            if let GossipEventKind::Fold(delta) = &event.kind {
                table_insert(&mut table, delta);
            }
        }
    }
    for slot in exchange.iter().flatten() {
        table_insert(&mut table, slot);
    }
    table
}

#[allow(clippy::cast_precision_loss)]
fn table_to_json(table: &DeltaTable<'_>) -> Json {
    Json::Arr(table.values().map(|d| delta_to_json(d)).collect())
}

fn table_from_json(doc: &Json) -> Result<BTreeMap<(u64, u64), WorkerStatDelta>, SnapshotError> {
    let mut table = BTreeMap::new();
    // Absent table = no gossip data anywhere in the document.
    let Some(entries) = doc.get("deltas") else {
        return Ok(table);
    };
    let entries = entries
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema("'deltas' is not an array".into()))?;
    for entry in entries {
        let delta = delta_from_json(entry)?;
        let key = (delta.source, delta.version);
        if table.insert(key, delta).is_some() {
            // A valid writer emits each stamp exactly once; a duplicate
            // means the two entries could disagree and references would
            // silently resolve to whichever won.
            return Err(SnapshotError::Schema(format!(
                "delta table holds (source {}, version {}) more than once",
                key.0, key.1
            )));
        }
    }
    Ok(table)
}

/// Rejects documents in which two *different* payloads share a `(source,
/// version)` stamp — the uniqueness invariant the gossip algebra and the
/// v3 delta table rest on. Identical duplicates are expected (the same
/// published delta folded by several shards appears once per fold in
/// legacy documents) and pass. Called on the legacy parse path; v3
/// documents are covered by the table itself.
fn check_stamp_uniqueness<'a>(
    payloads: impl Iterator<Item = &'a WorkerStatDelta>,
) -> Result<(), SnapshotError> {
    let mut seen: DeltaTable<'a> = BTreeMap::new();
    for delta in payloads {
        if let Some(prior) = seen.insert((delta.source, delta.version), delta) {
            if prior != delta {
                return Err(SnapshotError::Schema(format!(
                    "two different payloads share the stamp (source {}, version {}) — \
                     publish stamps must identify payloads uniquely",
                    delta.source, delta.version
                )));
            }
        }
    }
    Ok(())
}

fn table_lookup(
    table: &BTreeMap<(u64, u64), WorkerStatDelta>,
    value: &Json,
) -> Result<WorkerStatDelta, SnapshotError> {
    let source = usize_field(value, "source")? as u64;
    let version = usize_field(value, "version")? as u64;
    table.get(&(source, version)).cloned().ok_or_else(|| {
        SnapshotError::Schema(format!(
            "delta table has no entry for (source {source}, version {version})"
        ))
    })
}

fn delta_ref_json(delta: &WorkerStatDelta) -> Json {
    Json::Obj(vec![
        ("source".into(), Json::uint(delta.source)),
        ("version".into(), Json::uint(delta.version)),
    ])
}

#[allow(clippy::cast_precision_loss)]
fn params_to_json(params: &ModelParams) -> Json {
    Json::Obj(vec![
        ("n_funcs".into(), Json::Num(params.n_funcs() as f64)),
        ("z".into(), Json::num_array(params.z().iter().copied())),
        (
            "iw".into(),
            Json::num_array(params.inherent_all().iter().copied()),
        ),
        (
            "dw".into(),
            Json::num_array(params.dw_flat().iter().copied()),
        ),
        (
            "dt".into(),
            Json::num_array(params.dt_flat().iter().copied()),
        ),
    ])
}

fn params_from_json(value: &Json) -> Result<ModelParams, SnapshotError> {
    ModelParams::from_parts(
        usize_field(value, "n_funcs")?,
        f64_array(value, "z")?,
        f64_array(value, "iw")?,
        f64_array(value, "dw")?,
        f64_array(value, "dt")?,
    )
    .ok_or_else(|| {
        SnapshotError::Schema("checkpoint parameters are malformed (shape or range)".into())
    })
}

/// Serializes a frozen [`SufficientStats`] baseline (pruned shards only):
/// the raw accumulator arrays, restored bit-for-bit through
/// [`SufficientStats::from_parts`].
#[allow(clippy::cast_precision_loss)]
fn stats_to_json(stats: &SufficientStats) -> Json {
    Json::Obj(vec![
        ("n_funcs".into(), Json::Num(stats.n_funcs() as f64)),
        (
            "z_sum".into(),
            Json::num_array(stats.z_sum().iter().copied()),
        ),
        (
            "task_answers".into(),
            Json::num_array(stats.task_answers().iter().map(|&n| f64::from(n))),
        ),
        (
            "i_sum".into(),
            Json::num_array(stats.i_sum().iter().copied()),
        ),
        (
            "worker_bits".into(),
            Json::num_array(stats.worker_bits().iter().map(|&n| f64::from(n))),
        ),
        (
            "dw_sum".into(),
            Json::num_array(stats.dw_sum().iter().copied()),
        ),
        (
            "dt_sum".into(),
            Json::num_array(stats.dt_sum().iter().copied()),
        ),
    ])
}

fn stats_from_json(value: &Json) -> Result<SufficientStats, SnapshotError> {
    SufficientStats::from_parts(
        usize_field(value, "n_funcs")?,
        f64_array(value, "z_sum")?,
        u32_array(value, "task_answers")?,
        f64_array(value, "i_sum")?,
        u32_array(value, "worker_bits")?,
        f64_array(value, "dw_sum")?,
        f64_array(value, "dt_sum")?,
    )
    .ok_or_else(|| {
        SnapshotError::Schema("frozen statistics baseline is malformed (shape mismatch)".into())
    })
}

fn checkpoint_to_json(cp: &ModelCheckpoint) -> Json {
    Json::Obj(vec![
        ("position".into(), Json::uint(cp.position as u64)),
        (
            "events_applied".into(),
            Json::uint(cp.events_applied as u64),
        ),
        ("params".into(), params_to_json(&cp.params)),
    ])
}

fn checkpoint_from_json(value: &Json) -> Result<ModelCheckpoint, SnapshotError> {
    Ok(ModelCheckpoint {
        position: usize_field(value, "position")?,
        events_applied: usize_field(value, "events_applied")?,
        params: params_from_json(field(value, "params")?)?,
    })
}

#[allow(clippy::cast_precision_loss)]
fn answers_to_json(answers: &[SnapshotAnswer]) -> Json {
    Json::Arr(
        answers
            .iter()
            .map(|a| {
                Json::Obj(vec![
                    ("w".into(), Json::Num(f64::from(a.worker.0))),
                    ("t".into(), Json::Num(f64::from(a.task.0))),
                    ("bits".into(), Json::Str(bits_to_string(a.bits))),
                ])
            })
            .collect(),
    )
}

fn answers_from_json(value: &Json) -> Result<Vec<SnapshotAnswer>, SnapshotError> {
    let answers_json = value
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema("'answers' is not an array".into()))?;
    let mut answers = Vec::with_capacity(answers_json.len());
    for a in answers_json {
        answers.push(SnapshotAnswer {
            worker: WorkerId(
                u32::try_from(usize_field(a, "w")?)
                    .map_err(|_| SnapshotError::Schema("worker id out of range".into()))?,
            ),
            task: TaskId(
                u32::try_from(usize_field(a, "t")?)
                    .map_err(|_| SnapshotError::Schema("task id out of range".into()))?,
            ),
            bits: bits_from_string(str_field(a, "bits")?)?,
        });
    }
    Ok(answers)
}

/// Marks a pruned fold: `"ref":true` plus the stamp, and — unlike a plain
/// `(source, version)` table reference — no payload anywhere in the
/// document. The marker keeps the dangling-reference corruption check
/// meaningful for unpruned folds.
fn fold_ref_entry(entry: &mut Vec<(String, Json)>, source: u64, version: u64) {
    entry.push(("ref".into(), Json::Bool(true)));
    entry.push(("source".into(), Json::uint(source)));
    entry.push(("version".into(), Json::uint(version)));
}

/// Renders a mid-campaign worker registration (v4): the display name and
/// the single recorded location.
fn register_entry(entry: &mut Vec<(String, Json)>, name: &str, x: f64, y: f64) {
    entry.push((
        "register".into(),
        Json::Obj(vec![
            ("name".into(), Json::Str(name.into())),
            ("x".into(), Json::Num(x)),
            ("y".into(), Json::Num(y)),
        ]),
    ));
}

/// Renders events with payloads inline (v1/v2 layout).
fn events_to_json_inline(events: &[GossipEvent]) -> Json {
    Json::Arr(
        events
            .iter()
            .map(|e| {
                let mut entry = vec![("position".into(), Json::uint(e.position as u64))];
                match &e.kind {
                    GossipEventKind::Fold(delta) => {
                        entry.push(("delta".into(), delta_to_json(delta)));
                    }
                    GossipEventKind::FoldRef { source, version } => {
                        fold_ref_entry(&mut entry, *source, *version);
                    }
                    GossipEventKind::FullSweep => {
                        entry.push(("sweep".into(), Json::Bool(true)));
                    }
                    GossipEventKind::Register { name, x, y } => {
                        register_entry(&mut entry, name, *x, *y);
                    }
                }
                Json::Obj(entry)
            })
            .collect(),
    )
}

/// Renders events with fold payloads as `(source, version)` references
/// into the top-level delta table (v3 layout).
fn events_to_json_refs(events: &[GossipEvent]) -> Json {
    Json::Arr(
        events
            .iter()
            .map(|e| {
                let mut entry = vec![("position".into(), Json::uint(e.position as u64))];
                match &e.kind {
                    GossipEventKind::Fold(delta) => {
                        entry.push(("source".into(), Json::uint(delta.source)));
                        entry.push(("version".into(), Json::uint(delta.version)));
                    }
                    GossipEventKind::FoldRef { source, version } => {
                        fold_ref_entry(&mut entry, *source, *version);
                    }
                    GossipEventKind::FullSweep => {
                        entry.push(("sweep".into(), Json::Bool(true)));
                    }
                    GossipEventKind::Register { name, x, y } => {
                        register_entry(&mut entry, name, *x, *y);
                    }
                }
                Json::Obj(entry)
            })
            .collect(),
    )
}

/// Parses the registration form shared by both event layouts, when marked.
fn register_from_json(e: &Json) -> Result<Option<GossipEventKind>, SnapshotError> {
    let Some(reg) = e.get("register") else {
        return Ok(None);
    };
    if e.get("delta").is_some() || e.get("sweep").is_some() || e.get("ref").is_some() {
        return Err(SnapshotError::Schema(
            "a worker registration event cannot also carry a fold or sweep".into(),
        ));
    }
    let x = f64_field(reg, "x")?;
    let y = f64_field(reg, "y")?;
    if !x.is_finite() || !y.is_finite() {
        return Err(SnapshotError::Schema(
            "worker registration location is not finite".into(),
        ));
    }
    Ok(Some(GossipEventKind::Register {
        name: str_field(reg, "name")?.to_owned(),
        x,
        y,
    }))
}

/// Parses the pruned-fold form shared by both event layouts, when marked.
fn fold_ref_from_json(e: &Json) -> Result<Option<GossipEventKind>, SnapshotError> {
    match e.get("ref") {
        None => Ok(None),
        Some(Json::Bool(true)) => {
            if e.get("delta").is_some() || e.get("sweep").is_some() {
                return Err(SnapshotError::Schema(
                    "a pruned fold reference cannot also carry a payload or 'sweep'".into(),
                ));
            }
            Ok(Some(GossipEventKind::FoldRef {
                source: usize_field(e, "source")? as u64,
                version: usize_field(e, "version")? as u64,
            }))
        }
        Some(_) => Err(SnapshotError::Schema(
            "'ref' must be the boolean true when present".into(),
        )),
    }
}

fn events_from_json_inline(value: &Json) -> Result<Vec<GossipEvent>, SnapshotError> {
    let events_json = value
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema("'gossip_events' is not an array".into()))?;
    let mut events = Vec::with_capacity(events_json.len());
    for e in events_json {
        let kind = if let Some(kind) = register_from_json(e)? {
            kind
        } else if let Some(kind) = fold_ref_from_json(e)? {
            kind
        } else {
            match (e.get("delta"), e.get("sweep")) {
                (Some(delta), None) => GossipEventKind::Fold(delta_from_json(delta)?),
                (None, Some(Json::Bool(true))) => GossipEventKind::FullSweep,
                _ => {
                    return Err(SnapshotError::Schema(
                        "gossip event must carry exactly one of 'delta' or 'sweep':true".into(),
                    ))
                }
            }
        };
        events.push(GossipEvent {
            position: usize_field(e, "position")?,
            kind,
        });
    }
    Ok(events)
}

fn events_from_json_refs(
    value: &Json,
    table: &BTreeMap<(u64, u64), WorkerStatDelta>,
) -> Result<Vec<GossipEvent>, SnapshotError> {
    let events_json = value
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema("'gossip_events' is not an array".into()))?;
    let mut events = Vec::with_capacity(events_json.len());
    for e in events_json {
        let kind = if let Some(kind) = register_from_json(e)? {
            kind
        } else if let Some(kind) = fold_ref_from_json(e)? {
            kind
        } else {
            let has_ref = e.get("source").is_some() || e.get("version").is_some();
            match (e.get("sweep"), has_ref) {
                (Some(Json::Bool(true)), false) => GossipEventKind::FullSweep,
                (None, _) => GossipEventKind::Fold(table_lookup(table, e)?),
                _ => {
                    return Err(SnapshotError::Schema(
                        "gossip event must carry exactly one of a (source, version) \
                         reference or 'sweep':true"
                            .into(),
                    ))
                }
            }
        };
        events.push(GossipEvent {
            position: usize_field(e, "position")?,
            kind,
        });
    }
    Ok(events)
}

fn exchange_to_json_inline(exchange: &[Option<WorkerStatDelta>]) -> Json {
    Json::Arr(
        exchange
            .iter()
            .map(|slot| slot.as_ref().map_or(Json::Null, delta_to_json))
            .collect(),
    )
}

fn exchange_to_json_refs(exchange: &[Option<WorkerStatDelta>]) -> Json {
    Json::Arr(
        exchange
            .iter()
            .map(|slot| slot.as_ref().map_or(Json::Null, delta_ref_json))
            .collect(),
    )
}

fn exchange_from_json_inline(value: &Json) -> Result<Vec<Option<WorkerStatDelta>>, SnapshotError> {
    let slots = value
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema("'exchange' is not an array".into()))?;
    let mut exchange = Vec::with_capacity(slots.len());
    for slot in slots {
        exchange.push(match slot {
            Json::Null => None,
            v => Some(delta_from_json(v)?),
        });
    }
    Ok(exchange)
}

fn exchange_from_json_refs(
    value: &Json,
    table: &BTreeMap<(u64, u64), WorkerStatDelta>,
) -> Result<Vec<Option<WorkerStatDelta>>, SnapshotError> {
    let slots = value
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema("'exchange' is not an array".into()))?;
    let mut exchange = Vec::with_capacity(slots.len());
    for slot in slots {
        exchange.push(match slot {
            Json::Null => None,
            v => Some(table_lookup(table, v)?),
        });
    }
    Ok(exchange)
}

fn em_to_json(em: &EmConfig) -> Json {
    Json::Obj(vec![
        ("alpha".into(), Json::Num(em.alpha)),
        ("tolerance".into(), Json::Num(em.tolerance)),
        ("max_iterations".into(), Json::Num(em.max_iterations as f64)),
        (
            "init".into(),
            Json::Str(
                match em.init {
                    InitStrategy::Uniform => "uniform",
                    InitStrategy::VoteShare => "vote_share",
                }
                .into(),
            ),
        ),
        (
            "lambdas".into(),
            Json::Arr(
                em.fset
                    .functions()
                    .iter()
                    .map(|f| Json::Num(f.lambda))
                    .collect(),
            ),
        ),
    ])
}

fn em_from_json(value: &Json) -> Result<EmConfig, SnapshotError> {
    let init = match str_field(value, "init")? {
        "uniform" => InitStrategy::Uniform,
        "vote_share" => InitStrategy::VoteShare,
        other => {
            return Err(SnapshotError::Schema(format!(
                "unknown init strategy '{other}'"
            )))
        }
    };
    let lambdas: Vec<f64> = field(value, "lambdas")?
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema("'lambdas' is not an array".into()))?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|l| l.is_finite() && *l >= 0.0)
                .ok_or_else(|| SnapshotError::Schema("invalid lambda".into()))
        })
        .collect::<Result<_, _>>()?;
    if lambdas.is_empty() {
        return Err(SnapshotError::Schema("'lambdas' must be non-empty".into()));
    }
    Ok(EmConfig {
        alpha: f64_field(value, "alpha")?,
        tolerance: f64_field(value, "tolerance")?,
        max_iterations: usize_field(value, "max_iterations")?,
        init,
        fset: DistanceFunctionSet::new(&lambdas),
    })
}

fn config_to_json(config: &ServeConfig) -> Json {
    let mut fields = vec![
        ("n_shards".into(), Json::Num(config.n_shards as f64)),
        (
            "ingest_threads".into(),
            Json::Num(config.ingest_threads as f64),
        ),
        (
            "queue_capacity".into(),
            Json::Num(config.queue_capacity as f64),
        ),
        ("drain_batch".into(), Json::Num(config.drain_batch as f64)),
        ("budget".into(), Json::Num(config.budget as f64)),
        ("h".into(), Json::Num(config.h as f64)),
        ("em".into(), em_to_json(&config.em)),
        (
            "full_em_every".into(),
            config
                .policy
                .full_em_every
                .map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
        (
            "full_sweep_every".into(),
            Json::Num(config.policy.full_sweep_every as f64),
        ),
        (
            "dirty_coverage_fallback".into(),
            Json::Num(config.policy.dirty_coverage_fallback as f64),
        ),
        (
            "em_threads".into(),
            match config.policy.parallelism {
                EmParallelism::Auto => Json::Str("auto".into()),
                EmParallelism::Fixed(n) => Json::Num(n as f64),
            },
        ),
        (
            "gossip_every".into(),
            config
                .gossip_every
                .map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
        (
            "obs_sample_ms".into(),
            Json::Num(config.obs_sample_ms as f64),
        ),
    ];
    // Emitted only when set (v4), so documents from campaigns without the
    // periodic prune timer stay byte-identical to what v3 writers emitted.
    if let Some(period) = config.prune_every {
        fields.push(("prune_every".into(), Json::uint(period)));
    }
    // Emitted only when pruning is on, so pre-retention documents (and
    // every keep-all campaign) stay byte-identical to what older builds
    // wrote.
    if let RetentionPolicy::PruneCheckpointed { spill_dir } = &config.retention {
        fields.push((
            "retention".into(),
            Json::Obj(vec![
                ("mode".into(), Json::Str("prune_checkpointed".into())),
                (
                    "spill_dir".into(),
                    spill_dir
                        .as_ref()
                        .map_or(Json::Null, |d| Json::Str(d.clone())),
                ),
            ]),
        ));
    }
    Json::Obj(fields)
}

fn retention_from_json(value: &Json) -> Result<RetentionPolicy, SnapshotError> {
    match value.get("retention") {
        // Absent in every pre-retention document: those campaigns kept all.
        None => Ok(RetentionPolicy::KeepAll),
        Some(r) => match str_field(r, "mode")? {
            "prune_checkpointed" => Ok(RetentionPolicy::PruneCheckpointed {
                spill_dir: match field(r, "spill_dir")? {
                    Json::Null => None,
                    Json::Str(d) => Some(d.clone()),
                    _ => {
                        return Err(SnapshotError::Schema(
                            "'spill_dir' is not a string or null".into(),
                        ))
                    }
                },
            }),
            other => Err(SnapshotError::Schema(format!(
                "unknown retention mode '{other}'"
            ))),
        },
    }
}

fn config_from_json(value: &Json) -> Result<ServeConfig, SnapshotError> {
    let full_em_every = match field(value, "full_em_every")? {
        Json::Null => None,
        v => Some(v.as_usize().ok_or_else(|| {
            SnapshotError::Schema("'full_em_every' is not an integer or null".into())
        })?),
    };
    // Absent in pre-dirty-set snapshots, which were recorded under
    // always-full-sweep behaviour — restore them exactly as such.
    let full_sweep_every = match value.get("full_sweep_every") {
        None => 1,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| SnapshotError::Schema("'full_sweep_every' is not an integer".into()))?,
    };
    // Absent before the threshold was promoted to a policy field; 60 is
    // the hard-coded value those snapshots ran under.
    let dirty_coverage_fallback = match value.get("dirty_coverage_fallback") {
        None => 60,
        Some(v) => v.as_usize().ok_or_else(|| {
            SnapshotError::Schema("'dirty_coverage_fallback' is not an integer".into())
        })?,
    };
    // Absent before EM got its parallelism knob; those snapshots ran the
    // sequential sweep, so restore them pinned to one thread rather than
    // the auto default (parallel EM is bit-identical, but the pin keeps
    // the restored config an exact record of what ran).
    let parallelism = match value.get("em_threads") {
        None => EmParallelism::Fixed(1),
        Some(Json::Str(s)) if s == "auto" => EmParallelism::Auto,
        Some(v) => EmParallelism::Fixed(v.as_usize().ok_or_else(|| {
            SnapshotError::Schema("'em_threads' is not an integer or \"auto\"".into())
        })?),
    };
    // Absent in v1 (pre-gossip) documents: restore with gossip disabled,
    // exactly as the campaign was recorded.
    let gossip_every = match value.get("gossip_every") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_usize().ok_or_else(|| {
            SnapshotError::Schema("'gossip_every' is not an integer or null".into())
        })?),
    };
    // Absent in pre-observability snapshots; the sampler is pure
    // diagnostics, so restoring with the default period changes nothing
    // about the recorded campaign.
    let obs_sample_ms = match value.get("obs_sample_ms") {
        None => ServeConfig::default().obs_sample_ms,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| SnapshotError::Schema("'obs_sample_ms' is not an integer".into()))?
            as u64,
    };
    // Absent before the periodic self-scheduled prune existed (and on
    // every campaign that never enabled it).
    let prune_every = match value.get("prune_every") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or_else(|| SnapshotError::Schema("'prune_every' is not an integer".into()))?
                as u64,
        ),
    };
    Ok(ServeConfig {
        n_shards: usize_field(value, "n_shards")?,
        ingest_threads: usize_field(value, "ingest_threads")?,
        queue_capacity: usize_field(value, "queue_capacity")?,
        drain_batch: usize_field(value, "drain_batch")?,
        budget: usize_field(value, "budget")?,
        h: usize_field(value, "h")?,
        em: em_from_json(field(value, "em")?)?,
        policy: UpdatePolicy {
            full_em_every,
            full_sweep_every,
            dirty_coverage_fallback,
            parallelism,
        },
        gossip_every,
        obs_sample_ms,
        retention: retention_from_json(value)?,
        prune_every,
    })
}

impl ServiceSnapshot {
    /// Renders the snapshot as a deterministic JSON document in its own
    /// version's layout: the v3 layout (deduplicated delta table,
    /// checkpoint blocks) for version ≥ 3 documents, the legacy inline
    /// layout for documents parsed from v1/v2 text — so a parsed legacy
    /// document round-trips through its own format.
    #[must_use]
    pub fn to_json(&self) -> String {
        if self.version >= 3 {
            self.render_v3(self.version)
        } else {
            self.render_legacy(self.version)
        }
    }

    /// Renders the snapshot in an explicit format version's layout:
    /// `2` for the legacy inline layout (checkpoints are dropped — a v2
    /// reader replays the full stream instead), `3` for the
    /// checkpoint/delta-table layout without elasticity, `4` for the
    /// current layout. Kept for downgrade compatibility, the upgrade
    /// round-trip tests and the format benches.
    ///
    /// # Errors
    /// [`SnapshotError::Schema`] for any other version (v1 documents
    /// cannot represent gossip state; write v2 instead), for a pruned
    /// snapshot as v2, or for an elastic snapshot (moved map,
    /// materialized seqs, mid-campaign registrations) as v2/v3 — older
    /// readers cannot reconstruct that state.
    pub fn to_json_versioned(&self, version: u64) -> Result<String, SnapshotError> {
        match version {
            2 | 3 if self.is_elastic() => Err(SnapshotError::Schema(format!(
                "an elastic snapshot (split/merged map, mid-campaign registrations) \
                 cannot be rendered as v{version} — the shard partition and sequence \
                 numbers are not representable before v4"
            ))),
            2 if self.is_pruned() => Err(SnapshotError::Schema(
                "a pruned snapshot cannot be rendered as v2 — the truncated answer \
                 prefix is not representable in the legacy layout"
                    .into(),
            )),
            2 => Ok(self.render_legacy(2)),
            3 | 4 => Ok(self.render_v3(version)),
            other => Err(SnapshotError::Schema(format!(
                "cannot render snapshot as version {other} (supported: 2, 3, 4)"
            ))),
        }
    }

    #[allow(clippy::cast_precision_loss)]
    fn shard_common_json(s: &ShardSnapshot, events: Json) -> Vec<(String, Json)> {
        vec![
            ("shard".into(), Json::Num(s.shard as f64)),
            ("budget".into(), Json::Num(s.budget as f64)),
            ("budget_used".into(), Json::Num(s.budget_used as f64)),
            ("answers".into(), answers_to_json(&s.answers)),
            ("gossip_events".into(), events),
            ("publishes".into(), Json::uint(s.publishes)),
        ]
    }

    /// True when any shard has a pruned prefix (or a frozen baseline) —
    /// such documents exist only in the v3+ layout.
    fn is_pruned(&self) -> bool {
        self.shards
            .iter()
            .any(|s| !s.pruned_pairs.is_empty() || s.frozen.is_some())
    }

    /// True when the document carries elastic state (a moved shard map,
    /// materialized sequence numbers, or mid-campaign registrations) —
    /// representable only from v4 on.
    fn is_elastic(&self) -> bool {
        self.map.is_some()
            || self.shards.iter().any(|s| {
                s.seqs.is_some()
                    || s.gossip_events
                        .iter()
                        .any(|e| matches!(e.kind, GossipEventKind::Register { .. }))
            })
    }

    #[allow(clippy::cast_precision_loss)]
    fn render_legacy(&self, version: u64) -> String {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                Json::Obj(Self::shard_common_json(
                    s,
                    events_to_json_inline(&s.gossip_events),
                ))
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::Num(version as f64)),
            ("n_tasks".into(), Json::Num(self.n_tasks as f64)),
            ("n_workers".into(), Json::Num(self.n_workers as f64)),
            ("config".into(), config_to_json(&self.config)),
            ("shards".into(), Json::Arr(shards)),
            ("exchange".into(), exchange_to_json_inline(&self.exchange)),
        ])
        .render()
    }

    #[allow(clippy::cast_precision_loss)]
    fn render_v3(&self, version: u64) -> String {
        let table = build_delta_table(
            self.shards.iter().map(|s| s.gossip_events.as_slice()),
            &self.exchange,
        );
        let shards = self
            .shards
            .iter()
            .map(|s| {
                let mut entry = Self::shard_common_json(s, events_to_json_refs(&s.gossip_events));
                if let Some(cp) = &s.checkpoint {
                    entry.push(("checkpoint".into(), checkpoint_to_json(cp)));
                }
                // Pruned-prefix fields: two parallel u32 arrays (packed
                // u64 pairs could exceed 2^53) plus the frozen baseline.
                // Absent on unpruned shards, keeping those documents
                // byte-identical to pre-retention writers.
                if !s.pruned_pairs.is_empty() {
                    entry.push((
                        "pruned_workers".into(),
                        Json::Arr(
                            s.pruned_pairs
                                .iter()
                                .map(|(w, _)| Json::uint(u64::from(w.0)))
                                .collect(),
                        ),
                    ));
                    entry.push((
                        "pruned_tasks".into(),
                        Json::Arr(
                            s.pruned_pairs
                                .iter()
                                .map(|(_, t)| Json::uint(u64::from(t.0)))
                                .collect(),
                        ),
                    ));
                }
                if let Some(frozen) = &s.frozen {
                    entry.push(("frozen".into(), stats_to_json(frozen)));
                }
                // Materialized sequence numbers (v4, post-handoff only).
                if let Some(seqs) = &s.seqs {
                    entry.push((
                        "seqs".into(),
                        Json::Arr(seqs.iter().map(|&q| Json::uint(q)).collect()),
                    ));
                }
                Json::Obj(entry)
            })
            .collect();
        let mut doc = vec![
            ("version".into(), Json::Num(version as f64)),
            ("kind".into(), Json::Str("base".into())),
            ("n_tasks".into(), Json::Num(self.n_tasks as f64)),
            ("n_workers".into(), Json::Num(self.n_workers as f64)),
            ("config".into(), config_to_json(&self.config)),
        ];
        // The moved shard map (v4): absent while the startup partition is
        // in force, so non-elastic documents match the v3 shape.
        if let Some(map) = &self.map {
            doc.push((
                "map".into(),
                Json::Obj(vec![
                    ("version".into(), Json::uint(map.version)),
                    (
                        "cells".into(),
                        Json::Arr(
                            map.cells
                                .iter()
                                .map(|&c| Json::uint(u64::from(c)))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        doc.extend([
            ("deltas".into(), table_to_json(&table)),
            ("shards".into(), Json::Arr(shards)),
            ("exchange".into(), exchange_to_json_refs(&self.exchange)),
        ]);
        Json::Obj(doc).render()
    }

    /// Parses a snapshot document of any supported version (1–3).
    ///
    /// # Errors
    /// [`SnapshotError::Json`] on malformed JSON, [`SnapshotError::Schema`]
    /// on a structurally invalid or version-incompatible document — this
    /// includes v3 *delta* documents, which must go through
    /// [`ServiceSnapshotDelta::from_json`] and
    /// [`ServiceSnapshot::compact`] instead.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let doc = Json::parse(text)?;
        let version = usize_field(&doc, "version")? as u64;
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(SnapshotError::Schema(format!(
                "unsupported snapshot version {version} (expected 1..={SNAPSHOT_VERSION})"
            )));
        }
        let v3 = version >= 3;
        if v3 {
            match doc.get("kind").and_then(Json::as_str) {
                None | Some("base") => {}
                Some("delta") => {
                    return Err(SnapshotError::Schema(
                        "this is a delta document — parse it with \
                         ServiceSnapshotDelta::from_json and fold it into a base \
                         with ServiceSnapshot::compact"
                            .into(),
                    ))
                }
                Some(other) => {
                    return Err(SnapshotError::Schema(format!(
                        "unknown document kind '{other}'"
                    )))
                }
            }
        }
        let table = if v3 {
            table_from_json(&doc)?
        } else {
            BTreeMap::new()
        };
        let shards_json = field(&doc, "shards")?
            .as_arr()
            .ok_or_else(|| SnapshotError::Schema("'shards' is not an array".into()))?;
        let mut shards = Vec::with_capacity(shards_json.len());
        for shard_json in shards_json {
            let answers = answers_from_json(field(shard_json, "answers")?)?;
            // v1 documents predate gossip; an absent array means none.
            let gossip_events = match shard_json.get("gossip_events") {
                None => Vec::new(),
                Some(events) if v3 => events_from_json_refs(events, &table)?,
                Some(events) => events_from_json_inline(events)?,
            };
            let publishes = match shard_json.get("publishes") {
                None => 0,
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| SnapshotError::Schema("'publishes' is not an integer".into()))?
                    as u64,
            };
            let checkpoint = match shard_json.get("checkpoint") {
                Some(cp) if v3 => Some(checkpoint_from_json(cp)?),
                _ => None,
            };
            let pruned_pairs = match shard_json.get("pruned_workers") {
                Some(_) if v3 => {
                    let workers = u32_array(shard_json, "pruned_workers")?;
                    let tasks = u32_array(shard_json, "pruned_tasks")?;
                    if workers.len() != tasks.len() {
                        return Err(SnapshotError::Schema(format!(
                            "'pruned_workers' has {} entries but 'pruned_tasks' has {}",
                            workers.len(),
                            tasks.len()
                        )));
                    }
                    workers
                        .into_iter()
                        .zip(tasks)
                        .map(|(w, t)| (WorkerId(w), TaskId(t)))
                        .collect()
                }
                _ => Vec::new(),
            };
            let frozen = match shard_json.get("frozen") {
                Some(f) if v3 => Some(stats_from_json(f)?),
                _ => None,
            };
            if !pruned_pairs.is_empty() && frozen.is_none() {
                return Err(SnapshotError::Schema(
                    "a pruned shard must carry its frozen statistics baseline".into(),
                ));
            }
            let seqs = match shard_json.get("seqs") {
                Some(s) if version >= 4 => {
                    let arr = s
                        .as_arr()
                        .ok_or_else(|| SnapshotError::Schema("'seqs' is not an array".into()))?;
                    let seqs: Vec<u64> = arr
                        .iter()
                        .map(|v| {
                            v.as_usize().map(|q| q as u64).ok_or_else(|| {
                                SnapshotError::Schema("'seqs' holds an invalid number".into())
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    if seqs.len() != answers.len() {
                        return Err(SnapshotError::Schema(format!(
                            "'seqs' has {} entries but the shard holds {} answers",
                            seqs.len(),
                            answers.len()
                        )));
                    }
                    Some(seqs)
                }
                _ => None,
            };
            shards.push(ShardSnapshot {
                shard: usize_field(shard_json, "shard")?,
                budget: usize_field(shard_json, "budget")?,
                budget_used: usize_field(shard_json, "budget_used")?,
                answers,
                gossip_events,
                publishes,
                checkpoint,
                pruned_pairs,
                frozen,
                seqs,
            });
        }
        let exchange = match doc.get("exchange") {
            None => Vec::new(),
            Some(slots) if v3 => exchange_from_json_refs(slots, &table)?,
            Some(slots) => exchange_from_json_inline(slots)?,
        };
        if !v3 {
            // Legacy documents carry payloads inline; make sure no two of
            // them disagree under one stamp before anything (a re-encode
            // into the v3 table, a restore) relies on stamp uniqueness.
            check_stamp_uniqueness(
                shards
                    .iter()
                    .flat_map(|s| s.gossip_events.iter())
                    .filter_map(|e| match &e.kind {
                        GossipEventKind::Fold(delta) => Some(delta),
                        // Payload-free kinds carry nothing to conflict.
                        GossipEventKind::FoldRef { .. }
                        | GossipEventKind::FullSweep
                        | GossipEventKind::Register { .. } => None,
                    })
                    .chain(exchange.iter().flatten()),
            )?;
        }
        let map = match doc.get("map") {
            Some(m) if version >= 4 => {
                let map_version = usize_field(m, "version")? as u64;
                if map_version < 2 {
                    return Err(SnapshotError::Schema(format!(
                        "recorded map version {map_version} — the startup partition \
                         (version 1) is never recorded explicitly"
                    )));
                }
                Some(SnapshotShardMap {
                    version: map_version,
                    cells: u32_array(m, "cells")?,
                })
            }
            _ => None,
        };
        Ok(Self {
            version,
            n_tasks: usize_field(&doc, "n_tasks")?,
            n_workers: usize_field(&doc, "n_workers")?,
            config: config_from_json(field(&doc, "config")?)?,
            shards,
            exchange,
            map,
        })
    }

    /// The per-shard cursors marking where this snapshot leaves off — pass
    /// them to [`LabellingService::snapshot_delta`] to capture only what
    /// the campaign records next. Cursor positions count the whole
    /// recorded stream, so on a pruned shard they include the truncated
    /// prefix.
    #[must_use]
    pub fn cursors(&self) -> Vec<SnapshotCursor> {
        self.shards
            .iter()
            .map(|s| SnapshotCursor {
                answers: s.pruned_pairs.len() + s.answers.len(),
                events: s.gossip_events.len(),
            })
            .collect()
    }

    /// Folds a chain of incremental snapshots into a new v3 base, in
    /// order. The result is byte-identical to the full snapshot the
    /// service would have produced at the last delta's capture point
    /// (`compact() ≡ snapshot()` — pinned by the snapshot_v3 test suite),
    /// so a delta chain can be compacted offline and restored like any
    /// base document.
    ///
    /// # Errors
    /// [`SnapshotError::Mismatch`] when a delta does not chain onto the
    /// accumulated base (campaign shapes differ, shard ids disagree, or a
    /// delta's cursor is not exactly where the previous document left
    /// off).
    pub fn compact(&self, chain: &[ServiceSnapshotDelta]) -> Result<Self, SnapshotError> {
        self.compact_iter(chain.iter().map(|d| Ok(d.clone())))
    }

    /// [`ServiceSnapshot::compact`] over a *stream* of deltas: each
    /// document is consumed (and dropped) before the next is pulled, so a
    /// long chain can be folded with peak memory of the accumulated base
    /// plus one delta — the caller parses each document lazily (e.g. one
    /// file at a time) and hands errors through. The result is
    /// byte-identical to compacting the same chain from a slice.
    ///
    /// # Errors
    /// As for [`ServiceSnapshot::compact`], plus any error the iterator
    /// yields (a document that failed to read or parse).
    pub fn compact_iter<I>(&self, chain: I) -> Result<Self, SnapshotError>
    where
        I: IntoIterator<Item = Result<ServiceSnapshotDelta, SnapshotError>>,
    {
        let mut base = self.clone();
        base.version = SNAPSHOT_VERSION;
        for (step, delta) in chain.into_iter().enumerate() {
            Self::apply_delta(&mut base, &delta?, step)?;
        }
        Ok(base)
    }

    /// Folds one delta onto the accumulated base (the per-step body of
    /// [`ServiceSnapshot::compact`] / [`ServiceSnapshot::compact_iter`]).
    fn apply_delta(
        base: &mut Self,
        delta: &ServiceSnapshotDelta,
        step: usize,
    ) -> Result<(), SnapshotError> {
        if base.is_elastic() {
            return Err(SnapshotError::Mismatch(format!(
                "delta {step}: the base snapshot carries elastic state (moved map, \
                 sequence numbers or registrations) — deltas are not defined over it; \
                 take a new full snapshot instead"
            )));
        }
        if delta.n_tasks != base.n_tasks || delta.n_workers != base.n_workers {
            return Err(SnapshotError::Mismatch(format!(
                "delta {step} covers {}×{} tasks×workers, base covers {}×{}",
                delta.n_tasks, delta.n_workers, base.n_tasks, base.n_workers
            )));
        }
        if delta.shards.len() != base.shards.len() {
            return Err(SnapshotError::Mismatch(format!(
                "delta {step} has {} shards, base has {}",
                delta.shards.len(),
                base.shards.len()
            )));
        }
        // A delta's exchange *replaces* the base's, so a missing or
        // truncated one would silently drop the in-flight gossip
        // deltas (restore would read "no exchange recorded" and the
        // resumed service would fall out of lockstep). A delta may
        // introduce an exchange over a v1-era base that had none, but
        // never shrink one.
        if !base.exchange.is_empty()
            && (delta.exchange.is_empty() || delta.exchange.len() != base.exchange.len())
        {
            return Err(SnapshotError::Mismatch(format!(
                "delta {step}: exchange has {} slots, base has {} — an incremental \
                 snapshot must carry the full exchange",
                delta.exchange.len(),
                base.exchange.len()
            )));
        }
        for (shard, increment) in base.shards.iter_mut().zip(&delta.shards) {
            if increment.shard != shard.shard {
                return Err(SnapshotError::Mismatch(format!(
                    "delta {step}: shard entry {} is labelled {}",
                    shard.shard, increment.shard
                )));
            }
            // Cursors are stream positions: on a pruned base the answers
            // already covered include the truncated prefix.
            let stream_len = shard.pruned_pairs.len() + shard.answers.len();
            if increment.since.answers != stream_len
                || increment.since.events != shard.gossip_events.len()
            {
                return Err(SnapshotError::Mismatch(format!(
                    "delta {step}: shard {} resumes at ({}, {}) but the base ends at \
                     ({}, {}) — deltas must chain contiguously",
                    shard.shard,
                    increment.since.answers,
                    increment.since.events,
                    stream_len,
                    shard.gossip_events.len()
                )));
            }
            shard.answers.extend(increment.answers.iter().copied());
            shard
                .gossip_events
                .extend(increment.gossip_events.iter().cloned());
            shard.budget_used = increment.budget_used;
            shard.publishes = increment.publishes;
            shard.checkpoint.clone_from(&increment.checkpoint);
        }
        base.exchange.clone_from(&delta.exchange);
        Ok(())
    }
}

impl ServiceSnapshotDelta {
    /// Renders the delta as a deterministic JSON document (v3 layout with
    /// its own deduplicated payload table, marked `"kind":"delta"`).
    #[allow(clippy::cast_precision_loss)]
    #[must_use]
    pub fn to_json(&self) -> String {
        let table = build_delta_table(
            self.shards.iter().map(|s| s.gossip_events.as_slice()),
            &self.exchange,
        );
        let shards = self
            .shards
            .iter()
            .map(|s| {
                let mut entry = vec![
                    ("shard".into(), Json::Num(s.shard as f64)),
                    ("since_answers".into(), Json::uint(s.since.answers as u64)),
                    ("since_events".into(), Json::uint(s.since.events as u64)),
                    ("budget_used".into(), Json::Num(s.budget_used as f64)),
                    ("publishes".into(), Json::uint(s.publishes)),
                    ("answers".into(), answers_to_json(&s.answers)),
                    (
                        "gossip_events".into(),
                        events_to_json_refs(&s.gossip_events),
                    ),
                ];
                if let Some(cp) = &s.checkpoint {
                    entry.push(("checkpoint".into(), checkpoint_to_json(cp)));
                }
                Json::Obj(entry)
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::Num(self.version as f64)),
            ("kind".into(), Json::Str("delta".into())),
            ("n_tasks".into(), Json::Num(self.n_tasks as f64)),
            ("n_workers".into(), Json::Num(self.n_workers as f64)),
            ("deltas".into(), table_to_json(&table)),
            ("shards".into(), Json::Arr(shards)),
            ("exchange".into(), exchange_to_json_refs(&self.exchange)),
        ])
        .render()
    }

    /// Parses a delta document.
    ///
    /// # Errors
    /// [`SnapshotError::Json`] on malformed JSON, [`SnapshotError::Schema`]
    /// on a structurally invalid document or one that is not a v3 delta.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let doc = Json::parse(text)?;
        let version = usize_field(&doc, "version")? as u64;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Schema(format!(
                "unsupported delta version {version} (deltas exist only in v{SNAPSHOT_VERSION})"
            )));
        }
        if doc.get("kind").and_then(Json::as_str) != Some("delta") {
            return Err(SnapshotError::Schema(
                "not a delta document (missing \"kind\":\"delta\")".into(),
            ));
        }
        let table = table_from_json(&doc)?;
        let shards_json = field(&doc, "shards")?
            .as_arr()
            .ok_or_else(|| SnapshotError::Schema("'shards' is not an array".into()))?;
        let mut shards = Vec::with_capacity(shards_json.len());
        for shard_json in shards_json {
            shards.push(ShardDelta {
                shard: usize_field(shard_json, "shard")?,
                since: SnapshotCursor {
                    answers: usize_field(shard_json, "since_answers")?,
                    events: usize_field(shard_json, "since_events")?,
                },
                budget_used: usize_field(shard_json, "budget_used")?,
                publishes: usize_field(shard_json, "publishes")? as u64,
                answers: answers_from_json(field(shard_json, "answers")?)?,
                gossip_events: events_from_json_refs(field(shard_json, "gossip_events")?, &table)?,
                checkpoint: shard_json
                    .get("checkpoint")
                    .map(checkpoint_from_json)
                    .transpose()?,
            });
        }
        Ok(Self {
            version,
            n_tasks: usize_field(&doc, "n_tasks")?,
            n_workers: usize_field(&doc, "n_workers")?,
            shards,
            exchange: exchange_from_json_refs(field(&doc, "exchange")?, &table)?,
        })
    }

    /// The per-shard cursors marking where this delta leaves off — feed
    /// them to the next [`LabellingService::snapshot_delta`] call to keep
    /// the chain contiguous.
    #[must_use]
    pub fn cursors(&self) -> Vec<SnapshotCursor> {
        self.shards
            .iter()
            .map(|s| SnapshotCursor {
                answers: s.since.answers + s.answers.len(),
                events: s.since.events + s.gossip_events.len(),
            })
            .collect()
    }
}

impl Shard {
    /// Captures this shard's stream past `since`: answers and recorded
    /// events beyond the cursor, the current budget/publish counters and
    /// the latest checkpoint. The per-shard half of
    /// [`LabellingService::snapshot_delta`].
    ///
    /// # Errors
    /// [`SnapshotError::Mismatch`] when the cursor lies beyond what this
    /// shard has recorded (it belongs to a different campaign, or the
    /// chain skipped a document).
    pub fn snapshot_delta(&self, since: SnapshotCursor) -> Result<ShardDelta, SnapshotError> {
        let floor = self.framework().log().pruned();
        let n_answers = self.framework().log().stream_len();
        let n_events = self.gossip_events().len();
        if since.answers > n_answers || since.events > n_events {
            return Err(SnapshotError::Mismatch(format!(
                "shard {}: cursor ({}, {}) is beyond the recorded stream ({}, {})",
                self.id(),
                since.answers,
                since.events,
                n_answers,
                n_events
            )));
        }
        // A retention prune dropped the payloads before `floor` from
        // memory; a cursor behind it asks for answers this shard can no
        // longer supply. The chain must re-base on a fresh full snapshot.
        if since.answers < floor {
            return Err(SnapshotError::Mismatch(format!(
                "shard {}: cursor {} predates the pruned prefix ({} answers truncated) — \
                 take a new base snapshot instead of extending this chain",
                self.id(),
                since.answers,
                floor
            )));
        }
        Ok(ShardDelta {
            shard: self.id(),
            since,
            budget_used: self.framework().budget_used(),
            publishes: self.publishes(),
            answers: self
                .answers_global()
                .skip(since.answers - floor)
                .map(|(worker, task, bits)| SnapshotAnswer { worker, task, bits })
                .collect(),
            gossip_events: self.gossip_events()[since.events..].to_vec(),
            checkpoint: self.checkpoint().cloned(),
        })
    }
}

/// How many delayed rebuilds `on_submit` deterministically triggered over
/// the first `position` answers, given the hardening sweeps recorded in
/// the event prefix (each resets the absorb counter) — used to seed the
/// `em_rebuilds` metric for answers that are bulk-loaded instead of
/// replayed.
fn prefix_rebuilds(position: usize, prefix_events: &[GossipEvent], policy: &UpdatePolicy) -> u64 {
    let Some(every) = policy.full_em_every else {
        return 0;
    };
    let mut sweeps = prefix_events
        .iter()
        .filter(|e| matches!(e.kind, GossipEventKind::FullSweep))
        .map(|e| e.position)
        .peekable();
    let mut rebuilds = 0u64;
    let mut absorbed = 0usize;
    for p in 0..position {
        while sweeps.peek() == Some(&p) {
            absorbed = 0;
            sweeps.next();
        }
        absorbed += 1;
        if absorbed >= every {
            rebuilds += 1;
            absorbed = 0;
        }
    }
    rebuilds
}

impl LabellingService {
    /// Captures the campaign state. Flushes the ingestion queue first
    /// (producers must have stopped, as for
    /// [`LabellingService::quiesce`]).
    #[must_use]
    pub fn snapshot(&self) -> ServiceSnapshot {
        let started = std::time::Instant::now();
        self.quiesce();
        let map = self.inner.map();
        let shards = self
            .inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, lock)| {
                let shard = lock.read();
                ShardSnapshot {
                    shard: i,
                    budget: shard.framework().config().budget,
                    budget_used: shard.framework().budget_used(),
                    answers: shard
                        .answers_global()
                        .map(|(worker, task, bits)| SnapshotAnswer { worker, task, bits })
                        .collect(),
                    gossip_events: shard.gossip_events().to_vec(),
                    publishes: shard.publishes(),
                    checkpoint: shard.checkpoint().cloned(),
                    pruned_pairs: shard.pruned_pairs_global().collect(),
                    frozen: shard.framework().model().frozen_baseline().cloned(),
                    seqs: shard.seqs().map(<[u64]>::to_vec),
                }
            })
            .collect();
        let exchange = self
            .inner
            .exchange
            .iter()
            .map(|slot| slot.read().clone())
            .collect();
        let snapshot = ServiceSnapshot {
            version: SNAPSHOT_VERSION,
            n_tasks: map.n_tasks(),
            // The *base* pool: mid-campaign registrations live in the
            // event streams and re-grow the pool on restore, so the shape
            // check stays against the pool the campaign started from.
            n_workers: self.inner.base_pool.len(),
            config: self.config.clone(),
            shards,
            exchange,
            // The startup partition is implied by (tasks, n_shards);
            // record the map only once elasticity has moved it.
            map: (map.version() > 1).then(|| SnapshotShardMap {
                version: map.version(),
                cells: map.cells().to_vec(),
            }),
        };
        self.inner.obs.snapshot.record_duration(started.elapsed());
        snapshot
    }

    /// [`LabellingService::snapshot`] rendered straight to JSON, recording
    /// the document size in [`ServiceMetrics::snapshot_bytes`](crate::ServiceMetrics::snapshot_bytes)
    /// so operators can watch the v3 format and compaction keep persisted
    /// state bounded.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        let json = self.snapshot().to_json();
        self.inner
            .snapshot_bytes
            .store(json.len() as u64, std::sync::atomic::Ordering::Relaxed);
        json
    }

    /// Captures an incremental snapshot: only what each shard recorded
    /// past `since` (the cursors of the base snapshot or of the previous
    /// delta in the chain — see [`ServiceSnapshot::cursors`] /
    /// [`ServiceSnapshotDelta::cursors`]). Quiesces first, like
    /// [`LabellingService::snapshot`].
    ///
    /// # Errors
    /// [`SnapshotError::Mismatch`] when the cursor count does not match
    /// the shard count or a cursor lies beyond a shard's recorded stream.
    pub fn snapshot_delta(
        &self,
        since: &[SnapshotCursor],
    ) -> Result<ServiceSnapshotDelta, SnapshotError> {
        self.quiesce();
        // Incremental documents are defined over a *fixed* partition: a
        // split/merge rewrites per-shard streams wholesale (answers move
        // between shards), which no append-only delta can express. Worker
        // registrations ride in the event stream and would be fine, but a
        // materialized seq column is also per-answer state a ShardDelta
        // does not carry — re-base on a full snapshot once elastic.
        let elastic = self.inner.map().version() > 1
            || self
                .inner
                .shards
                .iter()
                .any(|lock| lock.read().seqs().is_some());
        if elastic {
            return Err(SnapshotError::Mismatch(
                "the shard map has moved since startup — incremental snapshots are \
                 not defined across a split/merge; take a new base snapshot"
                    .into(),
            ));
        }
        if since.len() != self.n_shards() {
            return Err(SnapshotError::Mismatch(format!(
                "{} cursors supplied for {} shards",
                since.len(),
                self.n_shards()
            )));
        }
        let mut shards = Vec::with_capacity(self.n_shards());
        for (lock, &cursor) in self.inner.shards.iter().zip(since) {
            shards.push(lock.read().snapshot_delta(cursor)?);
        }
        let exchange = self
            .inner
            .exchange
            .iter()
            .map(|slot| slot.read().clone())
            .collect();
        Ok(ServiceSnapshotDelta {
            version: SNAPSHOT_VERSION,
            n_tasks: self.inner.map().n_tasks(),
            n_workers: self.inner.base_pool.len(),
            shards,
            exchange,
        })
    }

    /// Rebuilds a service from a snapshot over the *same* task set and
    /// worker pool the snapshot was taken from.
    ///
    /// Shards that carry a v3 [`ModelCheckpoint`] **harden from
    /// parameters**: the answers before the checkpoint are bulk-loaded
    /// (validated but not run through the model), the checkpoint
    /// parameters are re-seeded and the sufficient statistics recomputed
    /// with one deterministic E-pass, and only the stream recorded after
    /// the checkpoint is replayed. Shards without a checkpoint (v1/v2
    /// documents, or campaigns that never full-swept) replay their whole
    /// event stream. Either way the restored model state is bit-identical
    /// to the snapshotted one ([`LabellingService::restore_verified`]
    /// proves it on demand), the exchange is re-seeded with the
    /// snapshotted in-flight deltas, and the service is live — producers
    /// can resume (and keep gossiping) where the campaign left off.
    ///
    /// # Errors
    /// [`SnapshotError::Mismatch`] when `tasks` / `workers` do not match
    /// the snapshot's shapes (or the derived shard map / budget slices
    /// disagree, a gossip event is mis-positioned, or a checkpoint is
    /// inconsistent with its shard), [`SnapshotError::Replay`] when a
    /// recorded answer is rejected.
    pub fn restore(
        tasks: &TaskSet,
        workers: &WorkerPool,
        snapshot: &ServiceSnapshot,
    ) -> Result<Self, SnapshotError> {
        Self::restore_inner(tasks, workers, snapshot, true)
    }

    /// Rebuilds a service from a base snapshot plus a *stream* of deltas,
    /// without materialising the whole chain: each delta is folded into
    /// the accumulated base ([`ServiceSnapshot::compact_iter`]) before the
    /// next is pulled, so restoring an arbitrarily long chain peaks at the
    /// compacted base plus one delta. The result is byte-identical to
    /// compacting the full chain first and restoring that document.
    ///
    /// # Errors
    /// As for [`ServiceSnapshot::compact_iter`] and
    /// [`LabellingService::restore`].
    pub fn restore_chain<I>(
        tasks: &TaskSet,
        workers: &WorkerPool,
        base: &ServiceSnapshot,
        chain: I,
    ) -> Result<Self, SnapshotError>
    where
        I: IntoIterator<Item = Result<ServiceSnapshotDelta, SnapshotError>>,
    {
        let compacted = base.compact_iter(chain)?;
        Self::restore(tasks, workers, &compacted)
    }

    /// Rebuilds a service by replaying every shard's **full** recorded
    /// event stream — answers in arrival order interleaved with gossip
    /// folds and hardening sweeps at their recorded positions — ignoring
    /// any checkpoints. This is the v1/v2 restore algorithm, kept as the
    /// verification path for the v3 parameter fast path: replay
    /// reproduces the exact sequence the live shards processed, so its
    /// result is bit-identical to the snapshotted state by construction.
    ///
    /// # Errors
    /// As for [`LabellingService::restore`], plus
    /// [`SnapshotError::Mismatch`] on a pruned snapshot: the truncated
    /// answer payloads no longer exist, so there is nothing to replay —
    /// pruned documents restore only through their checkpoint.
    pub fn restore_replay(
        tasks: &TaskSet,
        workers: &WorkerPool,
        snapshot: &ServiceSnapshot,
    ) -> Result<Self, SnapshotError> {
        if let Some(s) = snapshot.shards.iter().find(|s| !s.pruned_pairs.is_empty()) {
            return Err(SnapshotError::Mismatch(format!(
                "shard {}: {} answers were pruned from the stream — a pruned snapshot \
                 cannot be restored by full replay",
                s.shard,
                s.pruned_pairs.len()
            )));
        }
        Self::restore_inner(tasks, workers, snapshot, false)
    }

    /// Restores through **both** paths — parameters and full replay — and
    /// proves them bit-identical (per-shard model parameters, folded peer
    /// tables, publish counters, checkpoints, and the hardened decisions)
    /// before returning the parameter-restored service. The snapshot
    /// `--verify` mode: slower than [`LabellingService::restore`] by one
    /// full replay, but certifies the fast path on the operator's actual
    /// document.
    ///
    /// On a **pruned** snapshot the replay path no longer exists (the
    /// truncated payloads are gone), so verification degrades to
    /// params-only: the restored service is re-snapshotted and the result
    /// must reproduce the input document exactly — every surviving byte of
    /// state (parameters, frozen baseline, pruned index, events, counters)
    /// round-trips, but the pre-prune history itself is taken on the
    /// checkpoint's authority.
    ///
    /// # Errors
    /// As for [`LabellingService::restore`], plus
    /// [`SnapshotError::Mismatch`] when the two paths disagree anywhere
    /// (or, pruned, when the re-snapshot differs from the input).
    pub fn restore_verified(
        tasks: &TaskSet,
        workers: &WorkerPool,
        snapshot: &ServiceSnapshot,
    ) -> Result<Self, SnapshotError> {
        if snapshot.is_pruned() {
            let fast = Self::restore(tasks, workers, snapshot)?;
            let again = fast.snapshot();
            if again != *snapshot {
                return Err(SnapshotError::Mismatch(
                    "restore verification failed: re-snapshotting the restored service \
                     did not reproduce the pruned document"
                        .into(),
                ));
            }
            return Ok(fast);
        }
        let fast = Self::restore(tasks, workers, snapshot)?;
        let replay = Self::restore_replay(tasks, workers, snapshot)?;
        for i in 0..fast.n_shards() {
            let a = fast.shard(i);
            let b = replay.shard(i);
            if a.framework().params() != b.framework().params() {
                return Err(SnapshotError::Mismatch(format!(
                    "restore verification failed: shard {i} parameters differ between \
                     the checkpoint and replay paths"
                )));
            }
            if a.framework().peer_stats() != b.framework().peer_stats() {
                return Err(SnapshotError::Mismatch(format!(
                    "restore verification failed: shard {i} peer tables differ"
                )));
            }
            if a.publishes() != b.publishes() || a.checkpoint() != b.checkpoint() {
                return Err(SnapshotError::Mismatch(format!(
                    "restore verification failed: shard {i} counters differ"
                )));
            }
        }
        if fast.decisions() != replay.decisions() {
            return Err(SnapshotError::Mismatch(
                "restore verification failed: hardened decisions differ".into(),
            ));
        }
        replay.shutdown();
        Ok(fast)
    }

    #[allow(clippy::too_many_lines)]
    fn restore_inner(
        tasks: &TaskSet,
        workers: &WorkerPool,
        snapshot: &ServiceSnapshot,
        use_checkpoints: bool,
    ) -> Result<Self, SnapshotError> {
        let started = std::time::Instant::now();
        if snapshot.n_tasks != tasks.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot covers {} tasks, task set has {}",
                snapshot.n_tasks,
                tasks.len()
            )));
        }
        if snapshot.n_workers != workers.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot covers {} workers, pool has {}",
                snapshot.n_workers,
                workers.len()
            )));
        }
        let service = Self::start(tasks, workers, snapshot.config.clone());
        if service.n_shards() != snapshot.shards.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} shards, rebuilt map has {}",
                snapshot.shards.len(),
                service.n_shards()
            )));
        }
        // Budget slices are validated as a whole (they must still sum to
        // the campaign budget) and adopted per shard below: a handoff or a
        // demand-driven rebalance moves them off the startup split.
        let sliced: usize = snapshot.shards.iter().map(|s| s.budget).sum();
        if sliced != snapshot.config.budget {
            return Err(SnapshotError::Mismatch(format!(
                "per-shard budget slices sum to {sliced}, config budget is {}",
                snapshot.config.budget
            )));
        }
        // A recorded (v4) shard map supersedes the startup partition:
        // re-partition the still-empty shards under it before replaying,
        // so every answer replays on the shard that owned it at capture.
        if let Some(map) = &snapshot.map {
            let rebuilt =
                ShardMap::with_cells(tasks, snapshot.config.n_shards, &map.cells, map.version)
                    .map_err(SnapshotError::Mismatch)?;
            let slices: Vec<usize> = snapshot.shards.iter().map(|s| s.budget).collect();
            service.inner.adopt_map(rebuilt, &slices);
        }
        // Publish counters must cover every version this campaign already
        // put on the wire (recorded folds, in-flight exchange): a resumed
        // shard stamps `publishes + 1` next, so a counter behind the
        // recorded maximum would re-stamp old versions with *different*
        // payloads — breaking the (source, version)-uniqueness invariant
        // the gossip algebra and the v3 delta table both rest on.
        let mut max_published = vec![0u64; snapshot.shards.len()];
        let recorded = snapshot
            .shards
            .iter()
            .flat_map(|s| s.gossip_events.iter())
            .filter_map(|e| match &e.kind {
                GossipEventKind::Fold(delta) => Some((delta.source, delta.version)),
                // A pruned fold still records that its source published
                // this version — the counter must cover it.
                GossipEventKind::FoldRef { source, version } => Some((*source, *version)),
                GossipEventKind::FullSweep | GossipEventKind::Register { .. } => None,
            })
            .chain(
                snapshot
                    .exchange
                    .iter()
                    .flatten()
                    .map(|d| (d.source, d.version)),
            );
        for (delta_source, delta_version) in recorded {
            let source = usize::try_from(delta_source)
                .ok()
                .filter(|&s| s < max_published.len())
                .ok_or_else(|| {
                    SnapshotError::Mismatch(format!(
                        "recorded gossip payload from source {delta_source} but the campaign \
                         has only {} shards — no shard could have published it",
                        snapshot.shards.len()
                    ))
                })?;
            max_published[source] = max_published[source].max(delta_version);
        }
        for (i, shard_snapshot) in snapshot.shards.iter().enumerate() {
            if shard_snapshot.publishes < max_published[i] {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i}: publish counter {} lags behind version {} already recorded \
                     for this source — a resumed shard would republish a seen version with \
                     a different payload",
                    shard_snapshot.publishes, max_published[i]
                )));
            }
        }
        for (i, shard_snapshot) in snapshot.shards.iter().enumerate() {
            if shard_snapshot.shard != i {
                return Err(SnapshotError::Mismatch(format!(
                    "shard entry {i} is labelled {}",
                    shard_snapshot.shard
                )));
            }
            let mut shard = service.inner.shards[i].write();
            // Adopt the recorded slice: rebalance (and, with a recorded
            // map, handoff) move slices off the startup split, so equality
            // with the fresh shard's slice is not an invariant — only the
            // campaign-wide sum (validated above) is.
            shard.framework_mut().set_budget(shard_snapshot.budget);
            service.inner.metrics[i].set_budget_slice(shard_snapshot.budget);
            let all_events = &shard_snapshot.gossip_events;
            let floor = shard_snapshot.pruned_pairs.len();
            if floor > 0 && shard_snapshot.checkpoint.is_none() {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i}: {floor} answers were pruned but no checkpoint was \
                     recorded — the pruned prefix is unrecoverable"
                )));
            }
            // The stream position replay starts from: (0, 0) on the replay
            // path, the checkpoint on the parameter path. Positions are
            // stream-wide: on a pruned shard the in-memory answers vector
            // starts at `floor`.
            let (start_answer, start_event) = match shard_snapshot
                .checkpoint
                .as_ref()
                .filter(|_| use_checkpoints)
            {
                None if floor > 0 => {
                    // Unreachable through the public paths (restore_replay
                    // rejects pruned documents up front) but kept explicit
                    // so the arithmetic below can never underflow.
                    return Err(SnapshotError::Mismatch(format!(
                        "shard {i}: a pruned shard cannot be restored without its checkpoint"
                    )));
                }
                None => (0, 0),
                Some(cp) => {
                    Self::restore_shard_checkpoint(i, &mut shard, shard_snapshot, cp)?;
                    service.inner.metrics[i].seed_submits(
                        cp.position as u64,
                        prefix_rebuilds(
                            cp.position,
                            &all_events[..cp.events_applied],
                            &snapshot.config.policy,
                        ),
                    );
                    (cp.position, cp.events_applied)
                }
            };
            // Replay the remaining event stream: before the answer at
            // stream position `p`, apply every event recorded at position
            // `p` (i.e. after `p` answers had been applied), in recorded
            // order. The events re-record themselves, so a re-snapshot is
            // identical.
            let mut events = all_events[start_event..].iter().peekable();
            let mut apply_events_at =
                |shard: &mut Shard, position: usize| -> Result<(), SnapshotError> {
                    while events.peek().is_some_and(|e| e.position == position) {
                        let event = events.next().expect("peeked");
                        match &event.kind {
                            GossipEventKind::Fold(delta) => {
                                if !shard.fold_peer(delta) {
                                    return Err(SnapshotError::Mismatch(format!(
                                        "shard {i}: recorded gossip fold at position {position} \
                                         was stale on replay (corrupt event order)"
                                    )));
                                }
                            }
                            GossipEventKind::FoldRef { .. } => {
                                // Prunes strip payloads strictly before the
                                // checkpoint; a ref past it cannot be
                                // re-applied and marks a corrupt document.
                                return Err(SnapshotError::Mismatch(format!(
                                    "shard {i}: pruned fold reference at position {position} \
                                     lies after the checkpoint and cannot be replayed"
                                )));
                            }
                            GossipEventKind::FullSweep => shard.harden(),
                            GossipEventKind::Register { name, x, y } => {
                                shard
                                    .register_worker(Worker::at(name.clone(), Point::new(*x, *y)))
                                    .map_err(|error| SnapshotError::Replay { shard: i, error })?;
                            }
                        }
                    }
                    Ok(())
                };
            let stream_len = floor + shard_snapshot.answers.len();
            for (idx, answer) in shard_snapshot
                .answers
                .iter()
                .enumerate()
                .skip(start_answer - floor)
            {
                apply_events_at(&mut shard, floor + idx)?;
                let triggered = shard
                    .submit_global(answer.worker, answer.task, answer.bits)
                    .map_err(|error| SnapshotError::Replay { shard: i, error })?;
                service.inner.metrics[i].record_submit(triggered);
            }
            // Trailing events recorded at the final answer count (e.g. an
            // end-of-campaign exchange cycle + hardening sweep).
            apply_events_at(&mut shard, stream_len)?;
            if let Some(stray) = events.next() {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i}: gossip event at position {} but only {stream_len} answers \
                     recorded",
                    stray.position
                )));
            }
            shard.set_publishes(shard_snapshot.publishes);
            // Seed the gossip counters from the recorded fold events so
            // the restored metrics are consistent with the submit/rebuild
            // counters (distinct fold positions = rounds that folded
            // something; publish-only rounds are not persisted).
            let fold_positions: Vec<usize> = all_events
                .iter()
                .filter(|e| matches!(e.kind, GossipEventKind::Fold(_)))
                .map(|e| e.position)
                .collect();
            if let Some(&last) = fold_positions.last() {
                let rounds = 1 + fold_positions.windows(2).filter(|w| w[0] != w[1]).count() as u64;
                service.inner.metrics[i].seed_gossip(
                    rounds,
                    fold_positions.len() as u64,
                    last as u64,
                );
            }
            service.inner.metrics[i].set_events_len(shard.gossip_events().len() as u64);
            service.inner.metrics[i]
                .set_answer_tiers(shard.resident_answers(), shard.pruned_answers());
            let charged = shard.framework_mut().charge(shard_snapshot.budget_used);
            if charged != shard_snapshot.budget_used {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i} cannot re-charge {} of budget {}",
                    shard_snapshot.budget_used, shard_snapshot.budget
                )));
            }
            service.inner.metrics[i].set_budget_remaining(shard.framework().budget_remaining());
        }
        // Adopt the recorded canonical sequence numbers (present once a
        // handoff materialized them) and advance the global allocator past
        // the highest, so post-restore answers extend the same stream.
        let mut max_seq: Option<u64> = None;
        for (i, shard_snapshot) in snapshot.shards.iter().enumerate() {
            let Some(seqs) = &shard_snapshot.seqs else {
                continue;
            };
            let mut shard = service.inner.shards[i].write();
            if !shard.adopt_seqs(seqs.clone()) {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i}: {} seqs recorded for {} resident answers",
                    seqs.len(),
                    shard_snapshot.answers.len()
                )));
            }
            max_seq = max_seq.max(seqs.iter().copied().max());
        }
        if let Some(max) = max_seq {
            service
                .inner
                .next_seq
                .store(max + 1, std::sync::atomic::Ordering::Release);
        }
        // Mid-campaign registrations replayed above grew every shard's
        // pool in lockstep but bypassed the routing table; rebuild it from
        // the (now complete) pool under the adopted map.
        {
            let shard = service.inner.shards[0].read();
            let map = service.inner.map();
            let homes: Vec<usize> = shard
                .framework()
                .workers()
                .iter()
                .map(|w| map.shard_for_point(w.locations[0]))
                .collect();
            *service.inner.worker_home.write() = homes;
        }
        // Re-seed the exchange with the snapshotted in-flight deltas so the
        // resumed service gossips from exactly where the original stood —
        // republishing current state instead would hand peers *newer*
        // statistics than the original exchange held and break
        // resume-lockstep with a still-running original.
        if !snapshot.exchange.is_empty() {
            if snapshot.exchange.len() != service.n_shards() {
                return Err(SnapshotError::Mismatch(format!(
                    "snapshot exchange has {} slots, service has {} shards",
                    snapshot.exchange.len(),
                    service.n_shards()
                )));
            }
            for (slot, held) in service.inner.exchange.iter().zip(&snapshot.exchange) {
                *slot.write() = held.clone();
            }
        }
        // The restored service's hub is fresh (observability state is
        // never snapshotted); the restore itself is its first sample.
        service.inner.obs.restore.record_duration(started.elapsed());
        Ok(service)
    }

    /// The parameter fast path for one shard: validate the checkpoint,
    /// seed the pruned prefix and frozen baseline (pruned shards),
    /// bulk-load the resident answer prefix, adopt the event prefix
    /// verbatim, reconstruct the folded peer table from the prefix folds,
    /// and re-seed the model from the checkpoint parameters.
    fn restore_shard_checkpoint(
        i: usize,
        shard: &mut Shard,
        shard_snapshot: &ShardSnapshot,
        cp: &ModelCheckpoint,
    ) -> Result<(), SnapshotError> {
        let events = &shard_snapshot.gossip_events;
        let floor = shard_snapshot.pruned_pairs.len();
        let stream_len = floor + shard_snapshot.answers.len();
        if cp.position > stream_len || cp.events_applied > events.len() {
            return Err(SnapshotError::Mismatch(format!(
                "shard {i}: checkpoint at ({}, {}) is beyond the recorded stream \
                 ({stream_len}, {})",
                cp.position,
                cp.events_applied,
                events.len()
            )));
        }
        if cp.position < floor {
            return Err(SnapshotError::Mismatch(format!(
                "shard {i}: checkpoint at position {} lies inside the pruned prefix \
                 ({floor} answers truncated) — a prune is only legal at its checkpoint",
                cp.position
            )));
        }
        if events[..cp.events_applied]
            .iter()
            .any(|e| e.position > cp.position)
            || events[cp.events_applied..]
                .iter()
                .any(|e| e.position < cp.position)
        {
            return Err(SnapshotError::Mismatch(format!(
                "shard {i}: checkpoint event index {} does not split the event stream at \
                 position {}",
                cp.events_applied, cp.position
            )));
        }
        if floor > 0 {
            if !shard.restore_pruned_global(&shard_snapshot.pruned_pairs) {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i}: pruned answer index names a task this shard does not own \
                     or repeats a (worker, task) pair"
                )));
            }
            let Some(frozen) = &shard_snapshot.frozen else {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i}: pruned shard carries no frozen statistics baseline"
                )));
            };
            if !shard.framework_mut().restore_frozen(frozen.clone()) {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i}: frozen baseline does not match the configured distance \
                     function set"
                )));
            }
        }
        // Pre-checkpoint registrations must grow the pool *before* the
        // bulk load so the checkpoint's parameter shapes match; their
        // events are adopted verbatim with the rest of the prefix below
        // (registering through the framework records no event).
        for event in &events[..cp.events_applied] {
            if let GossipEventKind::Register { name, x, y } = &event.kind {
                shard
                    .framework_mut()
                    .register_worker(Worker::at(name.clone(), Point::new(*x, *y)))
                    .map_err(|error| SnapshotError::Replay { shard: i, error })?;
            }
        }
        for answer in &shard_snapshot.answers[..cp.position - floor] {
            shard
                .load_global(answer.worker, answer.task, answer.bits)
                .map_err(|error| SnapshotError::Replay { shard: i, error })?;
        }
        let mut peers = PeerStats::new();
        for event in &events[..cp.events_applied] {
            // Pruned folds (`FoldRef`) are skipped: a prune keeps each
            // source's *latest* fold payload intact, and absorbing just
            // that one rebuilds the same per-source row the full sequence
            // would have (aggregation is latest-per-source).
            if let GossipEventKind::Fold(delta) = &event.kind {
                if !peers.absorb(delta) {
                    return Err(SnapshotError::Mismatch(format!(
                        "shard {i}: recorded gossip fold at position {} was stale when \
                         rebuilding the checkpoint peer table (corrupt event order)",
                        event.position
                    )));
                }
            }
        }
        shard.adopt_events(events[..cp.events_applied].to_vec());
        if !shard.restore_checkpoint(cp.clone(), peers) {
            return Err(SnapshotError::Mismatch(format!(
                "shard {i}: checkpoint parameters do not match the shard's task/worker/\
                 function shapes"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_delta(source: u64, version: u64) -> WorkerStatDelta {
        WorkerStatDelta {
            source,
            version,
            n_funcs: 2,
            i_sum: vec![0.1 + 0.2, 1.5],
            worker_bits: vec![2, 4],
            dw_sum: vec![0.25, 1.0 / 3.0, 0.5, 0.125],
        }
    }

    fn sample_checkpoint() -> ModelCheckpoint {
        ModelCheckpoint {
            position: 2,
            events_applied: 1,
            params: ModelParams::from_parts(
                2,
                vec![0.25, 0.5, 0.75],
                vec![0.8, 0.1 + 0.2],
                vec![0.5, 0.5, 0.25, 0.75],
                vec![1.0 / 3.0, 2.0 / 3.0],
            )
            .unwrap(),
        }
    }

    fn sample_snapshot() -> ServiceSnapshot {
        ServiceSnapshot {
            version: SNAPSHOT_VERSION,
            n_tasks: 20,
            n_workers: 7,
            config: ServeConfig {
                n_shards: 3,
                budget: 123,
                gossip_every: Some(50),
                ..ServeConfig::default()
            },
            shards: vec![
                ShardSnapshot {
                    shard: 0,
                    budget: 60,
                    budget_used: 12,
                    answers: vec![
                        SnapshotAnswer {
                            worker: WorkerId(3),
                            task: TaskId(11),
                            bits: LabelBits::from_slice(&[true, false, true]),
                        },
                        SnapshotAnswer {
                            worker: WorkerId(0),
                            task: TaskId(4),
                            bits: LabelBits::from_slice(&[false, false, false]),
                        },
                    ],
                    gossip_events: vec![
                        GossipEvent {
                            position: 1,
                            kind: GossipEventKind::Fold(sample_delta(1, 9)),
                        },
                        GossipEvent {
                            position: 2,
                            kind: GossipEventKind::FullSweep,
                        },
                    ],
                    publishes: 3,
                    checkpoint: Some(sample_checkpoint()),
                    pruned_pairs: Vec::new(),
                    frozen: None,
                    seqs: None,
                },
                ShardSnapshot {
                    shard: 1,
                    budget: 63,
                    budget_used: 0,
                    answers: vec![],
                    gossip_events: vec![],
                    publishes: 0,
                    checkpoint: None,
                    pruned_pairs: Vec::new(),
                    frozen: None,
                    seqs: None,
                },
            ],
            exchange: vec![Some(sample_delta(0, 2)), None, Some(sample_delta(2, 7))],
            map: None,
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snapshot = sample_snapshot();
        let text = snapshot.to_json();
        let back = ServiceSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snapshot);
        // Determinism: rendering twice gives identical bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn v3_documents_deduplicate_fold_payloads() {
        // Two shards folding the same published delta store the payload
        // once in the table; events are two-number references.
        let mut snapshot = sample_snapshot();
        snapshot.shards[1].gossip_events = vec![GossipEvent {
            position: 0,
            kind: GossipEventKind::Fold(sample_delta(1, 9)),
        }];
        let text = snapshot.to_json();
        assert_eq!(
            text.matches("\"worker_bits\"").count(),
            3,
            "payload (1,9) must be stored once, plus the two exchange slots"
        );
        let back = ServiceSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn legacy_v2_encoding_round_trips_without_checkpoints() {
        let snapshot = sample_snapshot();
        let v2_text = snapshot.to_json_versioned(2).unwrap();
        assert!(!v2_text.contains("checkpoint"));
        assert!(!v2_text.contains("\"deltas\""));
        let back = ServiceSnapshot::from_json(&v2_text).unwrap();
        assert_eq!(back.version, 2);
        assert_eq!(back.shards[0].checkpoint, None);
        assert_eq!(back.shards[0].answers, snapshot.shards[0].answers);
        assert_eq!(
            back.shards[0].gossip_events,
            snapshot.shards[0].gossip_events
        );
        assert_eq!(back.exchange, snapshot.exchange);
        // A parsed legacy document re-renders in its own layout.
        assert_eq!(back.to_json(), v2_text);
        // And unsupported target versions are rejected.
        assert!(snapshot.to_json_versioned(1).is_err());
        assert!(snapshot.to_json_versioned(5).is_err());
    }

    #[test]
    fn checkpoint_params_survive_round_trip_bit_for_bit() {
        let snapshot = sample_snapshot();
        let back = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap();
        let params = &back.shards[0].checkpoint.as_ref().unwrap().params;
        let original = &snapshot.shards[0].checkpoint.as_ref().unwrap().params;
        assert_eq!(params, original);
        assert_eq!(params.inherent_all()[1].to_bits(), (0.1f64 + 0.2).to_bits());
    }

    fn sample_frozen() -> SufficientStats {
        SufficientStats::from_parts(
            2,
            vec![0.5, 0.1 + 0.2],
            vec![1, 2],
            vec![0.5, 0.75],
            vec![1, 2],
            vec![0.25, 0.5, 0.125, 0.375],
            vec![1.0 / 3.0, 2.0 / 3.0, 0.2, 0.8],
        )
        .unwrap()
    }

    fn pruned_sample_snapshot() -> ServiceSnapshot {
        let mut snapshot = sample_snapshot();
        let shard = &mut snapshot.shards[0];
        shard.pruned_pairs = vec![(WorkerId(1), TaskId(2)), (WorkerId(2), TaskId(11))];
        shard.frozen = Some(sample_frozen());
        // A prune strips superseded pre-checkpoint folds to references.
        shard.gossip_events.insert(
            0,
            GossipEvent {
                position: 0,
                kind: GossipEventKind::FoldRef {
                    source: 1,
                    version: 8,
                },
            },
        );
        snapshot
    }

    #[test]
    fn pruned_snapshot_round_trips_and_rejects_v2() {
        let snapshot = pruned_sample_snapshot();
        let text = snapshot.to_json();
        let back = ServiceSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snapshot);
        assert_eq!(back.to_json(), text);
        // The frozen floats survive bit-for-bit.
        let frozen = back.shards[0].frozen.as_ref().unwrap();
        assert_eq!(frozen.z_sum()[1].to_bits(), (0.1f64 + 0.2).to_bits());
        // Cursors are stream positions: the pruned prefix counts.
        assert_eq!(back.cursors()[0].answers, 2 + 2);
        // A pruned fold reference must not resolve through the delta table
        // (its payload is gone by design) and must round-trip as a ref.
        assert!(text.contains("\"ref\":true"));
        // The legacy layout cannot represent a truncated stream.
        let err = snapshot.to_json_versioned(2).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
    }

    #[test]
    fn pruned_shard_without_its_baseline_is_rejected() {
        let mut snapshot = pruned_sample_snapshot();
        snapshot.shards[0].frozen = None;
        let err = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");

        // Parallel pruned arrays of different lengths are corrupt.
        let text = pruned_sample_snapshot().to_json();
        let broken = text.replace("\"pruned_workers\":[1,2]", "\"pruned_workers\":[1]");
        assert_ne!(broken, text);
        let err = ServiceSnapshot::from_json(&broken).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
    }

    #[test]
    fn em_config_floats_survive_round_trip() {
        let mut snapshot = sample_snapshot();
        snapshot.config.em.alpha = 0.1 + 0.2; // a float with an ugly tail
        snapshot.config.em.tolerance = 1e-9;
        snapshot.config.policy = UpdatePolicy {
            full_em_every: None,
            full_sweep_every: 5,
            dirty_coverage_fallback: 42,
            parallelism: EmParallelism::Fixed(3),
        };
        let back = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(
            back.config.em.alpha.to_bits(),
            snapshot.config.em.alpha.to_bits()
        );
        assert_eq!(back.config.policy.full_em_every, None);
        assert_eq!(back.config.policy.full_sweep_every, 5);
        assert_eq!(back.config.policy.dirty_coverage_fallback, 42);
        assert_eq!(back.config.policy.parallelism, EmParallelism::Fixed(3));
        assert_eq!(back.config.em.fset, snapshot.config.em.fset);
    }

    #[test]
    fn retention_policy_round_trips_and_defaults_to_keep_all() {
        // Keep-all campaigns emit no 'retention' field at all, so
        // pre-retention documents and writers agree byte-for-byte.
        let mut snapshot = sample_snapshot();
        assert!(!snapshot.to_json().contains("retention"));
        assert_eq!(
            ServiceSnapshot::from_json(&snapshot.to_json())
                .unwrap()
                .config
                .retention,
            RetentionPolicy::KeepAll
        );
        snapshot.config.retention = RetentionPolicy::PruneCheckpointed {
            spill_dir: Some("/var/lib/crowd/spill".into()),
        };
        let back = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(back.config.retention, snapshot.config.retention);
        snapshot.config.retention = RetentionPolicy::PruneCheckpointed { spill_dir: None };
        let back = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(back.config.retention, snapshot.config.retention);
    }

    #[test]
    fn auto_parallelism_round_trips_as_auto() {
        let mut snapshot = sample_snapshot();
        snapshot.config.policy.parallelism = EmParallelism::Auto;
        let text = snapshot.to_json();
        assert!(text.contains("\"em_threads\":\"auto\""), "{text}");
        let back = ServiceSnapshot::from_json(&text).unwrap();
        assert_eq!(back.config.policy.parallelism, EmParallelism::Auto);
    }

    #[test]
    fn missing_full_sweep_every_restores_as_exact() {
        // Pre-dirty-set snapshots carry no 'full_sweep_every'; they must
        // restore to always-full-sweep behaviour, matching how they were
        // recorded.
        let snapshot = sample_snapshot();
        let text = snapshot.to_json();
        let stripped = text.replace(",\"full_sweep_every\":8", "");
        assert_ne!(stripped, text, "expected the field to be present");
        let back = ServiceSnapshot::from_json(&stripped).unwrap();
        assert_eq!(back.config.policy.full_sweep_every, 1);
    }

    #[test]
    fn gossip_payload_round_trips_exactly() {
        let snapshot = sample_snapshot();
        let back = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(back.exchange, snapshot.exchange);
        assert_eq!(
            back.shards[0].gossip_events,
            snapshot.shards[0].gossip_events
        );
        // Float payloads survive bit-for-bit (0.1 + 0.2 has an ugly tail).
        let held = back.exchange[0].as_ref().unwrap();
        assert_eq!(held.i_sum[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(back.config.gossip_every, Some(50));
        assert_eq!(back.config.policy.dirty_coverage_fallback, 60);
    }

    #[test]
    fn v1_documents_without_gossip_fields_still_parse() {
        // A pre-gossip (version 1) snapshot carries none of the new
        // fields; it must parse with gossip disabled and no events.
        let v1 = "{\"version\":1,\"n_tasks\":4,\"n_workers\":2,\
                  \"config\":{\"n_shards\":1,\"ingest_threads\":1,\
                  \"queue_capacity\":8,\"drain_batch\":4,\"budget\":10,\"h\":2,\
                  \"em\":{\"alpha\":0.5,\"tolerance\":0.005,\"max_iterations\":100,\
                  \"init\":\"vote_share\",\"lambdas\":[0.4,1.0,2.5]},\
                  \"full_em_every\":100,\"full_sweep_every\":8},\
                  \"shards\":[{\"shard\":0,\"budget\":10,\"budget_used\":0,\
                  \"answers\":[{\"w\":0,\"t\":1,\"bits\":\"101\"}]}]}";
        let parsed = ServiceSnapshot::from_json(v1).unwrap();
        assert_eq!(parsed.version, 1);
        assert_eq!(parsed.config.gossip_every, None);
        assert_eq!(parsed.config.policy.dirty_coverage_fallback, 60);
        // Pre-parallelism snapshots restore pinned to the sequential
        // sweep, not the auto default.
        assert_eq!(parsed.config.policy.parallelism, EmParallelism::Fixed(1));
        assert!(parsed.shards[0].gossip_events.is_empty());
        assert!(parsed.shards[0].checkpoint.is_none());
        assert!(parsed.exchange.is_empty());
    }

    #[test]
    fn malformed_delta_payload_is_rejected() {
        let mut snapshot = sample_snapshot();
        snapshot.exchange[0].as_mut().unwrap().i_sum.pop();
        let err = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
    }

    #[test]
    fn conflicting_stamps_and_ambiguous_events_are_rejected() {
        // Legacy documents: two *different* payloads under one stamp are
        // corrupt (v2 stored one copy per folding peer — they must agree);
        // identical duplicates are the normal case and must keep parsing.
        let mut snapshot = sample_snapshot();
        snapshot.shards[1].gossip_events = vec![GossipEvent {
            position: 0,
            kind: GossipEventKind::Fold(sample_delta(1, 9)),
        }];
        assert!(
            ServiceSnapshot::from_json(&snapshot.to_json_versioned(2).unwrap()).is_ok(),
            "identical duplicate payloads are the expected legacy shape"
        );
        let mut conflicting = sample_delta(1, 9);
        conflicting.i_sum[0] += 1.0;
        snapshot.shards[1].gossip_events[0].kind = GossipEventKind::Fold(conflicting);
        let err = ServiceSnapshot::from_json(&snapshot.to_json_versioned(2).unwrap()).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");

        // v3 documents: a duplicated table entry is rejected outright.
        let text = sample_snapshot().to_json();
        let entry = "{\"source\":1,\"version\":9,";
        let duplicated = text.replacen(entry, &format!("{entry}\"dup\":0,"), 1);
        let duplicated = duplicated.replace(
            "\"deltas\":[",
            &format!(
                "\"deltas\":[{},",
                delta_to_json(&sample_delta(1, 9)).render()
            ),
        );
        let err = ServiceSnapshot::from_json(&duplicated).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");

        // An event carrying both a fold reference and 'sweep':true is
        // ambiguous — rejected, like the inline parser always did.
        let ambiguous = text.replace(
            "{\"position\":1,\"source\":1,\"version\":9}",
            "{\"position\":1,\"source\":1,\"version\":9,\"sweep\":true}",
        );
        assert_ne!(ambiguous, text);
        let err = ServiceSnapshot::from_json(&ambiguous).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
    }

    #[test]
    fn dangling_table_reference_is_rejected() {
        let snapshot = sample_snapshot();
        let text = snapshot.to_json();
        // Repoint the (source 2, version 7) exchange reference at a stamp
        // the table does not hold.
        let broken = text.replace(
            "{\"source\":2,\"version\":7}",
            "{\"source\":2,\"version\":8}",
        );
        assert_ne!(broken, text);
        let err = ServiceSnapshot::from_json(&broken).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
    }

    #[test]
    fn delta_documents_are_rejected_by_the_base_parser() {
        let delta = ServiceSnapshotDelta {
            version: SNAPSHOT_VERSION,
            n_tasks: 20,
            n_workers: 7,
            shards: vec![],
            exchange: vec![],
        };
        let err = ServiceSnapshot::from_json(&delta.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
    }

    #[test]
    fn delta_document_round_trips() {
        let delta = ServiceSnapshotDelta {
            version: SNAPSHOT_VERSION,
            n_tasks: 20,
            n_workers: 7,
            shards: vec![ShardDelta {
                shard: 0,
                since: SnapshotCursor {
                    answers: 2,
                    events: 2,
                },
                budget_used: 14,
                publishes: 4,
                answers: vec![SnapshotAnswer {
                    worker: WorkerId(5),
                    task: TaskId(9),
                    bits: LabelBits::from_slice(&[true, true, false]),
                }],
                gossip_events: vec![GossipEvent {
                    position: 3,
                    kind: GossipEventKind::Fold(sample_delta(1, 10)),
                }],
                checkpoint: Some(sample_checkpoint()),
            }],
            exchange: vec![Some(sample_delta(0, 3)), None],
        };
        let text = delta.to_json();
        let back = ServiceSnapshotDelta::from_json(&text).unwrap();
        assert_eq!(back, delta);
        assert_eq!(back.to_json(), text);
        assert_eq!(
            back.cursors(),
            vec![SnapshotCursor {
                answers: 3,
                events: 3
            }]
        );
    }

    #[test]
    fn compact_appends_streams_and_adopts_latest_counters() {
        let base = sample_snapshot();
        let delta = ServiceSnapshotDelta {
            version: SNAPSHOT_VERSION,
            n_tasks: 20,
            n_workers: 7,
            shards: vec![
                ShardDelta {
                    shard: 0,
                    since: SnapshotCursor {
                        answers: 2,
                        events: 2,
                    },
                    budget_used: 20,
                    publishes: 5,
                    answers: vec![SnapshotAnswer {
                        worker: WorkerId(1),
                        task: TaskId(2),
                        bits: LabelBits::from_slice(&[true, false, false]),
                    }],
                    gossip_events: vec![],
                    checkpoint: base.shards[0].checkpoint.clone(),
                },
                ShardDelta {
                    shard: 1,
                    since: SnapshotCursor {
                        answers: 0,
                        events: 0,
                    },
                    budget_used: 3,
                    publishes: 1,
                    answers: vec![],
                    gossip_events: vec![GossipEvent {
                        position: 0,
                        kind: GossipEventKind::Fold(sample_delta(0, 4)),
                    }],
                    checkpoint: None,
                },
            ],
            exchange: vec![Some(sample_delta(0, 4)), None, None],
        };
        let compacted = base.compact(std::slice::from_ref(&delta)).unwrap();
        assert_eq!(compacted.shards[0].answers.len(), 3);
        assert_eq!(compacted.shards[0].budget_used, 20);
        assert_eq!(compacted.shards[0].publishes, 5);
        assert_eq!(compacted.shards[1].gossip_events.len(), 1);
        assert_eq!(compacted.exchange, delta.exchange);
        // The compacted base is a normal v3 document.
        let back = ServiceSnapshot::from_json(&compacted.to_json()).unwrap();
        assert_eq!(back, compacted);

        // A delta that does not chain contiguously is rejected.
        let err = compacted.compact(std::slice::from_ref(&delta)).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err}");

        // A truncated exchange would silently drop the in-flight gossip
        // deltas on restore — rejected instead of replacing the base's.
        let mut truncated = delta.clone();
        truncated.exchange.clear();
        let err = base.compact(std::slice::from_ref(&truncated)).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err}");
        let mut short = delta;
        short.exchange.pop();
        let err = base.compact(std::slice::from_ref(&short)).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err}");
    }

    #[test]
    fn prefix_rebuild_simulation_counts_sweep_resets() {
        let policy = UpdatePolicy {
            full_em_every: Some(3),
            ..UpdatePolicy::default()
        };
        // 10 answers, rebuilds at 3, 6, 9 → 3 rebuilds.
        assert_eq!(prefix_rebuilds(10, &[], &policy), 3);
        // A hardening sweep at position 2 resets the counter: rebuilds at
        // 5, 8 → 2 rebuilds.
        let sweep = [GossipEvent {
            position: 2,
            kind: GossipEventKind::FullSweep,
        }];
        assert_eq!(prefix_rebuilds(10, &sweep, &policy), 2);
        // Folds never reset anything.
        let fold = [GossipEvent {
            position: 2,
            kind: GossipEventKind::Fold(sample_delta(0, 1)),
        }];
        assert_eq!(prefix_rebuilds(10, &fold, &policy), 3);
        // Pure-incremental mode never rebuilds.
        let none = UpdatePolicy {
            full_em_every: None,
            ..policy
        };
        assert_eq!(prefix_rebuilds(10, &[], &none), 0);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut snapshot = sample_snapshot();
        snapshot.version = 99;
        let err = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(matches!(
            ServiceSnapshot::from_json("{not json"),
            Err(SnapshotError::Json(_))
        ));
        assert!(matches!(
            ServiceSnapshot::from_json("{\"version\": 1}"),
            Err(SnapshotError::Schema(_))
        ));
        let bad_bits = sample_snapshot().to_json().replace("101", "10x");
        assert!(ServiceSnapshot::from_json(&bad_bits).is_err());
    }
}
