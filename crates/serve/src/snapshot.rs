//! Campaign persistence: serialise each shard's answer log + the service
//! configuration to JSON, and rebuild a service deterministically by
//! replaying the log through [`crowd_core::Framework::submit`].
//!
//! The snapshot does **not** persist model parameters. Replaying a shard's
//! answers in their recorded arrival order reproduces the exact submit
//! sequence the live shard processed — including every incremental-EM
//! absorption and every delayed full-EM trigger — so the restored model
//! state is bit-identical to the snapshotted one. What must be stored is
//! only what replay cannot recompute: the answers themselves, their order,
//! and the budget already charged for assignments whose answers had not
//! arrived yet.

use crowd_core::{
    CoreError, DistanceFunctionSet, EmConfig, InitStrategy, LabelBits, TaskId, TaskSet,
    UpdatePolicy, WorkerId, WorkerPool,
};

use crate::json::{Json, JsonError};
use crate::service::{LabellingService, ServeConfig};

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Errors from snapshot encoding, decoding or restore.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is valid JSON but not a valid snapshot.
    Schema(String),
    /// The snapshot does not match the task set / worker pool / shard map
    /// it is being restored against.
    Mismatch(String),
    /// A recorded answer was rejected during replay (corrupt log).
    Replay {
        /// The shard whose replay failed.
        shard: usize,
        /// The rejection.
        error: CoreError,
    },
}

impl From<JsonError> for SnapshotError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Json(e) => write!(f, "{e}"),
            Self::Schema(msg) => write!(f, "snapshot schema error: {msg}"),
            Self::Mismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
            Self::Replay { shard, error } => {
                write!(f, "replay failed on shard {shard}: {error}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One recorded answer, in the global task id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SnapshotAnswer {
    /// The answering worker.
    pub worker: WorkerId,
    /// The answered task (global id).
    pub task: TaskId,
    /// The verdict bits.
    pub bits: LabelBits,
}

/// One shard's persisted state.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShardSnapshot {
    /// Shard id.
    pub shard: usize,
    /// The shard's budget slice.
    pub budget: usize,
    /// Budget charged at snapshot time (may exceed the answer count:
    /// assignments can be issued and not yet answered).
    pub budget_used: usize,
    /// The shard's answers in arrival order.
    pub answers: Vec<SnapshotAnswer>,
}

/// A whole-service snapshot.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Task count of the campaign the snapshot belongs to.
    pub n_tasks: usize,
    /// Worker count of the campaign the snapshot belongs to.
    pub n_workers: usize,
    /// The service configuration (shard count already clamped).
    pub config: ServeConfig,
    /// Per-shard state, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
}

fn bits_to_string(bits: LabelBits) -> String {
    bits.iter().map(|b| if b { '1' } else { '0' }).collect()
}

fn bits_from_string(s: &str) -> Result<LabelBits, SnapshotError> {
    if s.len() > LabelBits::MAX_LABELS || s.chars().any(|c| c != '0' && c != '1') {
        return Err(SnapshotError::Schema(format!("invalid bit string '{s}'")));
    }
    let values: Vec<bool> = s.chars().map(|c| c == '1').collect();
    Ok(LabelBits::from_slice(&values))
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, SnapshotError> {
    obj.get(key)
        .ok_or_else(|| SnapshotError::Schema(format!("missing field '{key}'")))
}

fn usize_field(obj: &Json, key: &str) -> Result<usize, SnapshotError> {
    field(obj, key)?.as_usize().ok_or_else(|| {
        SnapshotError::Schema(format!("field '{key}' is not a non-negative integer"))
    })
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, SnapshotError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| SnapshotError::Schema(format!("field '{key}' is not a number")))
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, SnapshotError> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| SnapshotError::Schema(format!("field '{key}' is not a string")))
}

fn em_to_json(em: &EmConfig) -> Json {
    Json::Obj(vec![
        ("alpha".into(), Json::Num(em.alpha)),
        ("tolerance".into(), Json::Num(em.tolerance)),
        ("max_iterations".into(), Json::Num(em.max_iterations as f64)),
        (
            "init".into(),
            Json::Str(
                match em.init {
                    InitStrategy::Uniform => "uniform",
                    InitStrategy::VoteShare => "vote_share",
                }
                .into(),
            ),
        ),
        (
            "lambdas".into(),
            Json::Arr(
                em.fset
                    .functions()
                    .iter()
                    .map(|f| Json::Num(f.lambda))
                    .collect(),
            ),
        ),
    ])
}

fn em_from_json(value: &Json) -> Result<EmConfig, SnapshotError> {
    let init = match str_field(value, "init")? {
        "uniform" => InitStrategy::Uniform,
        "vote_share" => InitStrategy::VoteShare,
        other => {
            return Err(SnapshotError::Schema(format!(
                "unknown init strategy '{other}'"
            )))
        }
    };
    let lambdas: Vec<f64> = field(value, "lambdas")?
        .as_arr()
        .ok_or_else(|| SnapshotError::Schema("'lambdas' is not an array".into()))?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|l| l.is_finite() && *l >= 0.0)
                .ok_or_else(|| SnapshotError::Schema("invalid lambda".into()))
        })
        .collect::<Result<_, _>>()?;
    if lambdas.is_empty() {
        return Err(SnapshotError::Schema("'lambdas' must be non-empty".into()));
    }
    Ok(EmConfig {
        alpha: f64_field(value, "alpha")?,
        tolerance: f64_field(value, "tolerance")?,
        max_iterations: usize_field(value, "max_iterations")?,
        init,
        fset: DistanceFunctionSet::new(&lambdas),
    })
}

fn config_to_json(config: &ServeConfig) -> Json {
    Json::Obj(vec![
        ("n_shards".into(), Json::Num(config.n_shards as f64)),
        (
            "ingest_threads".into(),
            Json::Num(config.ingest_threads as f64),
        ),
        (
            "queue_capacity".into(),
            Json::Num(config.queue_capacity as f64),
        ),
        ("drain_batch".into(), Json::Num(config.drain_batch as f64)),
        ("budget".into(), Json::Num(config.budget as f64)),
        ("h".into(), Json::Num(config.h as f64)),
        ("em".into(), em_to_json(&config.em)),
        (
            "full_em_every".into(),
            config
                .policy
                .full_em_every
                .map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
        (
            "full_sweep_every".into(),
            Json::Num(config.policy.full_sweep_every as f64),
        ),
    ])
}

fn config_from_json(value: &Json) -> Result<ServeConfig, SnapshotError> {
    let full_em_every = match field(value, "full_em_every")? {
        Json::Null => None,
        v => Some(v.as_usize().ok_or_else(|| {
            SnapshotError::Schema("'full_em_every' is not an integer or null".into())
        })?),
    };
    // Absent in pre-dirty-set snapshots, which were recorded under
    // always-full-sweep behaviour — restore them exactly as such.
    let full_sweep_every = match value.get("full_sweep_every") {
        None => 1,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| SnapshotError::Schema("'full_sweep_every' is not an integer".into()))?,
    };
    Ok(ServeConfig {
        n_shards: usize_field(value, "n_shards")?,
        ingest_threads: usize_field(value, "ingest_threads")?,
        queue_capacity: usize_field(value, "queue_capacity")?,
        drain_batch: usize_field(value, "drain_batch")?,
        budget: usize_field(value, "budget")?,
        h: usize_field(value, "h")?,
        em: em_from_json(field(value, "em")?)?,
        policy: UpdatePolicy {
            full_em_every,
            full_sweep_every,
        },
    })
}

impl ServiceSnapshot {
    /// Renders the snapshot as a deterministic JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("shard".into(), Json::Num(s.shard as f64)),
                    ("budget".into(), Json::Num(s.budget as f64)),
                    ("budget_used".into(), Json::Num(s.budget_used as f64)),
                    (
                        "answers".into(),
                        Json::Arr(
                            s.answers
                                .iter()
                                .map(|a| {
                                    Json::Obj(vec![
                                        ("w".into(), Json::Num(f64::from(a.worker.0))),
                                        ("t".into(), Json::Num(f64::from(a.task.0))),
                                        ("bits".into(), Json::Str(bits_to_string(a.bits))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::Num(self.version as f64)),
            ("n_tasks".into(), Json::Num(self.n_tasks as f64)),
            ("n_workers".into(), Json::Num(self.n_workers as f64)),
            ("config".into(), config_to_json(&self.config)),
            ("shards".into(), Json::Arr(shards)),
        ])
        .render()
    }

    /// Parses a snapshot document.
    ///
    /// # Errors
    /// [`SnapshotError::Json`] on malformed JSON, [`SnapshotError::Schema`]
    /// on a structurally invalid or version-incompatible document.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let doc = Json::parse(text)?;
        let version = usize_field(&doc, "version")? as u64;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Schema(format!(
                "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
            )));
        }
        let shards_json = field(&doc, "shards")?
            .as_arr()
            .ok_or_else(|| SnapshotError::Schema("'shards' is not an array".into()))?;
        let mut shards = Vec::with_capacity(shards_json.len());
        for shard_json in shards_json {
            let answers_json = field(shard_json, "answers")?
                .as_arr()
                .ok_or_else(|| SnapshotError::Schema("'answers' is not an array".into()))?;
            let mut answers = Vec::with_capacity(answers_json.len());
            for a in answers_json {
                answers.push(SnapshotAnswer {
                    worker: WorkerId(
                        u32::try_from(usize_field(a, "w")?)
                            .map_err(|_| SnapshotError::Schema("worker id out of range".into()))?,
                    ),
                    task: TaskId(
                        u32::try_from(usize_field(a, "t")?)
                            .map_err(|_| SnapshotError::Schema("task id out of range".into()))?,
                    ),
                    bits: bits_from_string(str_field(a, "bits")?)?,
                });
            }
            shards.push(ShardSnapshot {
                shard: usize_field(shard_json, "shard")?,
                budget: usize_field(shard_json, "budget")?,
                budget_used: usize_field(shard_json, "budget_used")?,
                answers,
            });
        }
        Ok(Self {
            version,
            n_tasks: usize_field(&doc, "n_tasks")?,
            n_workers: usize_field(&doc, "n_workers")?,
            config: config_from_json(field(&doc, "config")?)?,
            shards,
        })
    }
}

impl LabellingService {
    /// Captures the campaign state. Flushes the ingestion queue first
    /// (producers must have stopped, as for
    /// [`LabellingService::quiesce`]).
    #[must_use]
    pub fn snapshot(&self) -> ServiceSnapshot {
        self.quiesce();
        let shards = self
            .inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, lock)| {
                let shard = lock.read();
                ShardSnapshot {
                    shard: i,
                    budget: shard.framework().config().budget,
                    budget_used: shard.framework().budget_used(),
                    answers: shard
                        .answers_global()
                        .map(|(worker, task, bits)| SnapshotAnswer { worker, task, bits })
                        .collect(),
                }
            })
            .collect();
        ServiceSnapshot {
            version: SNAPSHOT_VERSION,
            n_tasks: self.inner.map.n_tasks(),
            n_workers: self.inner.n_workers(),
            config: self.config.clone(),
            shards,
        }
    }

    /// Rebuilds a service from a snapshot over the *same* task set and
    /// worker pool the snapshot was taken from, replaying every shard's
    /// answer log in its recorded order. The restored model state is
    /// bit-identical to the snapshotted one (see the module docs), and the
    /// service is live — producers can resume where the campaign left off.
    ///
    /// # Errors
    /// [`SnapshotError::Mismatch`] when `tasks` / `workers` do not match
    /// the snapshot's shapes (or the derived shard map / budget slices
    /// disagree), [`SnapshotError::Replay`] when a recorded answer is
    /// rejected.
    pub fn restore(
        tasks: &TaskSet,
        workers: &WorkerPool,
        snapshot: &ServiceSnapshot,
    ) -> Result<Self, SnapshotError> {
        if snapshot.n_tasks != tasks.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot covers {} tasks, task set has {}",
                snapshot.n_tasks,
                tasks.len()
            )));
        }
        if snapshot.n_workers != workers.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot covers {} workers, pool has {}",
                snapshot.n_workers,
                workers.len()
            )));
        }
        let service = Self::start(tasks, workers, snapshot.config.clone());
        if service.n_shards() != snapshot.shards.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} shards, rebuilt map has {}",
                snapshot.shards.len(),
                service.n_shards()
            )));
        }
        for (i, shard_snapshot) in snapshot.shards.iter().enumerate() {
            if shard_snapshot.shard != i {
                return Err(SnapshotError::Mismatch(format!(
                    "shard entry {i} is labelled {}",
                    shard_snapshot.shard
                )));
            }
            let mut shard = service.inner.shards[i].write();
            if shard.framework().config().budget != shard_snapshot.budget {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i} slice is {}, snapshot says {}",
                    shard.framework().config().budget,
                    shard_snapshot.budget
                )));
            }
            for answer in &shard_snapshot.answers {
                let triggered = shard
                    .submit_global(answer.worker, answer.task, answer.bits)
                    .map_err(|error| SnapshotError::Replay { shard: i, error })?;
                service.inner.metrics[i].record_submit(triggered);
            }
            let charged = shard.framework_mut().charge(shard_snapshot.budget_used);
            if charged != shard_snapshot.budget_used {
                return Err(SnapshotError::Mismatch(format!(
                    "shard {i} cannot re-charge {} of budget {}",
                    shard_snapshot.budget_used, shard_snapshot.budget
                )));
            }
            service.inner.metrics[i].set_budget_remaining(shard.framework().budget_remaining());
        }
        Ok(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ServiceSnapshot {
        ServiceSnapshot {
            version: SNAPSHOT_VERSION,
            n_tasks: 20,
            n_workers: 7,
            config: ServeConfig {
                n_shards: 3,
                budget: 123,
                ..ServeConfig::default()
            },
            shards: vec![
                ShardSnapshot {
                    shard: 0,
                    budget: 60,
                    budget_used: 12,
                    answers: vec![
                        SnapshotAnswer {
                            worker: WorkerId(3),
                            task: TaskId(11),
                            bits: LabelBits::from_slice(&[true, false, true]),
                        },
                        SnapshotAnswer {
                            worker: WorkerId(0),
                            task: TaskId(4),
                            bits: LabelBits::from_slice(&[false, false, false]),
                        },
                    ],
                },
                ShardSnapshot {
                    shard: 1,
                    budget: 63,
                    budget_used: 0,
                    answers: vec![],
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snapshot = sample_snapshot();
        let text = snapshot.to_json();
        let back = ServiceSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snapshot);
        // Determinism: rendering twice gives identical bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn em_config_floats_survive_round_trip() {
        let mut snapshot = sample_snapshot();
        snapshot.config.em.alpha = 0.1 + 0.2; // a float with an ugly tail
        snapshot.config.em.tolerance = 1e-9;
        snapshot.config.policy = UpdatePolicy {
            full_em_every: None,
            full_sweep_every: 5,
        };
        let back = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(
            back.config.em.alpha.to_bits(),
            snapshot.config.em.alpha.to_bits()
        );
        assert_eq!(back.config.policy.full_em_every, None);
        assert_eq!(back.config.policy.full_sweep_every, 5);
        assert_eq!(back.config.em.fset, snapshot.config.em.fset);
    }

    #[test]
    fn missing_full_sweep_every_restores_as_exact() {
        // Pre-dirty-set snapshots carry no 'full_sweep_every'; they must
        // restore to always-full-sweep behaviour, matching how they were
        // recorded.
        let snapshot = sample_snapshot();
        let text = snapshot.to_json();
        let stripped = text.replace(",\"full_sweep_every\":8", "");
        assert_ne!(stripped, text, "expected the field to be present");
        let back = ServiceSnapshot::from_json(&stripped).unwrap();
        assert_eq!(back.config.policy.full_sweep_every, 1);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut snapshot = sample_snapshot();
        snapshot.version = 99;
        let err = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(matches!(
            ServiceSnapshot::from_json("{not json"),
            Err(SnapshotError::Json(_))
        ));
        assert!(matches!(
            ServiceSnapshot::from_json("{\"version\": 1}"),
            Err(SnapshotError::Schema(_))
        ));
        let bad_bits = sample_snapshot().to_json().replace("101", "10x");
        assert!(ServiceSnapshot::from_json(&bad_bits).is_err());
    }
}
