//! The on-disk answer tier: an append-only spill log per shard.
//!
//! When a campaign runs under
//! [`RetentionPolicy::PruneCheckpointed`](crate::RetentionPolicy) with a
//! spill directory configured, every answer payload a prune truncates from
//! a shard's in-memory prefix is appended to `{dir}/shard-{id}.spill`
//! before being dropped. The spill file is a cold archive — nothing on the
//! serving path ever reads it; it exists so operators can audit or export
//! the full answer history of a bounded-memory campaign (see
//! `docs/SNAPSHOT_FORMAT.md` for the layout and its relationship to the
//! pruned snapshot fields).
//!
//! # File layout
//!
//! ```text
//! magic:   "CRWDSPL1" (8 bytes)
//! records: [u32 LE worker id][u32 LE global task id]
//!          [u16 LE n_bits][ceil(n_bits / 8) bytes, LSB-first]   (repeated)
//! ```
//!
//! Records are fixed-order and self-delimiting, so a reader can stream the
//! file front to back without an index; a torn final record (crash mid
//! append) is reported as [`SpillError::TornRecord`] after every complete
//! record before it has been yielded.

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crowd_core::{LabelBits, TaskId, WorkerId};

/// Leading bytes of every spill file (format name + version).
pub const SPILL_MAGIC: &[u8; 8] = b"CRWDSPL1";

/// Errors from reading a spill file back.
#[derive(Debug)]
pub enum SpillError {
    /// The underlying read failed.
    Io(io::Error),
    /// The file does not start with [`SPILL_MAGIC`].
    BadMagic,
    /// The file ends inside a record (torn final append).
    TornRecord,
    /// A record's label width exceeds [`LabelBits::MAX_LABELS`].
    BadWidth(u16),
}

impl From<io::Error> for SpillError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "spill read failed: {e}"),
            Self::BadMagic => write!(f, "not a spill file (bad magic)"),
            Self::TornRecord => write!(f, "spill file ends inside a record (torn append)"),
            Self::BadWidth(w) => write!(f, "spill record claims {w} label bits (corrupt)"),
        }
    }
}

impl std::error::Error for SpillError {}

/// Appends pruned answer payloads to one shard's spill file.
pub struct SpillWriter {
    out: BufWriter<File>,
    path: PathBuf,
    records: u64,
}

impl std::fmt::Debug for SpillWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillWriter")
            .field("path", &self.path)
            .field("records", &self.records)
            .finish()
    }
}

/// The spill file path for one shard under `dir`.
#[must_use]
pub fn spill_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.spill"))
}

impl SpillWriter {
    /// Opens (creating directories as needed) the spill file for `shard`
    /// under `dir` in append mode, writing the magic header when the file
    /// is new or empty. An existing file is extended — a restored campaign
    /// keeps appending to the archive its predecessor started.
    ///
    /// # Errors
    /// Any filesystem error from creating the directory or opening the
    /// file.
    pub fn open(dir: &Path, shard: usize) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = spill_path(dir, shard);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut out = BufWriter::new(file);
        if out.get_ref().metadata()?.len() == 0 {
            out.write_all(SPILL_MAGIC)?;
        }
        Ok(Self {
            out,
            path,
            records: 0,
        })
    }

    /// Appends one pruned answer (global task id) and returns when it is
    /// buffered; call [`SpillWriter::flush`] after a batch.
    ///
    /// # Errors
    /// Any write error from the underlying file.
    pub fn append(&mut self, worker: WorkerId, task: TaskId, bits: LabelBits) -> io::Result<()> {
        let values: Vec<bool> = bits.iter().collect();
        debug_assert!(values.len() <= usize::from(u16::MAX));
        self.out.write_all(&worker.0.to_le_bytes())?;
        self.out.write_all(&task.0.to_le_bytes())?;
        self.out.write_all(&(values.len() as u16).to_le_bytes())?;
        let mut packed = vec![0u8; values.len().div_ceil(8)];
        for (i, &bit) in values.iter().enumerate() {
            if bit {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        self.out.write_all(&packed)?;
        self.records += 1;
        Ok(())
    }

    /// Flushes buffered records to the file.
    ///
    /// # Errors
    /// Any flush error from the underlying file.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Records appended through this writer (not counting any the file
    /// already held when it was opened).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The file this writer appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Streams a spill file's records front to back.
pub struct SpillReader {
    input: BufReader<File>,
    done: bool,
}

impl SpillReader {
    /// Opens a spill file and validates its magic header.
    ///
    /// # Errors
    /// [`SpillError::Io`] when the file cannot be read,
    /// [`SpillError::BadMagic`] when it is not a spill file.
    pub fn open(path: &Path) -> Result<Self, SpillError> {
        let mut input = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        input
            .read_exact(&mut magic)
            .map_err(|_| SpillError::BadMagic)?;
        if &magic != SPILL_MAGIC {
            return Err(SpillError::BadMagic);
        }
        Ok(Self { input, done: false })
    }

    fn read_record(&mut self) -> Result<Option<(WorkerId, TaskId, LabelBits)>, SpillError> {
        let mut worker = [0u8; 4];
        // Clean EOF before a record is the normal end of the file.
        match self.input.read_exact(&mut worker) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let mut task = [0u8; 4];
        let mut width = [0u8; 2];
        self.input
            .read_exact(&mut task)
            .and_then(|()| self.input.read_exact(&mut width))
            .map_err(|_| SpillError::TornRecord)?;
        let n_bits = u16::from_le_bytes(width);
        if usize::from(n_bits) > LabelBits::MAX_LABELS {
            return Err(SpillError::BadWidth(n_bits));
        }
        let mut packed = vec![0u8; usize::from(n_bits).div_ceil(8)];
        self.input
            .read_exact(&mut packed)
            .map_err(|_| SpillError::TornRecord)?;
        let values: Vec<bool> = (0..usize::from(n_bits))
            .map(|i| packed[i / 8] & (1 << (i % 8)) != 0)
            .collect();
        Ok(Some((
            WorkerId(u32::from_le_bytes(worker)),
            TaskId(u32::from_le_bytes(task)),
            LabelBits::from_slice(&values),
        )))
    }
}

impl Iterator for SpillReader {
    type Item = Result<(WorkerId, TaskId, LabelBits), SpillError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crowd-spill-{tag}-{}", std::process::id()));
        // A clean slate: the writer must re-create the directory.
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_round_trips_records_and_survives_reopen() {
        let dir = temp_dir("roundtrip");
        let mut writer = SpillWriter::open(&dir, 3).unwrap();
        writer
            .append(
                WorkerId(7),
                TaskId(11),
                LabelBits::from_slice(&[true, false, true]),
            )
            .unwrap();
        writer
            .append(WorkerId(2), TaskId(0), LabelBits::from_slice(&[false]))
            .unwrap();
        writer.flush().unwrap();
        assert_eq!(writer.records(), 2);
        drop(writer);

        // Reopen appends without rewriting the header.
        let mut writer = SpillWriter::open(&dir, 3).unwrap();
        writer
            .append(WorkerId(9), TaskId(42), LabelBits::from_slice(&[true; 9]))
            .unwrap();
        writer.flush().unwrap();

        let records: Vec<_> = SpillReader::open(&spill_path(&dir, 3))
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].0, WorkerId(7));
        assert_eq!(records[0].1, TaskId(11));
        assert_eq!(records[0].2, LabelBits::from_slice(&[true, false, true]));
        assert_eq!(records[2].2, LabelBits::from_slice(&[true; 9]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_and_bad_magic_are_reported() {
        let dir = temp_dir("torn");
        let mut writer = SpillWriter::open(&dir, 0).unwrap();
        writer
            .append(WorkerId(1), TaskId(2), LabelBits::from_slice(&[true, true]))
            .unwrap();
        writer.flush().unwrap();
        drop(writer);
        let path = spill_path(&dir, 0);

        // Truncate into the middle of a second record.
        let bytes = std::fs::read(&path).unwrap();
        let mut torn = bytes.clone();
        torn.extend_from_slice(&5u32.to_le_bytes());
        torn.extend_from_slice(&[0u8; 2]); // half a task id
        std::fs::write(&path, &torn).unwrap();
        let results: Vec<_> = SpillReader::open(&path).unwrap().collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok(), "the complete record still reads");
        assert!(matches!(results[1], Err(SpillError::TornRecord)));

        std::fs::write(&path, b"NOTSPILLfile").unwrap();
        assert!(matches!(
            SpillReader::open(&path),
            Err(SpillError::BadMagic)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
