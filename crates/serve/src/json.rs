//! A minimal JSON value with a writer and a recursive-descent parser.
//!
//! The build container has no registry access, so `serde_json` is not
//! available; snapshots need only this small, dependency-free subset. The
//! serde derives throughout the workspace stay behind the (currently
//! inert) `serde` feature so a crates.io swap can replace this module
//! wholesale.
//!
//! Numbers are stored as `f64` — integers up to 2⁵³ round-trip exactly,
//! which covers every count the snapshot format stores, and floats are
//! rendered with Rust's shortest-round-trip formatting so `alpha = 0.1`
//! survives a write/parse cycle bit-for-bit. Object key order is preserved
//! (insertion order), keeping snapshot output deterministic.

use std::fmt::Write as _;

/// The largest integer `f64` represents exactly (2⁵³). Integers beyond it
/// are rejected on parse and panic on [`Json::uint`] emit: a count or
/// gossip version silently rounded to a neighbouring value is corruption,
/// not precision loss.
pub const MAX_EXACT_INT: u64 = 1 << 53;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Renders the value as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(n) => render_number(*n, out),
            Self::Str(s) => render_string(s, out),
            Self::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Self::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, requiring the whole input to be consumed.
    ///
    /// # Errors
    /// Fails on malformed input or trailing non-whitespace.
    pub fn parse(src: &str) -> Result<Self, JsonError> {
        let mut p = Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Builds an array node from numbers — the snapshot format stores
    /// statistic vectors (f64 sums, integer counts) this way, relying on
    /// the shortest-round-trip rendering for exact restore.
    #[must_use]
    pub fn num_array(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }

    /// Builds a number node from an unsigned integer, **panicking** if the
    /// value cannot round-trip through `f64` exactly (above 2⁵³). Every
    /// count, position and gossip version the snapshot format emits must
    /// go through this guard: silently rounding a version stamp would
    /// corrupt the `(source, version)` uniqueness invariant instead of
    /// failing loudly at the writer.
    #[must_use]
    pub fn uint(n: u64) -> Json {
        assert!(
            n <= MAX_EXACT_INT,
            "integer {n} exceeds 2^53 and cannot be represented exactly in JSON"
        );
        #[allow(clippy::cast_precision_loss)] // guarded above
        Json::Num(n as f64)
    }

    /// The number as an unsigned integer, if it is one exactly (integral,
    /// non-negative and at most 2⁵³). The parser already rejects integer
    /// *literals* beyond 2⁵³, so this only filters fractional or negative
    /// values.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT_INT as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value under `key`, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

#[allow(clippy::cast_possible_truncation)]
fn render_number(n: f64, out: &mut String) {
    assert!(n.is_finite(), "JSON cannot represent non-finite numbers");
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest representation that parses back to the
        // same f64 — exactly what a round-tripping snapshot needs.
        let _ = write!(out, "{n:?}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    /// The original input — kept alongside the byte view so string
    /// parsing can decode one `char` in O(1) instead of re-validating the
    /// whole remaining input per character (which made parsing quadratic
    /// on megabyte-sized snapshot documents).
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not produced by our writer;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path — the overwhelmingly common case in
                    // snapshot documents (keys, digits, bit strings).
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 character. The input is
                    // a &str and we only ever advance by whole characters,
                    // so `pos` is a char boundary and decoding the next
                    // char is O(1).
                    let c = self.src[self.pos..]
                        .chars()
                        .next()
                        .expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
            debug_assert!(self.pos > start);
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {}
                b'.' | b'e' | b'E' | b'+' | b'-' => integral = false,
                _ => break,
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        // Integer literals are counts, ids, positions and gossip versions;
        // `f64` holds them exactly only up to 2⁵³. Beyond that the parse
        // would silently round to a neighbouring integer — a different
        // version stamp, a different log position — so reject instead.
        // Fractional and exponent forms are genuine floats (model sums)
        // and keep the usual nearest-f64 semantics.
        if integral && self.pos > digits_start {
            let magnitude = std::str::from_utf8(&self.bytes[digits_start..self.pos])
                .expect("ASCII slice")
                .parse::<u128>()
                .ok()
                .filter(|&m| m <= u128::from(MAX_EXACT_INT));
            if magnitude.is_none() {
                return Err(self.err(format!(
                    "integer '{text}' exceeds 2^53 and cannot be represented exactly"
                )));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for n in [0.1, 0.005, 1.0 / 3.0, 1e-12, 123_456_789.123_456_78] {
            let rendered = Json::Num(n).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(1000.0).render(), "1000");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(0.0).render(), "0");
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::Obj(vec![
            ("version".into(), Json::Num(1.0)),
            (
                "shards".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("id".into(), Json::Num(0.0)),
                    ("bits".into(), Json::Str("1010".into())),
                    ("empty".into(), Json::Arr(vec![])),
                    ("nothing".into(), Json::Null),
                ])]),
            ),
            ("ok".into(), Json::Bool(true)),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" back\\slash \u{1}";
        let rendered = Json::Str(s.into()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(
            Json::parse("\"\\u00e9\\u0041\"").unwrap().as_str().unwrap(),
            "éA"
        );
    }

    #[test]
    fn whitespace_everywhere_is_fine() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(matches!(v.get("b"), Some(Json::Null)));
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for src in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"\\q\"", "nan"] {
            assert!(Json::parse(src).is_err(), "{src:?} should fail");
        }
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.pos, 4);
    }

    #[test]
    fn integer_exactness_boundary_round_trips_or_rejects() {
        // 2^53 is the last exactly representable integer: it must emit,
        // parse and round-trip; 2^53 + 1 must be rejected on parse and
        // panic on emit rather than silently round to 2^53.
        let max = MAX_EXACT_INT; // 9007199254740992
        let rendered = Json::uint(max).render();
        assert_eq!(rendered, "9007199254740992");
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.as_u64(), Some(max));
        assert_eq!(back.as_usize(), Some(max as usize));

        let above = "9007199254740993";
        let err = Json::parse(above).unwrap_err();
        assert!(err.msg.contains("2^53"), "{err}");
        assert!(Json::parse("-9007199254740993").is_err());
        // Nested occurrences are caught too, not just top-level scalars.
        assert!(Json::parse("{\"version\":9007199254740993}").is_err());

        // Just below the boundary everything is exact.
        let below = max - 1;
        let back = Json::parse(&Json::uint(below).render()).unwrap();
        assert_eq!(back.as_u64(), Some(below));

        // Fractional and exponent forms are floats, not counts — they keep
        // nearest-f64 parsing even when huge.
        assert!(Json::parse("9007199254740993.0").is_ok());
        assert!(Json::parse("9.007199254740993e15").is_ok());
    }

    #[test]
    #[should_panic(expected = "exceeds 2^53")]
    fn uint_emit_guard_panics_beyond_exact_range() {
        let _ = Json::uint(MAX_EXACT_INT + 1);
    }

    #[test]
    fn accessors_reject_wrong_shapes() {
        let v = Json::parse("{\"n\": 1.5, \"i\": 7}").unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), None);
        assert_eq!(v.get("i").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_f64(), None);
    }
}
