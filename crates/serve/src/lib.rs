//! `crowd_serve` — a sharded, concurrent labelling service over the POI
//! framework.
//!
//! The paper's framework (Figure 1) is an online loop: workers request
//! HITs, submit answers, and the model updates incrementally. The core
//! [`crowd_core::Framework`] realises one such loop behind `&mut self`; this
//! crate turns it into a *service* that survives concurrent traffic:
//!
//! * **Geographic sharding** ([`ShardMap`], [`Shard`]) — tasks are
//!   partitioned by `crowd_geo`'s uniform grid into shards, each owning a
//!   private `Framework` over its region with a proportional slice of the
//!   campaign budget. Shards share no mutable state.
//! * **Elastic serving** — the shard map is *versioned and mutable*:
//!   [`LabellingService::split_hot`] / [`LabellingService::merge_cold`]
//!   (or the explicit [`LabellingService::reassign_cell`]) move one grid
//!   cell between shards through a freeze → drain → transfer → publish
//!   handoff that rebuilds the receiving shards by pure replay of their
//!   merged, sequence-ordered event streams — bit-identical to a service
//!   that never split. Routing is epoch-stamped, so commands already
//!   queued under an older map version drain correctly (re-routed at
//!   apply time, counted in [`ServiceMetrics::rerouted`]). Workers can
//!   register mid-campaign ([`LabellingService::register_worker`], or
//!   `POST /workers/register` over HTTP) as a positioned event replayed
//!   on restore, and [`LabellingService::rebalance_budget`] re-slices
//!   unspent budget toward observed per-shard spend rates.
//! * **Campaign multiplexing** ([`CampaignPool`]) — N concurrent
//!   campaigns share one drain-thread pool, each with its own shards,
//!   budget, metrics and snapshots; the HTTP front-end routes by
//!   `?campaign=<id>` and exposes create/list/close admin routes.
//! * **Striped locking + ingestion pipeline** ([`LabellingService`],
//!   [`ServiceHandle`]) — producers push `SubmitAnswer` / `RequestTasks`
//!   commands into a bounded MPMC channel (backpressure when the service
//!   falls behind); N drain threads apply them in batches under per-shard
//!   `parking_lot::RwLock`s. Requests route to the workers' home region
//!   first, then roam to the shard with the most remaining budget.
//! * **Worker-quality gossip** ([`ServeConfig::gossip_every`],
//!   [`GossipEvent`]) — every N applied answers a shard publishes its
//!   worker-side sufficient statistics to a shared exchange and folds its
//!   peers' latest deltas (a commutative, associative, idempotent join —
//!   see [`crowd_core::model::gossip`]), so every shard's `P(i_w)` / `P(d_w)`
//!   estimates converge on the pooled values a single unsharded framework
//!   would compute.
//! * **HTTP front-end** ([`HttpServer`], [`http`]) — a dependency-free
//!   HTTP/1.1 server (accept pool + thread-per-connection keep-alive over
//!   [`std::net::TcpListener`]) exposing the labelling loop as JSON routes
//!   (`POST /tasks/request`, fire-and-forget `POST /labels`, progress /
//!   stats / metrics reads, and admin snapshot/restore) — spec in
//!   `docs/HTTP_API.md`. Safe interleaving of requests with queued
//!   answers rests on [`crowd_core::ReservationSet`]: issued pairs stay
//!   invisible to the assigners until their answers are applied.
//! * **Metrics** ([`ServiceMetrics`]) — lock-free per-shard counters:
//!   accepted submits, served requests, issued pairs, delayed full-EM
//!   rebuilds, rejections, gossip rounds/folds/lag, queue depth (with a
//!   reset-on-read high-water mark), submits/sec.
//! * **Observability** ([`ObsHub`], backed by the `crowd_obs` crate) —
//!   every service owns lock-free latency histograms (queue wait,
//!   per-answer apply, EM rebuild split dirty vs full sweep, assignment,
//!   gossip round, snapshot/restore), a span-id trace ring following one
//!   labelling request across HTTP parse → enqueue → drain → EM →
//!   gossip fold (drained by `GET /debug/trace`), and a self-sampler
//!   thread recording queue-depth / event-log-length gauges.
//!   `GET /metrics?format=prometheus` renders it all as Prometheus text
//!   (spec in `docs/OBSERVABILITY.md`). Deliberately process-local:
//!   snapshots never serialize observability state.
//! * **Persistence** ([`ServiceSnapshot`], format v4 — spec in
//!   `docs/SNAPSHOT_FORMAT.md`) — each shard's answer log, its recorded
//!   out-of-stream events (folds, sweeps, registrations), its latest
//!   full-sweep parameter checkpoint ([`ModelCheckpoint`]), the service
//!   configuration, the in-flight exchange and — once elasticity has
//!   moved them — the versioned shard map and canonical sequence
//!   numbers serialise to JSON with every gossip payload stored once in
//!   a `(source, version)`-deduplicated table.
//!   [`LabellingService::restore`] *hardens from parameters* — bulk-load
//!   the pre-checkpoint log, re-seed the converged parameters, replay
//!   only the suffix — while [`LabellingService::restore_replay`] keeps
//!   the full event-stream replay as the verification path and
//!   [`LabellingService::restore_verified`] proves the two bit-identical.
//!   [`Shard::snapshot_delta`] / [`ServiceSnapshot::compact`] add
//!   incremental snapshots: ship only what a base missed, then fold the
//!   chain back into a base byte-identical to a one-shot snapshot
//!   (re-base after a handoff — deltas are not defined over elastic
//!   documents). v1–v3 documents still parse and restore exactly as
//!   recorded.
//!
//! # Quick start
//!
//! ```
//! use crowd_core::prelude::*;
//! use crowd_geo::Point;
//! use crowd_serve::{LabellingService, ServeConfig};
//!
//! let tasks = TaskSet::new(
//!     (0..16)
//!         .map(|i| synthetic_task(format!("poi{i}"), Point::new(f64::from(i % 4), f64::from(i / 4)), 3))
//!         .collect(),
//! );
//! let workers = WorkerPool::from_workers(vec![
//!     Worker::at("alice", Point::new(0.0, 0.0)),
//!     Worker::at("bob", Point::new(3.0, 3.0)),
//! ])
//! .unwrap();
//!
//! let service = LabellingService::start(
//!     &tasks,
//!     &workers,
//!     ServeConfig { n_shards: 2, budget: 40, ..ServeConfig::default() },
//! );
//! let handle = service.handle();
//!
//! // A worker requests tasks and answers them (possibly from another thread).
//! let assignment = handle.request_tasks(&[WorkerId(0)]).unwrap();
//! for (w, t) in assignment.pairs() {
//!     handle.submit(w, t, LabelBits::from_slice(&[true, false, true])).unwrap();
//! }
//!
//! service.quiesce();
//! assert_eq!(service.answers_total(), assignment.total());
//! let snapshot = service.snapshot();
//! let restored = LabellingService::restore(&tasks, &workers, &snapshot).unwrap();
//! assert_eq!(restored.decisions(), service.decisions());
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod metrics;
pub mod obs;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod spill;

pub use http::{HttpConfig, HttpServer};
pub use json::{Json, JsonError};
pub use metrics::{ServiceMetrics, ShardMetrics, ShardMetricsSnapshot};
pub use obs::{CoreRecorder, ObsHub};
pub use service::{
    CampaignPool, HandoffReport, LabellingService, RetentionPolicy, ServeConfig, ServeError,
    ServiceHandle,
};
pub use shard::{GossipEvent, GossipEventKind, ModelCheckpoint, Shard, ShardMap};
pub use snapshot::{
    ServiceSnapshot, ServiceSnapshotDelta, ShardDelta, ShardSnapshot, SnapshotAnswer,
    SnapshotCursor, SnapshotError, SNAPSHOT_VERSION,
};
pub use spill::{spill_path, SpillError, SpillReader, SpillWriter, SPILL_MAGIC};

#[cfg(test)]
mod tests {
    use crate::{LabellingService, ServeConfig, ServeError};
    use crowd_core::{
        synthetic_task, CoreError, LabelBits, TaskId, TaskSet, Worker, WorkerId, WorkerPool,
    };
    use crowd_geo::Point;

    fn world(n_tasks: usize, n_workers: usize) -> (TaskSet, WorkerPool) {
        let side = (n_tasks as f64).sqrt().ceil() as usize;
        let tasks = TaskSet::new(
            (0..n_tasks)
                .map(|i| {
                    synthetic_task(
                        format!("t{i}"),
                        Point::new((i % side) as f64, (i / side) as f64),
                        3,
                    )
                })
                .collect(),
        );
        let workers = WorkerPool::from_workers(
            (0..n_workers)
                .map(|i| {
                    Worker::at(
                        format!("w{i}"),
                        Point::new((i % side) as f64 + 0.3, (i / side) as f64 + 0.2),
                    )
                })
                .collect(),
        )
        .unwrap();
        (tasks, workers)
    }

    #[test]
    fn request_submit_loop_reaches_inference() {
        let (tasks, workers) = world(16, 4);
        let service = LabellingService::start(
            &tasks,
            &workers,
            ServeConfig {
                n_shards: 2,
                budget: 32,
                ..ServeConfig::default()
            },
        );
        let handle = service.handle();
        let mut assigned = 0;
        for w in workers.ids() {
            let a = handle.request_tasks(&[w]).unwrap();
            assigned += a.total();
            for (worker, task) in a.pairs() {
                assert!(task.index() < 16, "global id expected");
                handle
                    .submit_wait(worker, task, LabelBits::from_slice(&[true, true, false]))
                    .unwrap();
            }
        }
        assert!(assigned > 0);
        service.quiesce();
        assert_eq!(service.answers_total(), assigned);
        assert_eq!(service.budget_used(), assigned);
        let decisions = service.decisions();
        assert_eq!(decisions.len(), 16);
        let metrics = service.metrics();
        assert_eq!(metrics.total_submits() as usize, assigned);
        assert_eq!(metrics.total_assigned() as usize, assigned);
        assert_eq!(metrics.enqueued, metrics.processed);
        service.shutdown();
    }

    #[test]
    fn budget_exhausts_across_all_shards() {
        let (tasks, workers) = world(9, 3);
        let service = LabellingService::start(
            &tasks,
            &workers,
            ServeConfig {
                n_shards: 3,
                budget: 6,
                h: 2,
                ..ServeConfig::default()
            },
        );
        let handle = service.handle();
        let mut total = 0;
        loop {
            match handle.request_tasks(&[WorkerId(0), WorkerId(1), WorkerId(2)]) {
                Ok(a) if a.is_empty() => break,
                Ok(a) => total += a.total(),
                Err(ServeError::Core(CoreError::BudgetExhausted)) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(total, 6);
        assert_eq!(service.budget_used(), 6);
        // Sum of slices equals the campaign budget and none is overdrawn.
        let per_shard: usize = (0..service.n_shards())
            .map(|s| {
                let shard = service.shard(s);
                assert!(shard.framework().budget_used() <= shard.framework().config().budget);
                shard.framework().budget_used()
            })
            .sum();
        assert_eq!(per_shard, 6);
        service.shutdown();
    }

    #[test]
    fn duplicate_submit_is_rejected_and_counted() {
        let (tasks, workers) = world(4, 2);
        let service = LabellingService::start(
            &tasks,
            &workers,
            ServeConfig {
                n_shards: 1,
                budget: 10,
                ..ServeConfig::default()
            },
        );
        let handle = service.handle();
        let bits = LabelBits::from_slice(&[true, false, false]);
        handle.submit_wait(WorkerId(0), TaskId(0), bits).unwrap();
        let err = handle
            .submit_wait(WorkerId(0), TaskId(0), bits)
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Core(CoreError::DuplicateAnswer { .. })
        ));
        let metrics = service.metrics();
        assert_eq!(metrics.shards[0].rejected, 1);
        assert_eq!(metrics.shards[0].submits, 1);
        service.shutdown();
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let (tasks, workers) = world(4, 2);
        let service = LabellingService::start(&tasks, &workers, ServeConfig::default());
        let handle = service.handle();
        assert!(matches!(
            handle.submit_wait(WorkerId(0), TaskId(99), LabelBits::zeros(3)),
            Err(ServeError::Core(CoreError::UnknownTask(TaskId(99))))
        ));
        assert!(matches!(
            handle.request_tasks(&[WorkerId(42)]),
            Err(ServeError::Core(CoreError::UnknownWorker(WorkerId(42))))
        ));
        service.shutdown();
    }

    #[test]
    fn handles_refuse_commands_after_shutdown() {
        let (tasks, workers) = world(4, 2);
        let service = LabellingService::start(&tasks, &workers, ServeConfig::default());
        let handle = service.handle();
        service.shutdown();
        assert_eq!(
            handle.submit(WorkerId(0), TaskId(0), LabelBits::zeros(3)),
            Err(ServeError::Closed)
        );
        assert!(matches!(
            handle.request_tasks(&[WorkerId(0)]),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn empty_worker_batch_gets_empty_assignment() {
        let (tasks, workers) = world(4, 2);
        let service = LabellingService::start(&tasks, &workers, ServeConfig::default());
        let a = service.handle().request_tasks(&[]).unwrap();
        assert!(a.is_empty());
        service.shutdown();
    }

    #[test]
    fn force_full_em_hardens_every_shard() {
        let (tasks, workers) = world(9, 3);
        let service = LabellingService::start(
            &tasks,
            &workers,
            ServeConfig {
                n_shards: 3,
                budget: 30,
                ..ServeConfig::default()
            },
        );
        let handle = service.handle();
        for w in workers.ids() {
            let a = handle.request_tasks(&[w]).unwrap();
            for (worker, task) in a.pairs() {
                handle
                    .submit(worker, task, LabelBits::from_slice(&[true, true, true]))
                    .unwrap();
            }
        }
        service.quiesce();
        service.force_full_em();
        for s in 0..service.n_shards() {
            let shard = service.shard(s);
            if !shard.framework().log().is_empty() {
                assert!(shard.framework().model().last_report().is_some());
            }
        }
        service.shutdown();
    }
}
