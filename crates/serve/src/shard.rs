//! Geographic sharding: mapping tasks to shards through `crowd_geo`'s grid
//! and wrapping each shard's private [`Framework`].
//!
//! A shard is the unit of concurrency: it owns a `Framework` over the tasks
//! of its grid cells, a proportional slice of the campaign budget, and its
//! own ACCOPT assigner. Shards never share mutable state, so the service
//! can stripe one lock per shard and let submissions to different regions
//! proceed in parallel.

use crowd_core::{
    AccOptAssigner, Assignment, CoreError, Distances, Framework, FrameworkConfig, LabelBits,
    ModelParams, PeerStats, TaskId, TaskSet, Worker, WorkerId, WorkerPool, WorkerStatDelta,
};
use crowd_geo::{GridIndex, Point};

/// One recorded out-of-stream model event: something that mutated this
/// shard's model *besides* an answer, applied when the answer log held
/// `position` answers.
///
/// Shard state is a deterministic function of its *event stream* — answers
/// interleaved with these events — so persisting both (see
/// [`ShardSnapshot`](crate::ShardSnapshot)) lets a restore replay the
/// exact sequence and land on bit-identical model state even though fold
/// payloads were produced by racy cross-shard timing and hardening sweeps
/// by explicit operator calls.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GossipEvent {
    /// The shard's answer count when the event was applied.
    pub position: usize,
    /// What happened.
    pub kind: GossipEventKind,
}

/// The kinds of recorded out-of-stream model events.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GossipEventKind {
    /// A peer's published worker-statistic delta was folded in.
    Fold(WorkerStatDelta),
    /// A fold whose payload was dropped by pruning: only the two-integer
    /// identity survives. Pruning converts pre-checkpoint [`Fold`]s to
    /// refs — except each source's *latest*, which keeps its payload so
    /// the checkpoint peer table can still be rebuilt (the table holds one
    /// cumulative delta per source; superseded payloads contribute
    /// nothing). Refs are never replayed: they always sit before the
    /// checkpoint, whose parameters already contain their effect.
    ///
    /// [`Fold`]: GossipEventKind::Fold
    FoldRef {
        /// The folded delta's source shard.
        source: u64,
        /// The folded delta's version stamp.
        version: u64,
    },
    /// An unconditional hardening full sweep ran
    /// ([`LabellingService::force_full_em`](crate::LabellingService::force_full_em)).
    FullSweep,
    /// A worker arrived mid-campaign and was registered into this shard's
    /// pool ([`crate::ServiceHandle::register_worker`]). Recorded per shard
    /// at the shard's own stream position, so replay re-registers the
    /// worker exactly where the pool grew — full sweeps before this event
    /// size their parameters by the smaller pool, ones after by the larger.
    Register {
        /// The worker's display name.
        name: String,
        /// Registered location, x coordinate.
        x: f64,
        /// Registered location, y coordinate.
        y: f64,
    },
}

/// The shard's model state captured right after its most recent
/// **full-sweep** EM rebuild — the compaction point of snapshot format v3.
///
/// Immediately after a full sweep, the whole mutable model state is a pure
/// function of `(params, answer-log prefix, peer table)` (see
/// [`crowd_core::OnlineModel::restore_checkpoint`]), and the peer table is
/// itself implied by the fold events recorded so far. So this small record
/// — a position, an event index and one parameter set — is everything a v3
/// snapshot needs to let restore *harden from parameters*: bulk-load the
/// first `position` answers, re-seed `params`, recompute the sufficient
/// statistics with one deterministic E-pass, and replay only the event
/// stream recorded after (`events_applied`, `position`).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModelCheckpoint {
    /// The shard's answer count when the full sweep ran.
    pub position: usize,
    /// How many recorded out-of-stream events preceded the sweep — replay
    /// from the checkpoint skips exactly `gossip_events[..events_applied]`
    /// (their effects are already inside `params`).
    pub events_applied: usize,
    /// The converged parameters the sweep produced.
    pub params: ModelParams,
}

/// Deterministic geographic task → shard partition.
///
/// Tasks are bucketed by a uniform [`GridIndex`] over their locations
/// (roughly four cells per shard), and cells are dealt to shards
/// greedily — each cell goes to the currently least-loaded shard — so the
/// partition is balanced even when POIs cluster heavily. The same map
/// routes workers: a worker's home shard is the shard owning the grid cell
/// of their first registered location.
#[derive(Debug, Clone)]
pub struct ShardMap {
    n_shards: usize,
    version: u64,
    shard_of_task: Vec<u32>,
    shard_of_cell: Vec<u32>,
    grid: GridIndex,
}

impl ShardMap {
    /// Partitions `tasks` into at most `n_shards` shards (clamped to the
    /// task count and to at least one). The built map is **version 1**;
    /// every [`ShardMap::reassign_cell`] publishes a successor with the
    /// version bumped, so routing epochs are totally ordered.
    ///
    /// # Panics
    /// Panics if `tasks` is empty (there is nothing to serve).
    #[must_use]
    pub fn build(tasks: &TaskSet, n_shards: usize) -> Self {
        assert!(!tasks.is_empty(), "cannot shard an empty task set");
        let n_shards = n_shards.clamp(1, tasks.len());
        let locations: Vec<Point> = tasks.iter().map(|t| t.location).collect();
        // Aim for ~4 cells per shard so the greedy deal can balance.
        let target_per_cell = (locations.len() / (n_shards * 4)).max(1);
        let grid = GridIndex::build(&locations, target_per_cell);

        let mut load = vec![0usize; n_shards];
        let mut shard_of_cell = vec![0u32; grid.n_cells()];
        let mut shard_of_task = vec![0u32; tasks.len()];
        for (cell, cell_shard) in shard_of_cell.iter_mut().enumerate() {
            let members = grid.cell_members(cell);
            // Least-loaded shard takes the whole cell; ties go to the
            // lowest id, keeping the partition deterministic.
            let shard = (0..n_shards).min_by_key(|&s| (load[s], s)).expect(">=1");
            *cell_shard = shard as u32;
            load[shard] += members.len();
            for &task in members {
                shard_of_task[task as usize] = shard as u32;
            }
        }
        Self {
            n_shards,
            version: 1,
            shard_of_task,
            shard_of_cell,
            grid,
        }
    }

    /// Rebuilds a map from a persisted cell → shard assignment (snapshot
    /// format v4). The grid is a deterministic function of the task
    /// locations and shard count, so the cell vector is all a snapshot
    /// needs to persist.
    ///
    /// # Errors
    /// Returns a message when `cells` does not match the grid the task set
    /// implies, or names a shard out of range.
    pub fn with_cells(
        tasks: &TaskSet,
        n_shards: usize,
        cells: &[u32],
        version: u64,
    ) -> Result<Self, String> {
        let mut map = Self::build(tasks, n_shards);
        if cells.len() != map.shard_of_cell.len() {
            return Err(format!(
                "cell assignment has {} cells, the task grid has {}",
                cells.len(),
                map.shard_of_cell.len()
            ));
        }
        if let Some(&bad) = cells.iter().find(|&&s| s as usize >= map.n_shards) {
            return Err(format!(
                "cell assigned to shard {bad}, only {} shards exist",
                map.n_shards
            ));
        }
        if version == 0 {
            return Err("map version 0 is reserved (versions start at 1)".into());
        }
        map.shard_of_cell.copy_from_slice(cells);
        for cell in 0..map.shard_of_cell.len() {
            let shard = map.shard_of_cell[cell];
            for &task in map.grid.cell_members(cell) {
                map.shard_of_task[task as usize] = shard;
            }
        }
        map.version = version;
        Ok(map)
    }

    /// Publishes a successor map with grid cell `cell` owned by shard `to`
    /// and the version bumped by one. Both a hot-cell *split* (moving a
    /// cell off an overloaded shard) and a cold-cell *merge* (consolidating
    /// a quiet cell onto the shard owning its neighbours) are this one
    /// reassignment — the shard count never changes, only cell ownership.
    ///
    /// # Errors
    /// Returns a message when `cell` or `to` is out of range, or `to`
    /// already owns the cell (nothing would move).
    pub fn reassign_cell(&self, cell: usize, to: usize) -> Result<Self, String> {
        if cell >= self.shard_of_cell.len() {
            return Err(format!(
                "cell {cell} out of range ({} cells)",
                self.shard_of_cell.len()
            ));
        }
        if to >= self.n_shards {
            return Err(format!(
                "shard {to} out of range ({} shards)",
                self.n_shards
            ));
        }
        if self.shard_of_cell[cell] as usize == to {
            return Err(format!("cell {cell} is already owned by shard {to}"));
        }
        let mut next = self.clone();
        next.shard_of_cell[cell] = to as u32;
        for &task in next.grid.cell_members(cell) {
            next.shard_of_task[task as usize] = to as u32;
        }
        next.version += 1;
        Ok(next)
    }

    /// Number of shards (after clamping).
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The map's version: 1 for a freshly built map, bumped by every
    /// [`ShardMap::reassign_cell`]. In-flight commands are stamped with the
    /// version they were routed under, so the drain side can detect a task
    /// that moved while the command sat in the queue.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of grid cells (the unit of split/merge handoff).
    #[must_use]
    pub fn n_cells(&self) -> usize {
        self.shard_of_cell.len()
    }

    /// The cell → shard assignment, indexed by cell id (persisted by v4
    /// snapshots; the grid itself is implied by the task locations).
    #[must_use]
    pub fn cells(&self) -> &[u32] {
        &self.shard_of_cell
    }

    /// The shard owning grid cell `cell`.
    ///
    /// # Panics
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn shard_of_cell(&self, cell: usize) -> usize {
        self.shard_of_cell[cell] as usize
    }

    /// Global ids of the tasks inside grid cell `cell`, in id order.
    ///
    /// # Panics
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn cell_tasks(&self, cell: usize) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self
            .grid
            .cell_members(cell)
            .iter()
            .map(|&t| TaskId(t))
            .collect();
        ids.sort_by_key(|t| t.index());
        ids
    }

    /// Number of tasks in the global space.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.shard_of_task.len()
    }

    /// The shard owning `task`.
    ///
    /// # Panics
    /// Panics if the task id is out of range.
    #[must_use]
    pub fn shard_of_task(&self, task: TaskId) -> usize {
        self.shard_of_task[task.index()] as usize
    }

    /// Checked variant of [`ShardMap::shard_of_task`].
    #[must_use]
    pub fn shard_of_task_checked(&self, task: TaskId) -> Option<usize> {
        self.shard_of_task.get(task.index()).map(|&s| s as usize)
    }

    /// The shard owning the geographic region around `p` (locations outside
    /// the task extent clamp to the border region).
    #[must_use]
    pub fn shard_for_point(&self, p: Point) -> usize {
        self.shard_of_cell[self.grid.cell_of(p)] as usize
    }

    /// Global ids of the tasks owned by `shard`, in id order.
    #[must_use]
    pub fn tasks_of(&self, shard: usize) -> Vec<TaskId> {
        self.shard_of_task
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s as usize == shard)
            .map(|(i, _)| TaskId::from_index(i))
            .collect()
    }

    /// Splits `budget` proportionally to each shard's task count. Slices
    /// sum exactly to `budget`; remainders go to the shards with the
    /// largest fractional share (ties to the lower id).
    #[must_use]
    pub fn budget_slices(&self, budget: usize) -> Vec<usize> {
        let total_tasks = self.shard_of_task.len();
        let counts: Vec<usize> = (0..self.n_shards)
            .map(|s| {
                self.shard_of_task
                    .iter()
                    .filter(|&&x| x as usize == s)
                    .count()
            })
            .collect();
        let mut slices: Vec<usize> = counts.iter().map(|&c| budget * c / total_tasks).collect();
        let assigned: usize = slices.iter().sum();
        // Largest-remainder rounding for the leftover units.
        let mut order: Vec<usize> = (0..self.n_shards).collect();
        order.sort_by_key(|&s| {
            // Remainder of budget·c/total, negated for descending order.
            let rem = (budget * counts[s]) % total_tasks;
            (std::cmp::Reverse(rem), s)
        });
        for i in 0..(budget - assigned) {
            slices[order[i % self.n_shards]] += 1;
        }
        slices
    }
}

/// One shard of a campaign: a private [`Framework`] over the shard's tasks
/// plus its assigner, with id remapping between the global task space and
/// the shard-local dense ids.
#[derive(Debug, Clone)]
pub struct Shard {
    id: usize,
    framework: Framework,
    assigner: AccOptAssigner,
    /// Local dense id → global id, in local id order.
    to_global: Vec<TaskId>,
    /// Global id → local dense id (u32::MAX for tasks of other shards).
    local_of: Vec<u32>,
    /// Every out-of-stream model event applied to this shard (peer folds,
    /// hardening sweeps), in order with the answer-log position each was
    /// applied at.
    gossip_events: Vec<GossipEvent>,
    /// Deltas published so far — the version stamp, strictly increasing
    /// per publish so a re-publish after a hardening sweep (same answer
    /// count, different statistics) is never mistaken for a re-delivery.
    publishes: u64,
    /// The latest full-sweep checkpoint (v3 snapshots persist it so
    /// restore can harden from parameters instead of replaying the log).
    checkpoint: Option<ModelCheckpoint>,
    /// Global arrival sequence numbers, parallel to the resident answer
    /// log. `None` until the first handoff touches the campaign: while the
    /// map is static, the canonical interleaving of independent per-shard
    /// streams is the *virtual* assignment `seq = position · n_shards +
    /// shard_id`, so nothing needs storing. A handoff splices two shards'
    /// streams together, after which arrival order across shards is no
    /// longer reconstructible from positions — from then on every accepted
    /// answer records the sequence number the service allocated for it.
    seqs: Option<Vec<u64>>,
}

impl Shard {
    /// Builds shard `id` owning `task_ids` (global ids into `tasks`), with
    /// its own budget slice in `config.budget`. `distances` must be the
    /// campaign-global normaliser so `d(w, t)` matches the unsharded
    /// system.
    #[must_use]
    pub fn new(
        id: usize,
        tasks: &TaskSet,
        task_ids: Vec<TaskId>,
        workers: WorkerPool,
        config: FrameworkConfig,
        distances: Distances,
    ) -> Self {
        let local_tasks = TaskSet::new(task_ids.iter().map(|&t| tasks.task(t).clone()).collect());
        let mut local_of = vec![u32::MAX; tasks.len()];
        for (local, &global) in task_ids.iter().enumerate() {
            local_of[global.index()] = local as u32;
        }
        Self {
            id,
            framework: Framework::with_distances(local_tasks, workers, config, distances),
            assigner: AccOptAssigner::new(),
            to_global: task_ids,
            local_of,
            gossip_events: Vec::new(),
            publishes: 0,
            checkpoint: None,
            seqs: None,
        }
    }

    /// This shard's id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of tasks owned.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.to_global.len()
    }

    /// The local dense id for a global task id, if this shard owns it.
    #[must_use]
    pub fn local_of(&self, global: TaskId) -> Option<TaskId> {
        match self.local_of.get(global.index()) {
            Some(&local) if local != u32::MAX => Some(TaskId(local)),
            _ => None,
        }
    }

    /// The global id for a shard-local task id.
    ///
    /// # Panics
    /// Panics if `local` is out of range.
    #[must_use]
    pub fn global_of(&self, local: TaskId) -> TaskId {
        self.to_global[local.index()]
    }

    /// Accepts an answer addressed with a *global* task id. Returns whether
    /// the submission triggered a delayed full EM.
    ///
    /// # Errors
    /// [`CoreError::UnknownTask`] if this shard does not own the task;
    /// otherwise whatever [`Framework::submit`] reports.
    pub fn submit_global(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
    ) -> Result<bool, CoreError> {
        let local = self.local_of(task).ok_or(CoreError::UnknownTask(task))?;
        let triggered = self.framework.submit(worker, local, bits)?;
        // A delayed rebuild that ran as (or fell back to) a full sweep is a
        // compaction point: capture the converged parameters.
        if triggered
            && self
                .framework
                .model()
                .last_report()
                .is_some_and(|r| r.full_sweep)
        {
            self.record_checkpoint();
        }
        Ok(triggered)
    }

    /// Appends an answer (global task id) to the shard's log **without**
    /// updating the model — the v3 snapshot bulk-load path. The restore
    /// code must re-seed the model from a checkpoint before any
    /// [`Shard::submit_global`] (see [`Framework::load_answer`]).
    ///
    /// # Errors
    /// [`CoreError::UnknownTask`] if this shard does not own the task;
    /// otherwise whatever validation [`Framework::load_answer`] reports.
    pub fn load_global(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
    ) -> Result<(), CoreError> {
        let local = self.local_of(task).ok_or(CoreError::UnknownTask(task))?;
        self.framework.load_answer(worker, local, bits)
    }

    /// Restores the shard's model to the post-full-sweep state implied by
    /// `checkpoint.params` over the currently loaded answer log, with
    /// `peers` as the folded peer table at the checkpoint, and adopts
    /// `checkpoint` as the shard's compaction point. Returns `false`
    /// (shard untouched) on a shape mismatch.
    pub(crate) fn restore_checkpoint(
        &mut self,
        checkpoint: ModelCheckpoint,
        peers: PeerStats,
    ) -> bool {
        if !self
            .framework
            .restore_checkpoint(checkpoint.params.clone(), peers)
        {
            return false;
        }
        self.checkpoint = Some(checkpoint);
        true
    }

    /// Splices recorded events back in verbatim (v3 restore: events before
    /// the checkpoint are adopted, not replayed — their effects live in the
    /// checkpoint parameters).
    pub(crate) fn adopt_events(&mut self, events: Vec<GossipEvent>) {
        self.gossip_events = events;
    }

    /// Captures the current model state as the latest full-sweep
    /// checkpoint. Callers must only invoke this right after a full sweep.
    fn record_checkpoint(&mut self) {
        self.checkpoint = Some(ModelCheckpoint {
            position: self.framework.log().stream_len(),
            events_applied: self.gossip_events.len(),
            params: self.framework.params().clone(),
        });
    }

    /// The latest full-sweep checkpoint, if any rebuild has full-swept yet.
    #[must_use]
    pub fn checkpoint(&self) -> Option<&ModelCheckpoint> {
        self.checkpoint.as_ref()
    }

    /// Answers currently resident in this shard's memory (the retained
    /// suffix of its stream).
    #[must_use]
    pub fn resident_answers(&self) -> usize {
        self.framework.log().len()
    }

    /// Answers truncated from the front of this shard's stream by
    /// [`Shard::prune_to_checkpoint`] (0 until a prune).
    #[must_use]
    pub fn pruned_answers(&self) -> usize {
        self.framework.log().pruned()
    }

    /// Drops the pre-checkpoint tier from memory: truncates the answer
    /// prefix the latest checkpoint covers (payloads returned in stream
    /// order, with global task ids, for the caller to spill) and strips
    /// pre-checkpoint fold payloads down to `(source, version)` refs —
    /// keeping each source's latest fold full so the checkpoint peer table
    /// remains rebuildable.
    ///
    /// Only legal when the checkpoint is *current*: it must sit at the
    /// exact end of the answer stream and the event stream (the state
    /// right after [`Shard::harden`], or a delayed full sweep, with
    /// nothing applied since). Returns `None` (shard untouched) otherwise.
    pub fn prune_to_checkpoint(&mut self) -> Option<Vec<(WorkerId, TaskId, LabelBits)>> {
        let current = self.checkpoint.as_ref().is_some_and(|cp| {
            cp.position == self.framework.log().stream_len()
                && cp.events_applied == self.gossip_events.len()
        });
        if !current {
            return None;
        }
        let drained = self.framework.prune_checkpointed()?;
        // A current checkpoint sits at the end of the stream, so the prune
        // drops the *whole* resident log — the recorded sequence numbers go
        // with their answers (the spill tier archives payloads, not seqs;
        // a pruned shard can no longer be a handoff source).
        if let Some(seqs) = &mut self.seqs {
            seqs.clear();
        }
        // Last fold index per source: those keep their payloads.
        let mut latest: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, event) in self.gossip_events.iter().enumerate() {
            if let GossipEventKind::Fold(delta) = &event.kind {
                latest.insert(delta.source, i);
            }
        }
        for (i, event) in self.gossip_events.iter_mut().enumerate() {
            let GossipEventKind::Fold(delta) = &event.kind else {
                continue;
            };
            if latest.get(&delta.source) != Some(&i) {
                event.kind = GossipEventKind::FoldRef {
                    source: delta.source,
                    version: delta.version,
                };
            }
        }
        Some(
            drained
                .into_iter()
                .map(|a| (a.worker, self.global_of(a.task), a.bits))
                .collect(),
        )
    }

    /// Seeds the pruned answer prefix from persisted `(worker, global
    /// task)` pairs — the snapshot-restore counterpart of
    /// [`Shard::prune_to_checkpoint`]. Returns `false` when a task is not
    /// owned by this shard or the log rejects the pairs.
    /// The pruned prefix as `(worker, global task)` pairs, in the log's
    /// deterministic (packed, sorted) order — what a snapshot persists so
    /// a restored shard keeps exact duplicate detection and counts.
    pub fn pruned_pairs_global(&self) -> impl Iterator<Item = (WorkerId, TaskId)> + '_ {
        self.framework
            .log()
            .pruned_pairs()
            .map(|(worker, task)| (worker, self.global_of(task)))
    }

    pub(crate) fn restore_pruned_global(&mut self, pairs: &[(WorkerId, TaskId)]) -> bool {
        let mut local = Vec::with_capacity(pairs.len());
        for &(w, t) in pairs {
            let Some(l) = self.local_of(t) else {
                return false;
            };
            local.push((w, l));
        }
        self.framework.restore_pruned(&local)
    }

    /// Assigns up to `h` of this shard's tasks to each requesting worker,
    /// charging the shard's budget slice. Task ids in the returned
    /// assignment are *global*.
    ///
    /// # Errors
    /// Propagates [`Framework::request`] failures
    /// ([`CoreError::BudgetExhausted`], [`CoreError::UnknownWorker`]).
    pub fn request(&mut self, workers: &[WorkerId]) -> Result<Assignment, CoreError> {
        let assignment = self.framework.request(&mut self.assigner, workers)?;
        Ok(Assignment::new(
            assignment
                .per_worker()
                .iter()
                .map(|(w, ts)| (*w, ts.iter().map(|&t| self.global_of(t)).collect()))
                .collect(),
        ))
    }

    /// This shard's worker-side statistics, packaged for the gossip
    /// exchange with the shard id as source and a strictly increasing
    /// publish counter as the version (so a delta published after a
    /// hardening sweep at an unchanged answer count still supersedes the
    /// pre-sweep one).
    pub fn publish_delta(&mut self) -> WorkerStatDelta {
        self.publishes += 1;
        self.framework
            .model()
            .worker_stat_delta(self.id as u64, self.publishes)
    }

    /// Deltas published so far (persisted by snapshots so a restored
    /// shard's next publish continues the version sequence).
    #[must_use]
    pub fn publishes(&self) -> u64 {
        self.publishes
    }

    /// Restores the publish counter (snapshot restore only).
    pub(crate) fn set_publishes(&mut self, publishes: u64) {
        self.publishes = publishes;
    }

    /// Folds a peer shard's published delta into the inference model,
    /// recording the fold position so replay/restore can reproduce the
    /// exact event stream. Stale or re-delivered deltas are a no-op
    /// returning `false` (and are not recorded).
    pub fn fold_peer(&mut self, delta: &WorkerStatDelta) -> bool {
        self.fold_peers(std::slice::from_ref(delta)) == 1
    }

    /// Folds a whole gossip round of peer deltas in one batched pass
    /// (each covered worker's pooled parameters are refreshed once, not
    /// once per delta), recording one positioned event per absorbed delta
    /// in input order — the same events sequential [`Shard::fold_peer`]
    /// calls would record, and replaying them one by one reproduces the
    /// batched state bit for bit. Returns how many deltas were absorbed.
    pub fn fold_peers(&mut self, deltas: &[WorkerStatDelta]) -> usize {
        let position = self.framework.log().stream_len();
        let absorbed = self.framework.fold_peer_stats_batch(deltas);
        let mut folded = 0;
        for (delta, &ok) in deltas.iter().zip(&absorbed) {
            if ok {
                self.gossip_events.push(GossipEvent {
                    position,
                    kind: GossipEventKind::Fold(delta.clone()),
                });
                folded += 1;
            }
        }
        folded
    }

    /// Runs the unconditional hardening full sweep
    /// ([`crowd_core::Framework::force_full_em`]) *and records it* in the
    /// event stream, so a snapshot taken afterwards restores bit-identically.
    /// The service's `force_full_em` uses this; mutating the framework
    /// directly through [`Shard::framework_mut`] bypasses the recording.
    pub fn harden(&mut self) {
        let position = self.framework.log().stream_len();
        self.framework.force_full_em();
        self.gossip_events.push(GossipEvent {
            position,
            kind: GossipEventKind::FullSweep,
        });
        // A hardening sweep is a full sweep: it is a compaction point, and
        // its own event sits *before* the checkpoint (events_applied
        // includes it — the sweep's effect is inside the parameters).
        self.record_checkpoint();
    }

    /// Registers a newly arrived worker into this shard's pool *and
    /// records it* as a positioned event, so snapshot replay re-registers
    /// the worker at the exact stream position the pool grew. The service
    /// registers every arrival into **all** shards in shard-id order, so
    /// the dense worker ids agree across the pool.
    ///
    /// # Errors
    /// Propagates [`Framework::register_worker`] failures (a worker with
    /// no location).
    pub fn register_worker(&mut self, worker: Worker) -> Result<WorkerId, CoreError> {
        let name = worker.name.clone();
        let location = worker.locations.first().copied();
        let position = self.framework.log().stream_len();
        // A location-less worker is rejected here, before the event is
        // recorded, with the pool's canonical error.
        let id = self.framework.register_worker(worker)?;
        let location = location.expect("registered workers carry a location");
        self.gossip_events.push(GossipEvent {
            position,
            kind: GossipEventKind::Register {
                name,
                x: location.x,
                y: location.y,
            },
        });
        Ok(id)
    }

    /// Global arrival sequence numbers for the resident answers, if the
    /// campaign has been through a handoff (see the field doc on why a
    /// static map needs none).
    #[must_use]
    pub fn seqs(&self) -> Option<&[u64]> {
        self.seqs.as_deref()
    }

    /// Switches this shard to explicit sequence tracking, stamping every
    /// resident answer with its virtual sequence number under a static
    /// `n_shards`-wide map. Idempotent.
    pub(crate) fn materialize_seqs(&mut self, n_shards: usize) {
        if self.seqs.is_some() {
            return;
        }
        let pruned = self.framework.log().pruned() as u64;
        let n = n_shards as u64;
        let id = self.id as u64;
        self.seqs = Some(
            (0..self.framework.log().len() as u64)
                .map(|i| (pruned + i) * n + id)
                .collect(),
        );
    }

    /// Records the sequence number of an answer just accepted. A no-op
    /// until [`Shard::materialize_seqs`]; afterwards the service calls this
    /// under the shard lock right after every successful
    /// [`Shard::submit_global`].
    pub(crate) fn push_seq(&mut self, seq: u64) {
        if let Some(seqs) = &mut self.seqs {
            seqs.push(seq);
            debug_assert_eq!(seqs.len(), self.framework.log().len());
        }
    }

    /// Adopts persisted sequence numbers (v4 snapshot restore). Returns
    /// `false` when the vector does not cover the resident log exactly.
    pub(crate) fn adopt_seqs(&mut self, seqs: Vec<u64>) -> bool {
        if seqs.len() != self.framework.log().len() {
            return false;
        }
        self.seqs = Some(seqs);
        true
    }

    /// The in-flight reservations with task ids mapped to the global
    /// space, in deterministic (worker, task) order.
    #[must_use]
    pub fn reservations_global(&self) -> Vec<(WorkerId, TaskId)> {
        let mut pairs: Vec<(WorkerId, TaskId)> = self
            .framework
            .reservations()
            .iter()
            .map(|(w, t)| (w, self.global_of(t)))
            .collect();
        pairs.sort_unstable_by_key(|&(w, t)| (w.0, t.0));
        pairs
    }

    /// Adopts in-flight reservations addressed with global task ids (shard
    /// handoff: the pairs a task's old owner had issued stay refused a
    /// re-issue here). Pairs for tasks this shard does not own are skipped
    /// — the handoff partitions one reservation set across two owners.
    pub(crate) fn adopt_reservations_global(&mut self, pairs: &[(WorkerId, TaskId)]) {
        let local: Vec<(WorkerId, TaskId)> = pairs
            .iter()
            .filter_map(|&(w, t)| self.local_of(t).map(|l| (w, l)))
            .collect();
        self.framework.adopt_reservations(local);
    }

    /// Every out-of-stream event applied to this shard, in order.
    #[must_use]
    pub fn gossip_events(&self) -> &[GossipEvent] {
        &self.gossip_events
    }

    /// The underlying framework (read-only).
    #[must_use]
    pub fn framework(&self) -> &Framework {
        &self.framework
    }

    /// Mutable access to the underlying framework — used by snapshot
    /// restore to re-charge budget. Model mutations made directly through
    /// this (rather than [`Shard::submit_global`] / [`Shard::fold_peer`] /
    /// [`Shard::harden`]) are *not* recorded in the event stream and will
    /// not survive a snapshot → restore round-trip.
    pub fn framework_mut(&mut self) -> &mut Framework {
        &mut self.framework
    }

    /// The shard's answers in arrival order, with task ids mapped back to
    /// the global space: `(worker, global task, bits)`.
    pub fn answers_global(&self) -> impl Iterator<Item = (WorkerId, TaskId, LabelBits)> + '_ {
        self.framework
            .log()
            .answers()
            .iter()
            .map(|a| (a.worker, self.global_of(a.task), a.bits))
    }

    /// Writes this shard's hardened label decisions into `out`, indexed by
    /// global task id. Slots of other shards are left untouched.
    pub fn decisions_into(&self, out: &mut [LabelBits]) {
        let inference = self.framework.inference();
        for local in 0..self.n_tasks() {
            let local_id = TaskId::from_index(local);
            out[self.global_of(local_id).index()] = inference.decision(local_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::synthetic_task;

    fn lattice_tasks(n: usize) -> TaskSet {
        // A 2-D lattice wide enough for several grid cells.
        let side = (n as f64).sqrt().ceil() as usize;
        TaskSet::new(
            (0..n)
                .map(|i| {
                    let x = (i % side) as f64;
                    let y = (i / side) as f64;
                    synthetic_task(format!("t{i}"), Point::new(x, y), 3)
                })
                .collect(),
        )
    }

    fn pool() -> WorkerPool {
        WorkerPool::from_workers(vec![
            Worker::at("a", Point::new(0.0, 0.0)),
            Worker::at("b", Point::new(5.0, 5.0)),
        ])
        .unwrap()
    }

    use crowd_core::Worker;

    #[test]
    fn partition_is_total_and_balanced() {
        let tasks = lattice_tasks(64);
        for n_shards in [1, 2, 4, 8] {
            let map = ShardMap::build(&tasks, n_shards);
            assert_eq!(map.n_shards(), n_shards);
            let mut counts = vec![0usize; n_shards];
            for t in tasks.ids() {
                counts[map.shard_of_task(t)] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), 64);
            let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(
                hi - lo <= 64 / n_shards,
                "imbalanced {counts:?} at {n_shards} shards"
            );
            // tasks_of agrees with shard_of_task.
            for (s, &count) in counts.iter().enumerate() {
                assert_eq!(map.tasks_of(s).len(), count);
            }
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let tasks = lattice_tasks(50);
        let a = ShardMap::build(&tasks, 4);
        let b = ShardMap::build(&tasks, 4);
        assert_eq!(a.shard_of_task, b.shard_of_task);
    }

    #[test]
    fn shard_count_clamps_to_task_count() {
        let tasks = lattice_tasks(3);
        let map = ShardMap::build(&tasks, 16);
        assert!(map.n_shards() <= 3);
        assert!(map.n_shards() >= 1);
    }

    #[test]
    fn worker_routing_hits_owning_shard_for_task_locations() {
        let tasks = lattice_tasks(36);
        let map = ShardMap::build(&tasks, 3);
        for t in tasks.ids() {
            let p = tasks.task(t).location;
            assert_eq!(map.shard_for_point(p), map.shard_of_task(t), "task {t}");
        }
        // Far-away points still route somewhere valid.
        assert!(map.shard_for_point(Point::new(-1e6, 1e6)) < 3);
    }

    #[test]
    fn budget_slices_sum_exactly_and_track_share() {
        let tasks = lattice_tasks(60);
        let map = ShardMap::build(&tasks, 4);
        for budget in [0, 1, 7, 100, 999] {
            let slices = map.budget_slices(budget);
            assert_eq!(slices.iter().sum::<usize>(), budget, "budget {budget}");
        }
        let slices = map.budget_slices(600);
        for (s, &slice) in slices.iter().enumerate() {
            let share = map.tasks_of(s).len() as f64 / 60.0;
            let expected = 600.0 * share;
            assert!(
                (slice as f64 - expected).abs() <= 1.0,
                "slice {s}: {slice} vs {expected}"
            );
        }
    }

    #[test]
    fn shard_remaps_ids_both_ways() {
        let tasks = lattice_tasks(16);
        let map = ShardMap::build(&tasks, 2);
        let owned = map.tasks_of(1);
        let distances = Distances::from_tasks(&tasks);
        let shard = Shard::new(
            1,
            &tasks,
            owned.clone(),
            pool(),
            FrameworkConfig {
                budget: 10,
                h: 2,
                ..FrameworkConfig::default()
            },
            distances,
        );
        assert_eq!(shard.n_tasks(), owned.len());
        for (local, &global) in owned.iter().enumerate() {
            assert_eq!(shard.local_of(global), Some(TaskId::from_index(local)));
            assert_eq!(shard.global_of(TaskId::from_index(local)), global);
        }
        // A task of the other shard is not owned.
        let foreign = map.tasks_of(0)[0];
        assert_eq!(shard.local_of(foreign), None);
    }

    #[test]
    fn submit_and_request_speak_global_ids() {
        let tasks = lattice_tasks(16);
        let map = ShardMap::build(&tasks, 2);
        let owned = map.tasks_of(0);
        let distances = Distances::from_tasks(&tasks);
        let mut shard = Shard::new(
            0,
            &tasks,
            owned.clone(),
            pool(),
            FrameworkConfig {
                budget: 4,
                h: 2,
                ..FrameworkConfig::default()
            },
            distances,
        );
        let assignment = shard.request(&[WorkerId(0)]).unwrap();
        assert_eq!(assignment.total(), 2);
        for (_, t) in assignment.pairs() {
            assert!(owned.contains(&t), "assignment must use global ids");
        }
        let (w, t) = assignment.pairs().next().unwrap();
        let full = shard
            .submit_global(w, t, LabelBits::from_slice(&[true, false, true]))
            .unwrap();
        assert!(!full);
        assert_eq!(shard.framework().log().len(), 1);
        let (log_worker, log_task, _) = shard.answers_global().next().unwrap();
        assert_eq!((log_worker, log_task), (w, t));

        // Foreign task rejected.
        let foreign = map.tasks_of(1)[0];
        assert_eq!(
            shard
                .submit_global(WorkerId(0), foreign, LabelBits::from_slice(&[true; 3]))
                .unwrap_err(),
            CoreError::UnknownTask(foreign)
        );
    }

    #[test]
    fn fold_peer_records_events_and_ignores_stale_deltas() {
        let tasks = lattice_tasks(16);
        let map = ShardMap::build(&tasks, 2);
        let distances = Distances::from_tasks(&tasks);
        let mut a = Shard::new(
            0,
            &tasks,
            map.tasks_of(0),
            pool(),
            FrameworkConfig::default(),
            distances,
        );
        let mut b = Shard::new(
            1,
            &tasks,
            map.tasks_of(1),
            pool(),
            FrameworkConfig::default(),
            distances,
        );
        let own_task = b.global_of(crowd_core::TaskId(0));
        b.submit_global(WorkerId(0), own_task, LabelBits::from_slice(&[true; 3]))
            .unwrap();
        let published = b.publish_delta();
        assert_eq!(published.source, 1);
        assert_eq!(published.version, 1);
        assert_eq!(b.publishes(), 1);
        // Versions count publishes, not answers: a re-publish with no new
        // answers (e.g. after a hardening sweep rebuilt the statistics)
        // still supersedes the previous delta.
        assert_eq!(b.publish_delta().version, 2);

        assert!(a.fold_peer(&published));
        assert_eq!(a.gossip_events().len(), 1);
        assert_eq!(a.gossip_events()[0].position, 0);
        assert_eq!(
            a.gossip_events()[0].kind,
            GossipEventKind::Fold(published.clone())
        );
        // Re-delivery is a no-op and is not recorded.
        assert!(!a.fold_peer(&published));
        assert_eq!(a.gossip_events().len(), 1);
        // The pooled quality is visible on shard a's framework.
        assert_eq!(a.framework().peer_stats().version_of(1), Some(1));

        // A hardening sweep is recorded as a positioned event too.
        a.harden();
        assert_eq!(a.gossip_events().len(), 2);
        assert_eq!(a.gossip_events()[1].kind, GossipEventKind::FullSweep);
    }

    #[test]
    fn decisions_land_in_global_slots() {
        let tasks = lattice_tasks(9);
        let map = ShardMap::build(&tasks, 2);
        let distances = Distances::from_tasks(&tasks);
        let mut out = vec![LabelBits::zeros(3); tasks.len()];
        for s in 0..map.n_shards() {
            let shard = Shard::new(
                s,
                &tasks,
                map.tasks_of(s),
                pool(),
                FrameworkConfig::default(),
                distances,
            );
            shard.decisions_into(&mut out);
        }
        // Every slot written with the right arity.
        assert!(out.iter().all(|b| b.len() == 3));
    }
}
