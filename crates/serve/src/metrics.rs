//! Lock-free per-shard service metrics.
//!
//! Every counter is a relaxed atomic updated by the drain threads while
//! they hold the owning shard's lock (so the numbers are exact, not
//! sampled); reading never takes a lock. The `budget_remaining` mirror is
//! what request routing consults to skip exhausted shards without touching
//! their locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters for one shard.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    submits: AtomicU64,
    requests: AtomicU64,
    assigned: AtomicU64,
    em_rebuilds: AtomicU64,
    rejected: AtomicU64,
    budget_remaining: AtomicU64,
    /// The shard's full budget slice — the ceiling for every
    /// [`ShardMetrics::budget_remaining`] read. Set at construction and
    /// refreshed (via [`ShardMetrics::set_budget_slice`]) when a handoff
    /// or demand-driven rebalance moves budget between shards. The mirror
    /// is only advisory (request routing ranks shards by it), so a
    /// corrupted or stale value must never be able to advertise *more*
    /// than the slice and attract all traffic to one shard.
    budget_slice: AtomicU64,
    gossip_rounds: AtomicU64,
    gossip_folds: AtomicU64,
    /// Submit count at the last completed gossip round; the lag metric is
    /// `submits - last_gossip_at`.
    last_gossip_at: AtomicU64,
    /// Mirror of the shard's recorded out-of-stream event count (peer
    /// folds + hardening sweeps). This list grows with campaign length —
    /// one entry per absorbed fold per shard — which is exactly the growth
    /// snapshot format v3 bounds on disk (each published delta is stored
    /// once in a top-level table; events are small references) and the
    /// `snapshot_delta` / `compact` workflow keeps out of the hot
    /// serialisation path. Operators watch this alongside
    /// [`ServiceMetrics::snapshot_bytes`] to see compaction working.
    events_len: AtomicU64,
    /// Deepest the shard's ingestion queue has been since the last
    /// [`ShardMetrics::take_queue_hwm`] (updated from the enqueue path) —
    /// the burst gauge the time-averaged `queue_depth` cannot show.
    /// Reading a [`ShardMetrics::snapshot`] does *not* reset it: a JSON
    /// `/metrics` poll, a Prometheus scrape and the obs sampler can race
    /// freely and each still sees the full window. Only the explicit
    /// taker starts a new window.
    queue_hwm: AtomicU64,
    /// Resolved E-step thread count this shard's model sweeps with
    /// (`UpdatePolicy::parallelism` resolved at service start; 1 =
    /// sequential). Exposed as the `crowd_shard_em_threads` gauge.
    em_threads: AtomicU64,
    /// Answers currently held in RAM by this shard's answer log (the
    /// post-checkpoint suffix under a pruning retention policy, the whole
    /// campaign otherwise). Exposed as `crowd_shard_resident_answers`.
    resident_answers: AtomicU64,
    /// Answers truncated from the in-memory prefix by checkpoint pruning
    /// (spilled to the on-disk tier when one is configured). Exposed as
    /// `crowd_shard_pruned_answers`; `resident + pruned` is the full
    /// stream length.
    pruned_answers: AtomicU64,
}

impl ShardMetrics {
    /// Fresh counters with the shard's full budget slice remaining.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        let m = Self::default();
        m.budget_remaining.store(budget as u64, Ordering::Relaxed);
        m.budget_slice.store(budget as u64, Ordering::Relaxed);
        m.em_threads.store(1, Ordering::Relaxed);
        m
    }

    /// Refreshes the resolved E-step thread-count gauge (set once at
    /// service start from the configured parallelism knob).
    pub fn set_em_threads(&self, threads: u64) {
        self.em_threads.store(threads.max(1), Ordering::Relaxed);
    }

    /// Records an accepted answer and whether it triggered a delayed full
    /// EM rebuild.
    pub fn record_submit(&self, triggered_full_em: bool) {
        self.submits.fetch_add(1, Ordering::Relaxed);
        if triggered_full_em {
            self.em_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a served task request and the number of pairs it issued.
    pub fn record_request(&self, assigned: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.assigned.fetch_add(assigned as u64, Ordering::Relaxed);
    }

    /// Records a rejected command (validation failure, foreign task, …).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed gossip round (one publish + fold cycle) and how
    /// many peer deltas it actually absorbed. Resets the lag baseline.
    pub fn record_gossip_round(&self, folded: usize) {
        self.gossip_rounds.fetch_add(1, Ordering::Relaxed);
        self.gossip_folds
            .fetch_add(folded as u64, Ordering::Relaxed);
        self.last_gossip_at
            .store(self.submits.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Seeds the gossip counters from a replayed event stream (snapshot
    /// restore): `rounds` fold-applying rounds and `folds` absorbed
    /// deltas, with the lag baseline at `last_position` submits — so a
    /// freshly restored service does not report a spurious full-history
    /// gossip lag. Publish-only rounds are not persisted, so the restored
    /// round count is a lower bound on the original's.
    pub fn seed_gossip(&self, rounds: u64, folds: u64, last_position: u64) {
        self.gossip_rounds.store(rounds, Ordering::Relaxed);
        self.gossip_folds.store(folds, Ordering::Relaxed);
        self.last_gossip_at.store(last_position, Ordering::Relaxed);
    }

    /// Seeds the submit-side counters for answers that were bulk-loaded
    /// rather than replayed (v3 restore-from-parameters): `submits`
    /// answers before the checkpoint and the `em_rebuilds` the original
    /// deterministically triggered over that prefix.
    pub fn seed_submits(&self, submits: u64, em_rebuilds: u64) {
        self.submits.store(submits, Ordering::Relaxed);
        self.em_rebuilds.store(em_rebuilds, Ordering::Relaxed);
    }

    /// Refreshes the recorded-event-count mirror (see the field docs on
    /// why operators watch this).
    pub fn set_events_len(&self, len: u64) {
        self.events_len.store(len, Ordering::Relaxed);
    }

    /// The recorded-event-count mirror, without the snapshot side
    /// effects (the self-sampler polls this; a full
    /// [`ShardMetrics::snapshot`] would reset the high-water mark).
    #[must_use]
    pub fn events_len(&self) -> u64 {
        self.events_len.load(Ordering::Relaxed)
    }

    /// Folds an observed ingestion-queue depth into the high-water mark
    /// (called from the enqueue path, after the command lands).
    pub fn note_queue_depth(&self, depth: usize) {
        self.queue_hwm.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Takes the queue high-water mark and starts a new window. This is
    /// the **only** reset path: exposition and the sampler read the mark
    /// through [`ShardMetrics::snapshot`] without consuming it, so
    /// concurrent readers cannot clobber each other's window.
    pub fn take_queue_hwm(&self) -> u64 {
        self.queue_hwm.swap(0, Ordering::Relaxed)
    }

    /// Refreshes the resident/pruned answer-count gauges (updated under
    /// the shard lock after every applied answer and after each prune).
    pub fn set_answer_tiers(&self, resident: usize, pruned: usize) {
        self.resident_answers
            .store(resident as u64, Ordering::Relaxed);
        self.pruned_answers.store(pruned as u64, Ordering::Relaxed);
    }

    /// Refreshes the lock-free budget mirror after a charge. Values above
    /// the shard's slice are clamped on read, never believed.
    pub fn set_budget_remaining(&self, remaining: usize) {
        self.budget_remaining
            .store(remaining as u64, Ordering::Relaxed);
    }

    /// Refreshes the budget-slice ceiling after a handoff or rebalance
    /// moves budget between shards (always followed by a
    /// [`ShardMetrics::set_budget_remaining`] call with the authoritative
    /// remaining value).
    pub fn set_budget_slice(&self, slice: usize) {
        self.budget_slice.store(slice as u64, Ordering::Relaxed);
    }

    /// (worker, task) pairs issued by this shard so far — the raw demand
    /// signal the budget rebalancer weighs shards by.
    #[must_use]
    pub fn assigned(&self) -> u64 {
        self.assigned.load(Ordering::Relaxed)
    }

    /// The mirrored remaining budget (may lag the authoritative value by
    /// one in-flight request), clamped to the shard's budget slice.
    ///
    /// The clamp is load-bearing: request routing sends roaming workers to
    /// the shard advertising the most remaining budget, so a corrupted
    /// mirror (or a `u64` that does not fit this platform's `usize`) must
    /// saturate at the true slice rather than at `usize::MAX` — the latter
    /// would permanently advertise the broken shard as the fattest one and
    /// attract all traffic to it.
    #[must_use]
    pub fn budget_remaining(&self) -> usize {
        let slice = self.budget_slice.load(Ordering::Relaxed);
        let raw = self.budget_remaining.load(Ordering::Relaxed).min(slice);
        // `slice` was stored from a `usize`, so after the clamp the
        // conversion cannot fail; saturate anyway rather than panic.
        usize::try_from(raw).unwrap_or(usize::MAX)
    }

    /// Snapshots the counters. The shard's ingestion queue belongs to the
    /// service, not to these counters, so the caller supplies its current
    /// `queue_depth` and this method records it alongside. Reading a
    /// snapshot has **no side effects** — in particular the queue
    /// high-water mark is *not* reset (it used to be, which let a JSON
    /// poll, a Prometheus scrape and the obs sampler silently steal each
    /// other's burst window); call [`ShardMetrics::take_queue_hwm`] to
    /// close a window explicitly.
    #[must_use]
    pub fn snapshot(&self, shard: usize, queue_depth: usize) -> ShardMetricsSnapshot {
        let submits = self.submits.load(Ordering::Relaxed);
        ShardMetricsSnapshot {
            queue_hwm: self.queue_hwm.load(Ordering::Relaxed),
            shard,
            submits,
            requests: self.requests.load(Ordering::Relaxed),
            assigned: self.assigned.load(Ordering::Relaxed),
            em_rebuilds: self.em_rebuilds.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            budget_slice: self.budget_slice.load(Ordering::Relaxed),
            budget_remaining: self.budget_remaining.load(Ordering::Relaxed),
            gossip_rounds: self.gossip_rounds.load(Ordering::Relaxed),
            gossip_folds: self.gossip_folds.load(Ordering::Relaxed),
            gossip_lag: submits.saturating_sub(self.last_gossip_at.load(Ordering::Relaxed)),
            events_len: self.events_len.load(Ordering::Relaxed),
            queue_depth,
            em_threads: self.em_threads.load(Ordering::Relaxed),
            resident_answers: self.resident_answers.load(Ordering::Relaxed),
            pruned_answers: self.pruned_answers.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMetricsSnapshot {
    /// Shard id.
    pub shard: usize,
    /// Answers accepted.
    pub submits: u64,
    /// Task requests served.
    pub requests: u64,
    /// (worker, task) pairs issued.
    pub assigned: u64,
    /// Delayed full-EM rebuilds triggered.
    pub em_rebuilds: u64,
    /// Commands rejected.
    pub rejected: u64,
    /// The shard's budget slice (moves under handoff and rebalance).
    pub budget_slice: u64,
    /// Mirrored remaining budget.
    pub budget_remaining: u64,
    /// Completed gossip rounds (publish + fold cycles).
    pub gossip_rounds: u64,
    /// Peer deltas actually absorbed across all gossip rounds.
    pub gossip_folds: u64,
    /// Answers applied since the last completed gossip round — how stale
    /// this shard's view of its peers' worker statistics is, in submits.
    pub gossip_lag: u64,
    /// Recorded out-of-stream model events (peer folds + hardening
    /// sweeps) held by this shard. Grows roughly as
    /// `submits / gossip_every × (n_shards − 1)` plus one per hardening
    /// sweep; snapshot format v3 keeps the *serialised* cost of this list
    /// small (events are `(source, version)` references into a deduplicated
    /// delta table), and the `snapshot_delta` / `compact` workflow bounds
    /// what each incremental snapshot re-ships.
    pub events_len: u64,
    /// Commands waiting in this shard's ingestion queue at snapshot time.
    pub queue_depth: usize,
    /// Deepest the queue has been in the current high-water window
    /// (snapshots never reset it; only
    /// [`ShardMetrics::take_queue_hwm`] closes a window).
    pub queue_hwm: u64,
    /// Resolved E-step thread count the shard's model sweeps with (1 =
    /// sequential).
    pub em_threads: u64,
    /// Answers currently resident in RAM on this shard (the
    /// post-checkpoint suffix when checkpoint pruning is on).
    pub resident_answers: u64,
    /// Answers truncated from the in-memory prefix by checkpoint pruning;
    /// `resident_answers + pruned_answers` is the full stream length.
    pub pruned_answers: u64,
}

/// A point-in-time view of the whole service.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardMetricsSnapshot>,
    /// Commands currently waiting in the ingestion queue.
    pub queue_depth: usize,
    /// Commands accepted into the queue since startup.
    pub enqueued: u64,
    /// Commands fully applied since startup.
    pub processed: u64,
    /// Byte length of the most recent snapshot document rendered through
    /// [`LabellingService::snapshot_json`](crate::LabellingService::snapshot_json)
    /// (0 until one is taken). Together with the per-shard
    /// [`ShardMetricsSnapshot::events_len`] this lets operators watch the
    /// v3 delta-deduplicated format and the `compact()` workflow keep
    /// persisted state bounded.
    pub snapshot_bytes: u64,
    /// Commands whose routed shard no longer owned their task when they
    /// drained (a split/merge republished the map while they were in
    /// flight) and that were re-resolved against the newer map version.
    /// A steadily-rising value under a static map indicates a bug.
    pub rerouted: u64,
    /// Version of the shard map commands are currently routed under
    /// (starts at 1; each split/merge/handoff publishes version + 1).
    pub map_version: u64,
    /// Wall-clock time since the service started.
    pub uptime: Duration,
}

impl ServiceMetrics {
    /// Total accepted answers across shards.
    #[must_use]
    pub fn total_submits(&self) -> u64 {
        self.shards.iter().map(|s| s.submits).sum()
    }

    /// Total issued (worker, task) pairs across shards.
    #[must_use]
    pub fn total_assigned(&self) -> u64 {
        self.shards.iter().map(|s| s.assigned).sum()
    }

    /// Mean accepted answers per second of uptime.
    #[must_use]
    pub fn submits_per_sec(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            {
                self.total_submits() as f64 / secs
            }
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ShardMetrics::with_budget(10);
        m.record_submit(false);
        m.record_submit(true);
        m.record_request(4);
        m.record_rejected();
        m.set_budget_remaining(6);
        m.record_gossip_round(3);
        m.set_events_len(4);
        m.note_queue_depth(7);
        m.note_queue_depth(3); // below the mark: no effect
        let s = m.snapshot(3, 2);
        assert_eq!(s.shard, 3);
        assert_eq!(s.submits, 2);
        assert_eq!(s.em_rebuilds, 1);
        assert_eq!(s.requests, 1);
        assert_eq!(s.assigned, 4);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.budget_remaining, 6);
        assert_eq!(s.gossip_rounds, 1);
        assert_eq!(s.gossip_folds, 3);
        assert_eq!(s.gossip_lag, 0, "round just completed");
        assert_eq!(s.events_len, 4);
        assert_eq!(m.events_len(), 4);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_hwm, 7);
        assert_eq!(s.em_threads, 1);
        m.set_em_threads(4);
        assert_eq!(m.snapshot(3, 0).em_threads, 4);
        m.set_em_threads(0); // the gauge floors at 1 (sequential)
        assert_eq!(m.snapshot(3, 0).em_threads, 1);
        assert_eq!(m.budget_remaining(), 6);
        // Lag grows with submits applied after the round.
        m.record_submit(false);
        let s2 = m.snapshot(3, 0);
        assert_eq!(s2.gossip_lag, 1);
        // Snapshots are side-effect free: the high-water mark survives
        // repeated read-outs until explicitly taken.
        assert_eq!(s2.queue_hwm, 7);
        assert_eq!(m.take_queue_hwm(), 7);
        assert_eq!(m.snapshot(3, 0).queue_hwm, 0);
    }

    #[test]
    fn two_readers_both_see_the_full_hwm_window() {
        // Regression: snapshot() used to swap the high-water mark to 0,
        // so a JSON /metrics poll racing a Prometheus scrape (and the obs
        // sampler thread) each saw only part of the burst window. Both
        // readers must now observe the same mark; only the explicit taker
        // starts a new window.
        let m = ShardMetrics::with_budget(10);
        m.note_queue_depth(9);
        let json_reader = m.snapshot(0, 0);
        let prom_reader = m.snapshot(0, 0);
        assert_eq!(json_reader.queue_hwm, 9);
        assert_eq!(
            prom_reader.queue_hwm, 9,
            "second reader must not find a clobbered mark"
        );
        // A deeper burst keeps folding into the same window.
        m.note_queue_depth(11);
        assert_eq!(m.snapshot(0, 0).queue_hwm, 11);
        // The taker closes the window exactly once.
        assert_eq!(m.take_queue_hwm(), 11);
        assert_eq!(m.take_queue_hwm(), 0);
        assert_eq!(m.snapshot(0, 0).queue_hwm, 0);
    }

    #[test]
    fn answer_tier_gauges_track_resident_and_pruned() {
        let m = ShardMetrics::with_budget(10);
        let s = m.snapshot(0, 0);
        assert_eq!((s.resident_answers, s.pruned_answers), (0, 0));
        m.set_answer_tiers(120, 0);
        let s = m.snapshot(0, 0);
        assert_eq!((s.resident_answers, s.pruned_answers), (120, 0));
        m.set_answer_tiers(20, 100);
        let s = m.snapshot(0, 0);
        assert_eq!((s.resident_answers, s.pruned_answers), (20, 100));
    }

    #[test]
    fn budget_mirror_clamps_to_the_slice() {
        let m = ShardMetrics::with_budget(10);
        assert_eq!(m.budget_remaining(), 10);
        // A corrupted mirror can never advertise more than the slice.
        m.set_budget_remaining(usize::MAX);
        assert_eq!(m.budget_remaining(), 10);
        m.set_budget_remaining(3);
        assert_eq!(m.budget_remaining(), 3);
        m.set_budget_remaining(0);
        assert_eq!(m.budget_remaining(), 0);
    }

    #[test]
    fn service_rollups() {
        let a = ShardMetrics::with_budget(5);
        a.record_submit(false);
        a.record_request(2);
        let b = ShardMetrics::with_budget(5);
        b.record_submit(false);
        b.record_submit(false);
        let metrics = ServiceMetrics {
            shards: vec![a.snapshot(0, 0), b.snapshot(1, 0)],
            queue_depth: 0,
            enqueued: 5,
            processed: 5,
            snapshot_bytes: 0,
            rerouted: 0,
            map_version: 1,
            uptime: Duration::from_secs(2),
        };
        assert_eq!(metrics.total_submits(), 3);
        assert_eq!(metrics.total_assigned(), 2);
        assert!((metrics.submits_per_sec() - 1.5).abs() < 1e-12);
    }
}
