//! Serve-layer observability: the per-service [`ObsHub`] and the bridge
//! implementing [`crowd_core::Recorder`] over it.
//!
//! Every [`LabellingService`](crate::LabellingService) owns one hub. The
//! drain threads record shard queue-wait and per-answer apply time into
//! its histograms; the core recorder bridge feeds EM-rebuild (split
//! dirty vs full sweep) and assignment timings; the snapshot paths
//! record capture/restore durations; a periodic self-sampler thread
//! appends queue-depth and event-log-length gauges. The trace ring
//! follows individual labelling requests across threads (see
//! [`crowd_obs::TraceBuf`]) and is drained by `GET /debug/trace`.
//!
//! The hub is process-local by design: snapshots do **not** serialize
//! it, and a restored service starts a fresh one (documented in
//! `docs/OBSERVABILITY.md`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crowd_core::Recorder;
use crowd_obs::{GaugeSeries, Histogram, TraceBuf};

/// Buffered trace events before the ring drops the oldest.
const TRACE_CAP: usize = 4096;
/// Buffered self-sampler points per gauge series.
const SERIES_CAP: usize = 512;

/// All observability state for one running service.
#[derive(Debug)]
pub struct ObsHub {
    /// Time commands spent waiting in their shard's ingestion queue.
    pub queue_wait: Histogram,
    /// Per-answer apply time under the shard write lock (includes any
    /// incremental model update; a triggered delayed rebuild shows up
    /// here *and* in the EM histograms).
    pub apply: Histogram,
    /// Full-sweep EM rebuild durations.
    pub em_full: Histogram,
    /// Dirty-set EM rebuild durations.
    pub em_dirty: Histogram,
    /// Assignment-round durations (the assigner's inner loop).
    pub assign: Histogram,
    /// Gossip publish + fold round durations.
    pub gossip_round: Histogram,
    /// Snapshot capture (quiesce + render) durations.
    pub snapshot: Histogram,
    /// Snapshot restore durations (recorded into the *restored*
    /// service's hub).
    pub restore: Histogram,
    /// The request trace ring (span ids across HTTP → enqueue → drain →
    /// EM → gossip fold).
    pub trace: TraceBuf,
    /// Self-sampled total ingestion-queue depth over time.
    pub queue_depth_series: GaugeSeries,
    /// Self-sampled total recorded-event-log length over time.
    pub events_len_series: GaugeSeries,
    /// Effective E-step thread count of the most recent EM rebuild (1 =
    /// sequential; exposed as the `crowd_shard_em_threads` gauge and as
    /// the `threads` label on the EM histograms).
    pub em_threads: AtomicU64,
}

impl ObsHub {
    /// A fresh hub with empty histograms and rings.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue_wait: Histogram::new(),
            apply: Histogram::new(),
            em_full: Histogram::new(),
            em_dirty: Histogram::new(),
            assign: Histogram::new(),
            gossip_round: Histogram::new(),
            snapshot: Histogram::new(),
            restore: Histogram::new(),
            trace: TraceBuf::new(TRACE_CAP),
            queue_depth_series: GaugeSeries::new(SERIES_CAP),
            events_len_series: GaugeSeries::new(SERIES_CAP),
            em_threads: AtomicU64::new(1),
        }
    }
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::new()
    }
}

/// Bridges [`crowd_core::Recorder`] onto an [`ObsHub`]: attached to
/// every shard's framework at service construction, so EM rebuilds and
/// assignment rounds inside the core land in the hub's histograms.
#[derive(Debug)]
pub struct CoreRecorder {
    hub: Arc<ObsHub>,
}

impl CoreRecorder {
    /// A recorder feeding `hub`.
    #[must_use]
    pub fn new(hub: Arc<ObsHub>) -> Self {
        Self { hub }
    }
}

impl Recorder for CoreRecorder {
    fn em_rebuild(&self, took: Duration, full_sweep: bool, _answers_swept: usize, threads: usize) {
        self.hub.em_threads.store(threads as u64, Ordering::Relaxed);
        if full_sweep {
            self.hub.em_full.record_duration(took);
        } else {
            self.hub.em_dirty.record_duration(took);
        }
    }

    fn assignment(&self, took: Duration, _pairs: usize) {
        self.hub.assign.record_duration(took);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_recorder_splits_em_by_sweep_kind() {
        let hub = Arc::new(ObsHub::new());
        let rec = CoreRecorder::new(Arc::clone(&hub));
        rec.em_rebuild(Duration::from_micros(5), true, 100, 4);
        rec.em_rebuild(Duration::from_micros(2), false, 10, 1);
        rec.em_rebuild(Duration::from_micros(3), false, 12, 1);
        rec.assignment(Duration::from_micros(1), 4);
        assert_eq!(hub.em_full.count(), 1);
        assert_eq!(hub.em_dirty.count(), 2);
        assert_eq!(hub.assign.count(), 1);
        assert_eq!(hub.em_full.sum(), 5_000);
        assert_eq!(hub.em_threads.load(Ordering::Relaxed), 1);
    }
}
