//! A small HTTP/1.1 wire protocol: request reading and response writing
//! over a blocking [`TcpStream`].
//!
//! The build container has no registry access, so there is no hyper/axum —
//! and the service needs only a narrow slice of the protocol anyway:
//! `Content-Length`-framed requests, keep-alive, and compact JSON
//! responses. The reader is incremental (it accumulates bytes across
//! short read-timeout polls so a connection can notice server shutdown
//! while idle) and enforces hard limits on head and body size before
//! buffering either.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Hard ceiling on the time a started request may take to arrive fully.
const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// Byte limits and timeouts for one connection.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Limits {
    /// Maximum bytes for the request line plus headers.
    pub max_head_bytes: usize,
    /// Maximum bytes for a request body.
    pub max_body_bytes: usize,
    /// How long an idle keep-alive connection is held open.
    pub keep_alive: Duration,
}

/// One parsed request.
#[derive(Debug)]
pub(crate) struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string.
    pub path: String,
    /// The raw query string after `?` (empty when absent).
    pub query: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// The `Content-Length`-framed body (possibly empty).
    pub body: Vec<u8>,
}

impl Request {
    /// Whether the query string contains `key=value` as one `&`-separated
    /// parameter (exact match, no percent-decoding — the server's query
    /// vocabulary is ASCII literals like `format=prometheus`).
    pub fn query_has(&self, key: &str, value: &str) -> bool {
        self.query
            .split('&')
            .any(|pair| pair.split_once('=') == Some((key, value)))
    }

    /// The value of the first `key=value` query parameter (same literal
    /// vocabulary as [`Request::query_has`]; no percent-decoding).
    pub fn query_get(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// A protocol-level failure that maps straight to a status code. After
/// writing it the connection must close: the stream may hold unread bytes
/// of the offending request.
#[derive(Debug)]
pub(crate) struct ProtoError {
    /// Status code to answer with (400, 408, 413, 431, 501, 505).
    pub status: u16,
    /// Human-readable reason for the error body.
    pub msg: String,
}

impl ProtoError {
    fn new(status: u16, msg: impl Into<String>) -> Self {
        Self {
            status,
            msg: msg.into(),
        }
    }
}

/// Reads the next request off `stream`, carrying pipelined leftovers in
/// `carry` between calls.
///
/// Returns `Ok(None)` on a clean end of the connection: the peer closed
/// between requests, the keep-alive idle window expired, or the server is
/// shutting down. `Err` carries a status the caller should write before
/// closing.
pub(crate) fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    limits: &Limits,
    shutdown: &AtomicBool,
) -> Result<Option<Request>, ProtoError> {
    let started = Instant::now();
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(head_len) = find_head_end(carry) {
            let head = parse_head(&carry[..head_len], limits)?;
            let total = head_len + head.content_length;
            while carry.len() < total {
                match stream.read(&mut chunk) {
                    Ok(0) => return Err(ProtoError::new(400, "request body truncated")),
                    Ok(n) => carry.extend_from_slice(&chunk[..n]),
                    Err(e) if is_timeout(&e) => {
                        if started.elapsed() > REQUEST_DEADLINE {
                            return Err(ProtoError::new(408, "request body timed out"));
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return Ok(None),
                }
            }
            let mut rest = carry.split_off(total);
            let body = carry[head_len..].to_vec();
            std::mem::swap(carry, &mut rest);
            return Ok(Some(Request {
                method: head.method,
                path: head.path,
                query: head.query,
                keep_alive: head.keep_alive,
                body,
            }));
        }
        if carry.len() > limits.max_head_bytes {
            return Err(ProtoError::new(431, "request head too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if carry.is_empty() {
                    Ok(None)
                } else {
                    Err(ProtoError::new(400, "request head truncated"))
                };
            }
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Acquire) && carry.is_empty() {
                    return Ok(None);
                }
                if carry.is_empty() {
                    if started.elapsed() > limits.keep_alive {
                        return Ok(None);
                    }
                } else if started.elapsed() > REQUEST_DEADLINE {
                    return Err(ProtoError::new(408, "request head timed out"));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Ok(None),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Position just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    query: String,
    keep_alive: bool,
    content_length: usize,
}

fn parse_head(head: &[u8], limits: &Limits) -> Result<Head, ProtoError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| ProtoError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ProtoError::new(400, "malformed request line"));
    };
    if parts.next().is_some() || method.is_empty() || target.is_empty() {
        return Err(ProtoError::new(400, "malformed request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return Err(ProtoError::new(
                505,
                "only HTTP/1.0 and HTTP/1.1 are supported",
            ))
        }
    };

    let mut content_length = 0usize;
    let mut connection: Option<String> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ProtoError::new(400, "malformed header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ProtoError::new(400, "invalid Content-Length"))?;
            }
            "transfer-encoding" => {
                return Err(ProtoError::new(501, "Transfer-Encoding is not supported"));
            }
            "connection" => connection = Some(value.to_ascii_lowercase()),
            _ => {}
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(ProtoError::new(413, "request body too large"));
    }

    // HTTP/1.1 defaults to keep-alive, 1.0 to close.
    let keep_alive = match connection.as_deref() {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => http11,
    };

    let (path, query) = target
        .split_once('?')
        .map_or((target, ""), |(path, query)| (path, query));
    Ok(Head {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        keep_alive,
        content_length,
    })
}

/// One response, always `Content-Length`-framed.
#[derive(Debug)]
pub(crate) struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value (JSON everywhere except the
    /// Prometheus exposition).
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A plain-text response (the Prometheus exposition format is
    /// `text/plain; version=0.0.4`).
    pub fn text(status: u16, content_type: &'static str, body: String) -> Self {
        Self {
            status,
            content_type,
            body,
        }
    }

    /// A JSON error body `{"error": msg}` with the given status.
    pub fn error(status: u16, msg: &str) -> Self {
        Self::json(
            status,
            crate::json::Json::Obj(vec![(
                "error".to_string(),
                crate::json::Json::Str(msg.to_string()),
            )])
            .render(),
        )
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes `response`, with `Connection: keep-alive`/`close` as requested.
pub(crate) fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits {
            max_head_bytes: 1024,
            max_body_bytes: 4096,
            keep_alive: Duration::from_secs(5),
        }
    }

    #[test]
    fn head_parses_with_body_framing() {
        let head = parse_head(
            b"POST /labels HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\n",
            &limits(),
        )
        .unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/labels");
        assert_eq!(head.content_length, 12);
        assert!(head.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_and_http10_semantics() {
        let close = parse_head(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", &limits()).unwrap();
        assert!(!close.keep_alive);
        let old = parse_head(b"GET / HTTP/1.0\r\n\r\n", &limits()).unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let kept = parse_head(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
            &limits(),
        )
        .unwrap();
        assert!(kept.keep_alive);
    }

    #[test]
    fn query_strings_are_stripped_but_kept() {
        let head = parse_head(b"GET /metrics?verbose=1 HTTP/1.1\r\n\r\n", &limits()).unwrap();
        assert_eq!(head.path, "/metrics");
        assert_eq!(head.query, "verbose=1");
        let bare = parse_head(b"GET /metrics HTTP/1.1\r\n\r\n", &limits()).unwrap();
        assert_eq!(bare.query, "");
    }

    #[test]
    fn query_parameters_match_exactly() {
        let req = Request {
            method: "GET".into(),
            path: "/metrics".into(),
            query: "verbose=1&format=prometheus".into(),
            keep_alive: true,
            body: Vec::new(),
        };
        assert!(req.query_has("format", "prometheus"));
        assert!(req.query_has("verbose", "1"));
        assert!(!req.query_has("format", "prom"));
        assert!(!req.query_has("ormat", "prometheus"));
    }

    #[test]
    fn malformed_heads_are_rejected_with_status() {
        for (raw, status) in [
            (&b"GET\r\n\r\n"[..], 400),
            (b"GET / HTTP/2\r\n\r\n", 505),
            (b"GET / HTTP/1.1\r\nContent-Length: many\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nbroken header\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            (b"POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n", 413),
        ] {
            let err = parse_head(raw, &limits()).unwrap_err();
            assert_eq!(err.status, status, "{raw:?}");
        }
    }

    #[test]
    fn head_end_is_found_only_when_complete() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r"), None);
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
    }
}
