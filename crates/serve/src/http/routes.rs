//! Route dispatch and handlers.
//!
//! Every handler speaks the same JSON dialect as the snapshot format
//! ([`crate::json::Json`]) and maps service errors onto HTTP statuses:
//!
//! | condition                              | status |
//! |----------------------------------------|--------|
//! | malformed JSON / wrong shape           | 400    |
//! | unknown task, worker or route          | 404    |
//! | method not allowed on a known route    | 405    |
//! | duplicate answer                       | 409    |
//! | budget exhausted                       | 409    |
//! | service shut down / being replaced     | 503    |
//!
//! Mutating handlers clone a [`ServiceHandle`] under a short read lock and
//! release the lock before doing any blocking work, so an
//! `/admin/restore` (which swaps the service under the write lock) is
//! never blocked behind a slow in-flight request.

use std::sync::atomic::Ordering;

use crowd_core::{Assignment, CoreError, LabelBits, TaskId, Worker, WorkerId};
use crowd_geo::Point;
use crowd_obs::{Histogram, PromText};

use crate::json::Json;
use crate::metrics::ServiceMetrics;
use crate::obs::ObsHub;
use crate::service::{HandoffReport, LabellingService, ServeError};
use crate::snapshot::ServiceSnapshot;

use super::proto::{Request, Response};
use super::{Route, ServerState};

/// Counts and ids all stay far below 2⁵³, where `f64` is exact.
#[allow(clippy::cast_precision_loss)]
fn num(n: usize) -> Json {
    Json::Num(n as f64)
}

#[allow(clippy::cast_precision_loss)]
fn num64(n: u64) -> Json {
    Json::Num(n as f64)
}

fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Routes one request to its handler. Returns the matched [`Route`] so
/// the connection loop can attribute the handler's latency; `span` (0 =
/// untraced) threads the request's trace span into the enqueueing
/// handlers.
pub(crate) fn dispatch(state: &ServerState, req: &Request, span: u64) -> (Route, Response) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let route = match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["tasks", "request"]) => Route::TasksRequest,
        ("POST", ["labels"]) => Route::Labels,
        ("GET", ["campaign", "progress"]) => Route::Progress,
        ("GET", ["workers", _, "stats"]) => Route::WorkerStats,
        ("GET", ["metrics"]) => Route::Metrics,
        ("GET", ["healthz"]) => Route::Healthz,
        ("GET", ["debug", "trace"]) => Route::DebugTrace,
        ("POST", ["admin", "snapshot"]) => Route::AdminSnapshot,
        ("POST", ["admin", "restore"]) => Route::AdminRestore,
        ("POST", ["admin", "prune"]) => Route::AdminPrune,
        ("POST", ["workers", "register"]) => Route::WorkersRegister,
        ("POST", ["admin", "split"]) => Route::AdminSplit,
        ("POST", ["admin", "merge"]) => Route::AdminMerge,
        ("POST", ["admin", "rebalance"]) => Route::AdminRebalance,
        ("POST", ["campaigns"]) => Route::CampaignsCreate,
        ("GET", ["campaigns"]) => Route::CampaignsList,
        ("POST", ["campaigns", _, "close"]) => Route::CampaignsClose,
        _ => Route::Other,
    };
    // The routing decision is a span stage of its own, recorded before
    // the handler runs so it sorts ahead of "enqueue".
    if span != 0 {
        if let Some(svc) = state.service.read().as_ref() {
            svc.obs().trace.record(span, "route", None);
        }
    }
    let response = match route {
        Route::TasksRequest => tasks_request(state, req, span),
        Route::Labels => labels(state, req, span),
        Route::Progress => progress(state, req),
        Route::WorkerStats => worker_stats(state, req, segments[1]),
        Route::Metrics => metrics(state, req),
        Route::Healthz => Response::json(200, obj(vec![("ok", Json::Bool(true))]).render()),
        Route::DebugTrace => debug_trace(state, req),
        Route::AdminSnapshot => admin_snapshot(state, req),
        Route::AdminRestore => admin_restore(state, req),
        Route::AdminPrune => admin_prune(state, req),
        Route::WorkersRegister => workers_register(state, req),
        Route::AdminSplit => admin_reassign(state, req, true),
        Route::AdminMerge => admin_reassign(state, req, false),
        Route::AdminRebalance => admin_rebalance(state, req),
        Route::CampaignsCreate => campaigns_create(state, req),
        Route::CampaignsList => campaigns_list(state),
        Route::CampaignsClose => campaigns_close(state, segments[1]),
        // Known paths with the wrong method answer 405, not 404.
        Route::Other => match segments.as_slice() {
            ["tasks", "request"]
            | ["labels"]
            | ["campaign", "progress"]
            | ["campaigns"]
            | ["campaigns", _, "close"]
            | ["metrics"]
            | ["healthz"]
            | ["debug", "trace"]
            | ["workers", _, "stats"]
            | ["workers", "register"]
            | ["admin", "snapshot"]
            | ["admin", "restore"]
            | ["admin", "prune"]
            | ["admin", "split"]
            | ["admin", "merge"]
            | ["admin", "rebalance"] => Response::error(405, "method not allowed"),
            _ => Response::error(404, "no such route"),
        },
    };
    (route, response)
}

/// Maps a service error to its HTTP status.
fn serve_error(e: &ServeError) -> Response {
    let status = match e {
        ServeError::Closed => 503,
        ServeError::Core(CoreError::BudgetExhausted | CoreError::DuplicateAnswer { .. }) => 409,
        ServeError::Core(CoreError::UnknownTask(_) | CoreError::UnknownWorker(_)) => 404,
        ServeError::Core(_) => 400,
        ServeError::Rejected(_) => 409,
    };
    Response::error(status, &e.to_string())
}

/// Parses the request body as a JSON document (400 on failure).
fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "body is not valid UTF-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, &format!("malformed JSON: {e}")))
}

/// Runs `f` with the service under the read lock (503 when closed).
fn with_service<T>(
    state: &ServerState,
    f: impl FnOnce(&LabellingService) -> T,
) -> Result<T, Response> {
    state
        .service
        .read()
        .as_ref()
        .map(f)
        .ok_or_else(|| Response::error(503, "labelling service is closed"))
}

/// Parses the `?campaign=N` selector (`None` = the primary campaign).
fn campaign_param(req: &Request) -> Result<Option<u32>, Response> {
    match req.query_get("campaign") {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u32>()
            .map(Some)
            .map_err(|_| Response::error(400, "campaign must be a non-negative integer")),
    }
}

/// Runs `f` with the campaign selected by `?campaign=N`: the primary
/// service when the parameter is absent or names its id, otherwise the
/// matching secondary campaign on the shared pool (404 when unknown).
fn with_campaign<T>(
    state: &ServerState,
    req: &Request,
    f: impl FnOnce(&LabellingService) -> T,
) -> Result<T, Response> {
    let Some(id) = campaign_param(req)? else {
        return with_service(state, f);
    };
    {
        let guard = state.service.read();
        if let Some(svc) = guard.as_ref() {
            if svc.campaign_id() == id {
                return Ok(f(svc));
            }
        }
    }
    state
        .campaigns
        .read()
        .iter()
        .find(|c| c.campaign_id() == id)
        .map(f)
        .ok_or_else(|| Response::error(404, &format!("no campaign {id}")))
}

fn assignment_json(a: &Assignment) -> Json {
    Json::Arr(
        a.per_worker()
            .iter()
            .map(|(w, ts)| {
                obj(vec![
                    ("worker", num(w.index())),
                    (
                        "tasks",
                        Json::Arr(ts.iter().map(|t| num(t.index())).collect()),
                    ),
                ])
            })
            .collect(),
    )
}

/// `POST /tasks/request` — body `{"workers": [0, 1, …]}`. Blocks for the
/// assignment (the request must roam shards and consult the model), then
/// answers `{"assignments": […], "issued": n}`.
fn tasks_request(state: &ServerState, req: &Request, span: u64) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(ids) = body.get("workers").and_then(Json::as_arr) else {
        return Response::error(400, "expected {\"workers\": [ids]}");
    };
    // Ids validate against the campaign's *live* pool — mid-campaign
    // registration grows it past the startup roster.
    let (handle, n_workers) = match with_campaign(state, req, |svc| (svc.handle(), svc.n_workers()))
    {
        Ok(pair) => pair,
        Err(r) => return r,
    };
    let mut workers = Vec::with_capacity(ids.len());
    for id in ids {
        let Some(idx) = id.as_usize() else {
            return Response::error(400, "worker ids must be non-negative integers");
        };
        if idx >= n_workers {
            return Response::error(404, &format!("unknown worker {idx}"));
        }
        workers.push(WorkerId::from_index(idx));
    }
    match handle.request_tasks_traced(&workers, span) {
        Ok(a) => Response::json(
            200,
            obj(vec![
                ("assignments", assignment_json(&a)),
                ("issued", num(a.total())),
            ])
            .render(),
        ),
        Err(e) => serve_error(&e),
    }
}

/// One parsed label submission, validated against the campaign's live
/// worker count (registration grows it past `ServerState::workers`).
fn parse_label(
    state: &ServerState,
    n_workers: usize,
    entry: &Json,
) -> Result<(WorkerId, TaskId, LabelBits), String> {
    let worker = entry
        .get("worker")
        .and_then(Json::as_usize)
        .ok_or("label needs a \"worker\" id")?;
    let task = entry
        .get("task")
        .and_then(Json::as_usize)
        .ok_or("label needs a \"task\" id")?;
    let bits = entry
        .get("bits")
        .and_then(Json::as_str)
        .ok_or("label needs a \"bits\" string of 0s and 1s")?;
    if worker >= n_workers {
        return Err(format!("unknown worker {worker}"));
    }
    let task_id = TaskId::from_index(task);
    let Some(task_ref) = state.tasks.get(task_id) else {
        return Err(format!("unknown task {task}"));
    };
    if bits.len() != task_ref.n_labels() {
        return Err(format!(
            "task {task} has {} labels but \"bits\" carries {}",
            task_ref.n_labels(),
            bits.len()
        ));
    }
    let mut values = Vec::with_capacity(bits.len());
    for c in bits.chars() {
        match c {
            '0' => values.push(false),
            '1' => values.push(true),
            _ => return Err("\"bits\" must contain only 0 and 1".to_string()),
        }
    }
    Ok((
        WorkerId::from_index(worker),
        task_id,
        LabelBits::from_slice(&values),
    ))
}

/// `POST /labels` — body is one label object or an array of them:
/// `{"worker": 0, "task": 3, "bits": "101"}`. Answers are validated here
/// (ids in range, bit arity) and then enqueued **fire-and-forget** onto
/// their shards' ingestion queues; the pending-assignment reservation on
/// each shard guarantees a follow-up `/tasks/request` never re-issues a
/// pair whose answer is still queued. Nothing is enqueued unless the whole
/// batch validates. Answers `202 {"accepted": n}`.
///
/// With `?wait=1` each answer instead blocks until its shard has applied
/// it, answering `200 {"accepted": n}` — and surfacing shard-side
/// rejections that fire-and-forget mode only counts in metrics: a
/// duplicate `(worker, task)` pair answers `409`. This is the safe mode
/// for clients re-submitting after an `/admin/restore`, which deliberately
/// drops in-flight reservations — a pair whose answer already landed
/// before the snapshot gets a clean `409`, never a crash, while a pair
/// that was still queued (lost with the snapshotted process) is accepted.
fn labels(state: &ServerState, req: &Request, span: u64) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let entries: Vec<&Json> = match &body {
        Json::Arr(items) => items.iter().collect(),
        entry @ Json::Obj(_) => vec![entry],
        _ => return Response::error(400, "expected a label object or an array of them"),
    };
    if entries.is_empty() {
        return Response::error(400, "empty label batch");
    }
    let (handle, n_workers) = match with_campaign(state, req, |svc| (svc.handle(), svc.n_workers()))
    {
        Ok(pair) => pair,
        Err(r) => return r,
    };
    let mut parsed = Vec::with_capacity(entries.len());
    for entry in entries {
        match parse_label(state, n_workers, entry) {
            Ok(t) => parsed.push(t),
            Err(msg) => {
                let status = if msg.starts_with("unknown") { 404 } else { 400 };
                return Response::error(status, &msg);
            }
        }
    }
    let accepted = parsed.len();
    if req.query_has("wait", "1") {
        for (worker, task, bits) in parsed {
            if let Err(e) = handle.submit_wait(worker, task, bits) {
                return serve_error(&e);
            }
        }
        return Response::json(200, obj(vec![("accepted", num(accepted))]).render());
    }
    for (worker, task, bits) in parsed {
        // Shard-side validation failures (duplicates) surface in the shard
        // metrics, exactly like any other fire-and-forget ingestion.
        if let Err(e) = handle.submit_traced(worker, task, bits, span) {
            return serve_error(&e);
        }
    }
    Response::json(202, obj(vec![("accepted", num(accepted))]).render())
}

/// `GET /campaign/progress` — budget, answers and queue state.
fn progress(state: &ServerState, req: &Request) -> Response {
    let result = with_campaign(state, req, |svc| {
        let m = svc.metrics();
        obj(vec![
            ("campaign", num64(u64::from(svc.campaign_id()))),
            ("budget", num(svc.config().budget)),
            ("budget_used", num(svc.budget_used())),
            ("answers_total", num(svc.answers_total())),
            ("n_shards", num(svc.n_shards())),
            ("n_workers", num(svc.n_workers())),
            ("map_version", num64(m.map_version)),
            ("queue_depth", num(m.queue_depth)),
            ("enqueued", num64(m.enqueued)),
            ("processed", num64(m.processed)),
            ("uptime_secs", Json::Num(m.uptime.as_secs_f64())),
        ])
        .render()
    });
    match result {
        Ok(body) => Response::json(200, body),
        Err(r) => r,
    }
}

/// `GET /workers/:id/stats` — the worker's profile plus per-shard model
/// state: inherent quality `P(i_w)` and answers applied on each shard.
fn worker_stats(state: &ServerState, req: &Request, id: &str) -> Response {
    let Ok(idx) = id.parse::<usize>() else {
        return Response::error(400, "worker id must be an integer");
    };
    let w = WorkerId::from_index(idx);
    let result = with_campaign(state, req, |svc| {
        if idx >= svc.n_workers() {
            return Err(Response::error(404, &format!("unknown worker {idx}")));
        }
        let mut shards = Vec::with_capacity(svc.n_shards());
        let mut answers_total = 0usize;
        for s in 0..svc.n_shards() {
            let shard = svc.shard(s);
            let answers = shard.framework().log().n_answers_by(w);
            answers_total += answers;
            shards.push(obj(vec![
                ("shard", num(s)),
                (
                    "inherent",
                    Json::Num(shard.framework().params().inherent(w)),
                ),
                ("answers", num(answers)),
            ]));
        }
        // Name and locations come from the campaign's live pool (shard 0
        // carries the full roster including mid-campaign registrations).
        let shard0 = svc.shard(0);
        let worker = shard0
            .framework()
            .workers()
            .get(w)
            .expect("id validated against the live pool");
        Ok(obj(vec![
            ("worker", num(idx)),
            ("name", Json::Str(worker.name.clone())),
            (
                "locations",
                Json::Arr(
                    worker
                        .locations
                        .iter()
                        .map(|p| Json::Arr(vec![Json::Num(p.x), Json::Num(p.y)]))
                        .collect(),
                ),
            ),
            ("answers_total", num(answers_total)),
            ("shards", Json::Arr(shards)),
        ])
        .render())
    });
    match result {
        Ok(Ok(body)) => Response::json(200, body),
        Ok(Err(r)) | Err(r) => r,
    }
}

/// A histogram's summary as JSON (nanosecond percentiles, bucket upper
/// bounds — see `docs/OBSERVABILITY.md` for the bucket scheme).
fn summary_json(h: &Histogram) -> Json {
    let s = h.summary();
    obj(vec![
        ("count", num64(s.count)),
        ("p50_ns", num64(s.p50)),
        ("p90_ns", num64(s.p90)),
        ("p99_ns", num64(s.p99)),
        ("max_ns", num64(s.max)),
    ])
}

fn metrics_json(state: &ServerState, hub: &ObsHub, m: &ServiceMetrics) -> Json {
    let shards = m
        .shards
        .iter()
        .map(|s| {
            obj(vec![
                ("shard", num(s.shard)),
                ("submits", num64(s.submits)),
                ("requests", num64(s.requests)),
                ("assigned", num64(s.assigned)),
                ("em_rebuilds", num64(s.em_rebuilds)),
                ("rejected", num64(s.rejected)),
                ("budget_slice", num64(s.budget_slice)),
                ("budget_remaining", num64(s.budget_remaining)),
                ("gossip_rounds", num64(s.gossip_rounds)),
                ("gossip_folds", num64(s.gossip_folds)),
                ("gossip_lag", num64(s.gossip_lag)),
                ("events_len", num64(s.events_len)),
                ("queue_depth", num(s.queue_depth)),
                ("queue_hwm", num64(s.queue_hwm)),
                ("em_threads", num64(s.em_threads)),
                ("resident_answers", num64(s.resident_answers)),
                ("pruned_answers", num64(s.pruned_answers)),
            ])
        })
        .collect();
    obj(vec![
        ("shards", Json::Arr(shards)),
        ("queue_depth", num(m.queue_depth)),
        ("enqueued", num64(m.enqueued)),
        ("processed", num64(m.processed)),
        ("rerouted", num64(m.rerouted)),
        ("map_version", num64(m.map_version)),
        ("snapshot_bytes", num64(m.snapshot_bytes)),
        ("uptime_secs", Json::Num(m.uptime.as_secs_f64())),
        ("submits_per_sec", Json::Num(m.submits_per_sec())),
        (
            "latency",
            obj(vec![
                ("queue_wait", summary_json(&hub.queue_wait)),
                ("apply", summary_json(&hub.apply)),
                ("em_full", summary_json(&hub.em_full)),
                ("em_dirty", summary_json(&hub.em_dirty)),
                ("assign", summary_json(&hub.assign)),
                ("gossip_round", summary_json(&hub.gossip_round)),
                ("snapshot", summary_json(&hub.snapshot)),
                ("restore", summary_json(&hub.restore)),
            ]),
        ),
        (
            "http",
            obj(vec![
                (
                    "connections_total",
                    num64(state.stats.connections_total.load(Ordering::Relaxed)),
                ),
                (
                    "active_connections",
                    num64(state.stats.active_connections.load(Ordering::Relaxed)),
                ),
                (
                    "requests_total",
                    num64(state.stats.requests_total.load(Ordering::Relaxed)),
                ),
                (
                    "responses_2xx",
                    num64(state.stats.responses_2xx.load(Ordering::Relaxed)),
                ),
                (
                    "responses_4xx",
                    num64(state.stats.responses_4xx.load(Ordering::Relaxed)),
                ),
                (
                    "responses_5xx",
                    num64(state.stats.responses_5xx.load(Ordering::Relaxed)),
                ),
                (
                    "responses_408",
                    num64(state.stats.responses_408.load(Ordering::Relaxed)),
                ),
            ]),
        ),
    ])
}

/// The Prometheus text exposition: HTTP-layer counters and per-route
/// latency histograms, the service's latency histograms, and per-shard
/// counters/gauges. Metric registry in `docs/OBSERVABILITY.md`.
#[allow(clippy::too_many_lines)]
fn metrics_prometheus(state: &ServerState, hub: &ObsHub, m: &ServiceMetrics) -> String {
    let mut out = PromText::new();
    // HTTP layer (server-lifetime, survives /admin/restore).
    out.counter(
        "crowd_http_connections_total",
        "Connections accepted since startup",
        &[],
        state.stats.connections_total.load(Ordering::Relaxed),
    );
    out.gauge(
        "crowd_http_active_connections",
        "Connections currently open",
        &[],
        state.stats.active_connections.load(Ordering::Relaxed) as f64,
    );
    out.counter(
        "crowd_http_requests_total",
        "Requests parsed and dispatched",
        &[],
        state.stats.requests_total.load(Ordering::Relaxed),
    );
    for (class, counter) in [
        ("2xx", &state.stats.responses_2xx),
        ("4xx", &state.stats.responses_4xx),
        ("5xx", &state.stats.responses_5xx),
    ] {
        out.counter(
            "crowd_http_responses_total",
            "Responses by status class",
            &[("class", class)],
            counter.load(Ordering::Relaxed),
        );
    }
    out.counter(
        "crowd_http_responses_408_total",
        "Request-deadline expiries (also counted in class 4xx)",
        &[],
        state.stats.responses_408.load(Ordering::Relaxed),
    );
    for route in Route::ALL {
        out.histogram_ns(
            "crowd_http_request_seconds",
            "Handler wall-clock latency by route",
            &[("route", route.as_str())],
            &state.stats.route_latency[route.index()],
        );
    }
    // Service-side latency histograms (this service's lifetime).
    out.histogram_ns(
        "crowd_queue_wait_seconds",
        "Time commands waited in their shard's ingestion queue",
        &[],
        &hub.queue_wait,
    );
    out.histogram_ns(
        "crowd_apply_seconds",
        "Per-answer apply time under the shard write lock",
        &[],
        &hub.apply,
    );
    // The `threads` label reports the E-step thread count of the most
    // recent rebuild (1 = sequential); parallel EM is bit-identical, so
    // the label only partitions *durations*, never results.
    let em_threads = hub.em_threads.load(Ordering::Relaxed).to_string();
    out.histogram_ns(
        "crowd_em_rebuild_seconds",
        "EM rebuild duration by sweep kind",
        &[("sweep", "full"), ("threads", &em_threads)],
        &hub.em_full,
    );
    out.histogram_ns(
        "crowd_em_rebuild_seconds",
        "EM rebuild duration by sweep kind",
        &[("sweep", "dirty"), ("threads", &em_threads)],
        &hub.em_dirty,
    );
    out.histogram_ns(
        "crowd_assign_seconds",
        "Assignment-round duration",
        &[],
        &hub.assign,
    );
    out.histogram_ns(
        "crowd_gossip_round_seconds",
        "Gossip publish + fold round duration",
        &[],
        &hub.gossip_round,
    );
    out.histogram_ns(
        "crowd_snapshot_seconds",
        "Snapshot capture duration (quiesce + render)",
        &[],
        &hub.snapshot,
    );
    out.histogram_ns(
        "crowd_restore_seconds",
        "Snapshot restore duration",
        &[],
        &hub.restore,
    );
    // Per-shard counters and gauges.
    for s in &m.shards {
        let shard = s.shard.to_string();
        let l: &[(&str, &str)] = &[("shard", &shard)];
        out.counter(
            "crowd_shard_submits_total",
            "Answers accepted",
            l,
            s.submits,
        );
        out.counter(
            "crowd_shard_requests_total",
            "Requests served",
            l,
            s.requests,
        );
        out.counter("crowd_shard_assigned_total", "Pairs issued", l, s.assigned);
        out.counter(
            "crowd_shard_em_rebuilds_total",
            "Delayed full-EM rebuilds",
            l,
            s.em_rebuilds,
        );
        out.counter(
            "crowd_shard_rejected_total",
            "Rejected commands",
            l,
            s.rejected,
        );
        out.counter(
            "crowd_shard_gossip_rounds_total",
            "Gossip rounds run",
            l,
            s.gossip_rounds,
        );
        out.counter(
            "crowd_shard_gossip_folds_total",
            "Peer deltas folded",
            l,
            s.gossip_folds,
        );
        out.gauge(
            "crowd_shard_budget_slice",
            "Budget slice assigned to this shard",
            l,
            s.budget_slice as f64,
        );
        out.gauge(
            "crowd_shard_budget_remaining",
            "Budget slice remaining",
            l,
            s.budget_remaining as f64,
        );
        out.gauge(
            "crowd_shard_queue_depth",
            "Ingestion-queue depth at scrape",
            l,
            s.queue_depth as f64,
        );
        out.gauge(
            "crowd_shard_queue_hwm",
            "Queue high-water mark since the window was last closed (reads never reset it)",
            l,
            s.queue_hwm as f64,
        );
        out.gauge(
            "crowd_shard_events_len",
            "Recorded out-of-stream events",
            l,
            s.events_len as f64,
        );
        out.gauge(
            "crowd_shard_gossip_lag",
            "Versions behind the freshest published peer delta",
            l,
            s.gossip_lag as f64,
        );
        out.gauge(
            "crowd_shard_em_threads",
            "Resolved E-step thread count for this shard's EM sweeps (1 = sequential)",
            l,
            s.em_threads as f64,
        );
        out.gauge(
            "crowd_shard_resident_answers",
            "Answers held in memory (the retained stream suffix)",
            l,
            s.resident_answers as f64,
        );
        out.gauge(
            "crowd_shard_pruned_answers",
            "Answers dropped from memory by retention pruning",
            l,
            s.pruned_answers as f64,
        );
    }
    // Service-level gauges, including the self-sampler's latest points.
    out.counter("crowd_enqueued_total", "Commands accepted", &[], m.enqueued);
    out.counter(
        "crowd_processed_total",
        "Commands fully applied",
        &[],
        m.processed,
    );
    out.gauge(
        "crowd_queue_depth",
        "Total ingestion-queue depth at scrape",
        &[],
        m.queue_depth as f64,
    );
    out.counter(
        "crowd_rerouted_total",
        "Commands re-resolved on drain after a shard-map move",
        &[],
        m.rerouted,
    );
    out.gauge(
        "crowd_map_version",
        "Current shard-map version (1 = startup partition)",
        &[],
        m.map_version as f64,
    );
    out.gauge(
        "crowd_snapshot_bytes",
        "Byte length of the last rendered snapshot",
        &[],
        m.snapshot_bytes as f64,
    );
    out.gauge(
        "crowd_uptime_seconds",
        "Service uptime",
        &[],
        m.uptime.as_secs_f64(),
    );
    out.counter(
        "crowd_trace_dropped_total",
        "Trace events dropped by the full ring",
        &[],
        hub.trace.dropped(),
    );
    if let Some((_, depth)) = hub.queue_depth_series.last() {
        out.gauge(
            "crowd_sampled_queue_depth",
            "Queue depth at the sampler's last tick",
            &[],
            depth as f64,
        );
    }
    if let Some((_, events)) = hub.events_len_series.last() {
        out.gauge(
            "crowd_sampled_events_len",
            "Event-log length at the sampler's last tick",
            &[],
            events as f64,
        );
    }
    out.render()
}

/// `GET /metrics` — the full [`ServiceMetrics`] snapshot plus HTTP-layer
/// counters and latency summaries as JSON, or the Prometheus text
/// exposition with `?format=prometheus`.
fn metrics(state: &ServerState, req: &Request) -> Response {
    let prometheus = req.query_has("format", "prometheus");
    let result = with_campaign(state, req, |svc| {
        let m = svc.metrics();
        if prometheus {
            (true, metrics_prometheus(state, svc.obs(), &m))
        } else {
            (false, metrics_json(state, svc.obs(), &m).render())
        }
    });
    match result {
        Ok((true, body)) => Response::text(200, "text/plain; version=0.0.4", body),
        Ok((false, body)) => Response::json(200, body),
        Err(r) => r,
    }
}

/// `GET /debug/trace` — drains the trace ring, returning every buffered
/// event in record order plus the ring's drop counter. Draining is
/// destructive by design: two concurrent readers split the stream.
fn debug_trace(state: &ServerState, req: &Request) -> Response {
    let result = with_campaign(state, req, |svc| {
        let trace = &svc.obs().trace;
        let events = trace
            .drain()
            .into_iter()
            .map(|e| {
                obj(vec![
                    ("span", num64(e.span)),
                    ("stage", Json::Str(e.stage.to_string())),
                    ("shard", e.shard.map_or(Json::Null, num)),
                    ("at_ns", num64(e.at_ns)),
                    ("seq", num64(e.seq)),
                ])
            })
            .collect();
        obj(vec![
            ("dropped", num64(trace.dropped())),
            ("events", Json::Arr(events)),
        ])
        .render()
    });
    match result {
        Ok(body) => Response::json(200, body),
        Err(r) => r,
    }
}

/// `POST /admin/snapshot` — renders the v3 snapshot document and returns
/// it as the response body. Quiesces the ingestion queues first, so
/// clients should pause traffic for a consistent capture (concurrent
/// submits merely delay the flush).
fn admin_snapshot(state: &ServerState, req: &Request) -> Response {
    match with_campaign(state, req, LabellingService::snapshot_json) {
        Ok(doc) => Response::json(200, doc),
        Err(r) => r,
    }
}

/// `POST /admin/prune` — runs an explicit retention prune: hardens every
/// shard behind a final full sweep and drops the checkpoint-covered
/// answer prefixes from memory (spilling them to disk when a spill
/// directory is configured). Answers `200 {"pruned": n, "resident": m}`
/// on success, `409` when the service runs under
/// [`RetentionPolicy::KeepAll`](crate::RetentionPolicy) — pruning is a
/// policy decision made at startup, not something an admin call can
/// spring on a campaign that promised to keep its history.
fn admin_prune(state: &ServerState, req: &Request) -> Response {
    let result = with_campaign(state, req, |svc| {
        svc.prune().map(|pruned| (pruned, svc.answers_resident()))
    });
    match result {
        Ok(Some((pruned, resident))) => Response::json(
            200,
            obj(vec![("pruned", num(pruned)), ("resident", num(resident))]).render(),
        ),
        Ok(None) => Response::error(409, "retention policy is keep_all; nothing to prune"),
        Err(r) => r,
    }
}

/// `POST /admin/restore` — body is a snapshot document previously
/// obtained from `/admin/snapshot`. Rebuilds a fresh service from it over
/// the server's task set and worker pool, swaps it in, and shuts the old
/// one down. In-flight requests against the old service answer 503; the
/// reservation set is deliberately *not* restored (the clients holding
/// those assignments died with the snapshotted process), so restored
/// campaigns re-issue in-flight pairs. A client that outlived the swap
/// and re-submits an answer the snapshot already contained races that
/// re-issue: the duplicate is rejected like any other (counted in shard
/// metrics in fire-and-forget mode, `409` under `POST /labels?wait=1`),
/// never a crash.
fn admin_restore(state: &ServerState, req: &Request) -> Response {
    if req.query_get("campaign").is_some() {
        return Response::error(
            400,
            "restore applies to the primary campaign; it cannot target a multiplexed one",
        );
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not valid UTF-8"),
    };
    let snapshot = match ServiceSnapshot::from_json(text) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &format!("invalid snapshot: {e}")),
    };
    let restored = match LabellingService::restore(&state.tasks, &state.workers, &snapshot) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &format!("restore failed: {e}")),
    };
    let n_shards = restored.n_shards();
    let answers = restored.answers_total();
    let old = {
        let mut cell = state.service.write();
        cell.replace(restored)
    };
    if let Some(old) = old {
        old.shutdown();
    }
    Response::json(
        200,
        obj(vec![
            ("restored", Json::Bool(true)),
            ("n_shards", num(n_shards)),
            ("answers_total", num(answers)),
        ])
        .render(),
    )
}

/// `POST /workers/register` — body `{"name": "…", "location": [x, y]}`.
/// Registers a worker mid-campaign on every shard of the selected
/// campaign (the recorded `register` event makes the grown pool part of
/// the replayable stream). Answers `200 {"worker": id, "n_workers": n}`.
fn workers_register(state: &ServerState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(name) = body.get("name").and_then(Json::as_str) else {
        return Response::error(400, "expected {\"name\": \"…\", \"location\": [x, y]}");
    };
    let location = body.get("location").and_then(Json::as_arr);
    let Some([x, y]) = location.and_then(|a| {
        let x = a.first().and_then(Json::as_f64)?;
        let y = a.get(1).and_then(Json::as_f64)?;
        (a.len() == 2).then_some([x, y])
    }) else {
        return Response::error(400, "\"location\" must be a [x, y] pair of numbers");
    };
    if !x.is_finite() || !y.is_finite() {
        return Response::error(400, "\"location\" coordinates must be finite");
    }
    let worker = Worker::at(name.to_string(), Point::new(x, y));
    let result = with_campaign(state, req, |svc| {
        svc.register_worker(worker).map(|id| (id, svc.n_workers()))
    });
    match result {
        Ok(Ok((id, n_workers))) => Response::json(
            200,
            obj(vec![
                ("worker", num(id.index())),
                ("n_workers", num(n_workers)),
            ])
            .render(),
        ),
        Ok(Err(e)) => serve_error(&e),
        Err(r) => r,
    }
}

/// The handoff report as a JSON body.
fn handoff_json(report: &HandoffReport) -> String {
    obj(vec![
        ("map_version", num64(report.map_version)),
        ("cell", num(report.cell)),
        ("from", num(report.from)),
        ("to", num(report.to)),
        ("moved_tasks", num(report.moved_tasks)),
        ("moved_answers", num(report.moved_answers)),
        ("budget_moved", num(report.budget_moved)),
    ])
    .render()
}

/// `POST /admin/split` and `POST /admin/merge` — run a two-phase cell
/// handoff on the selected campaign and answer the handoff report. With
/// an empty body `split` hands the hottest movable cell to the
/// least-loaded other shard and `merge` the coldest; a body
/// `{"cell": c, "to": s}` pins the move explicitly (either verb).
/// Refused handoffs (single shard, pruned history, …) answer `409`.
fn admin_reassign(state: &ServerState, req: &Request, hot: bool) -> Response {
    let explicit = if req.body.is_empty() {
        None
    } else {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let cell = body.get("cell").and_then(Json::as_usize);
        let to = body.get("to").and_then(Json::as_usize);
        match (cell, to) {
            (Some(cell), Some(to)) => Some((cell, to)),
            _ => return Response::error(400, "expected {\"cell\": c, \"to\": shard} or no body"),
        }
    };
    let result = with_campaign(state, req, |svc| match explicit {
        Some((cell, to)) => svc.reassign_cell(cell, to),
        None if hot => svc.split_hot(),
        None => svc.merge_cold(),
    });
    match result {
        Ok(Ok(report)) => Response::json(200, handoff_json(&report)),
        Ok(Err(e)) => serve_error(&e),
        Err(r) => r,
    }
}

/// `POST /admin/rebalance` — re-slices the selected campaign's unspent
/// budget across shards by observed spend rate. Answers the new slices.
fn admin_rebalance(state: &ServerState, req: &Request) -> Response {
    let result = with_campaign(state, req, |svc| {
        let slices = svc.rebalance_budget();
        obj(vec![
            (
                "slices",
                Json::Arr(slices.iter().map(|&s| num(s)).collect()),
            ),
            ("budget", num(svc.config().budget)),
        ])
        .render()
    });
    match result {
        Ok(body) => Response::json(200, body),
        Err(r) => r,
    }
}

/// One campaign's row in `GET /campaigns`.
fn campaign_json(svc: &LabellingService, primary: bool) -> Json {
    obj(vec![
        ("campaign", num64(u64::from(svc.campaign_id()))),
        ("primary", Json::Bool(primary)),
        ("budget", num(svc.config().budget)),
        ("budget_used", num(svc.budget_used())),
        ("answers_total", num(svc.answers_total())),
        ("n_shards", num(svc.n_shards())),
        ("n_workers", num(svc.n_workers())),
        ("map_version", num64(svc.map().version())),
    ])
}

/// `POST /campaigns` — attaches a new campaign to the primary service's
/// shard pool, multiplexing it over the same drain threads and task
/// space. The body may override `{"budget": n, "n_shards": k}`; every
/// other knob is inherited from the primary's config. Retention pruning
/// is disabled for multiplexed campaigns (their spill files would collide
/// with the primary's). Answers `201` with the new campaign's row.
fn campaigns_create(state: &ServerState, req: &Request) -> Response {
    let body = if req.body.is_empty() {
        Json::Obj(Vec::new())
    } else {
        match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        }
    };
    let pooled = with_service(state, |svc| (svc.pool(), svc.config().clone()));
    let (pool, mut config) = match pooled {
        Ok(p) => p,
        Err(r) => return r,
    };
    if let Some(budget) = body.get("budget").and_then(Json::as_usize) {
        config.budget = budget;
    }
    if let Some(n_shards) = body.get("n_shards").and_then(Json::as_usize) {
        if n_shards == 0 {
            return Response::error(400, "n_shards must be at least 1");
        }
        config.n_shards = n_shards;
    }
    config.retention = crate::service::RetentionPolicy::KeepAll;
    config.prune_every = None;
    if !pool.is_open() {
        return Response::error(503, "campaign pool is closed");
    }
    let campaign = pool.attach(&state.tasks, &state.workers, config);
    let row = campaign_json(&campaign, false);
    state.campaigns.write().push(campaign);
    Response::json(201, row.render())
}

/// `GET /campaigns` — lists every campaign sharing the pool: the primary
/// first, then the multiplexed ones in attach order.
fn campaigns_list(state: &ServerState) -> Response {
    let mut rows = Vec::new();
    if let Some(svc) = state.service.read().as_ref() {
        rows.push(campaign_json(svc, true));
    }
    for svc in state.campaigns.read().iter() {
        rows.push(campaign_json(svc, false));
    }
    Response::json(200, obj(vec![("campaigns", Json::Arr(rows))]).render())
}

/// `POST /campaigns/:id/close` — quiesces and shuts a multiplexed
/// campaign down, freeing its id for reuse. The primary campaign cannot
/// be closed this way (`409`) — it anchors the server's lifecycle and is
/// only replaced by `/admin/restore` or server shutdown.
fn campaigns_close(state: &ServerState, id: &str) -> Response {
    let Ok(id) = id.parse::<u32>() else {
        return Response::error(400, "campaign id must be a non-negative integer");
    };
    if let Some(svc) = state.service.read().as_ref() {
        if svc.campaign_id() == id {
            return Response::error(409, "the primary campaign cannot be closed");
        }
    }
    let found = {
        let mut campaigns = state.campaigns.write();
        campaigns
            .iter()
            .position(|c| c.campaign_id() == id)
            .map(|at| campaigns.remove(at))
    };
    match found {
        Some(campaign) => {
            campaign.shutdown();
            Response::json(200, obj(vec![("closed", num64(u64::from(id)))]).render())
        }
        None => Response::error(404, &format!("no campaign {id}")),
    }
}
