//! An HTTP/1.1 front-end for the labelling service.
//!
//! Mobile workers in the POI-labelling campaign of Hu et al. (ICDE'16)
//! interact with the platform over plain HTTP: they request a HIT of `h`
//! tasks near their location, answer the boolean label vectors, and the
//! platform folds those answers into the location-aware inference model.
//! This module puts that wire protocol in front of
//! [`LabellingService`]:
//!
//! | route                      | method | purpose                              |
//! |----------------------------|--------|--------------------------------------|
//! | `/tasks/request`           | POST   | assign tasks to a batch of workers   |
//! | `/labels`                  | POST   | submit answers (fire-and-forget)     |
//! | `/campaign/progress`       | GET    | budget / answer / queue counters     |
//! | `/workers/:id/stats`       | GET    | per-worker model state               |
//! | `/workers/register`        | POST   | register a worker mid-campaign       |
//! | `/metrics`                 | GET    | full service + HTTP metrics (JSON;   |
//! |                            |        | `?format=prometheus` for text)       |
//! | `/healthz`                 | GET    | liveness probe                       |
//! | `/debug/trace`             | GET    | drain the request trace ring         |
//! | `/admin/snapshot`          | POST   | render the v4 snapshot document      |
//! | `/admin/restore`           | POST   | swap in a service restored from one  |
//! | `/admin/prune`             | POST   | checkpoint + drop covered prefixes   |
//! | `/admin/split`             | POST   | hand the hottest cell to another shard |
//! | `/admin/merge`             | POST   | hand the coldest cell to another shard |
//! | `/admin/rebalance`         | POST   | re-slice unspent budget by spend rate |
//! | `/campaigns`               | POST   | attach a campaign to the shard pool  |
//! | `/campaigns`               | GET    | list campaigns sharing the pool      |
//! | `/campaigns/:id/close`     | POST   | shut a secondary campaign down       |
//!
//! Campaign-scoped routes accept `?campaign=N` to address a campaign
//! multiplexed onto the primary service's shard pool; without it they hit
//! the primary.
//!
//! The server is deliberately dependency-free: a [`std::net::TcpListener`]
//! with a small pool of acceptor threads and one thread per connection.
//! Connections are keep-alive by default and poll on a short read timeout,
//! so idle clients notice shutdown promptly. `POST /labels` rides the
//! per-shard ingestion queues end to end — the handler validates the
//! batch, enqueues it without waiting for the model update, and relies on
//! the shard-side *reservation set* to keep the pending pairs from being
//! re-issued to the same workers by a follow-up `/tasks/request`.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crowd_core::{TaskSet, WorkerPool};
use crowd_obs::Histogram;
use parking_lot::RwLock;

use crate::service::LabellingService;

mod proto;
mod routes;

pub(crate) use proto::{Limits, Response};

/// How long acceptors and idle connections sleep between shutdown checks.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Read-timeout granularity for connection threads; bounds how long a
/// parked keep-alive connection takes to notice server shutdown.
const READ_POLL: Duration = Duration::from_millis(100);

/// Configuration for [`HttpServer`].
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Acceptor threads pulling from the shared listener.
    pub accept_threads: usize,
    /// Idle window after which a keep-alive connection is closed.
    pub keep_alive: Duration,
    /// Maximum request-head size in bytes (431 beyond it).
    pub max_head_bytes: usize,
    /// Maximum request-body size in bytes (413 beyond it). The default is
    /// generous because `/admin/restore` ships whole snapshot documents.
    pub max_body_bytes: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            accept_threads: 2,
            keep_alive: Duration::from_secs(30),
            max_head_bytes: 8 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
        }
    }
}

/// The server's route taxonomy: one variant per handler, used to label
/// per-route latency histograms and Prometheus samples. `Other` covers
/// unmatched paths and method mismatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// `POST /tasks/request`.
    TasksRequest,
    /// `POST /labels`.
    Labels,
    /// `GET /campaign/progress`.
    Progress,
    /// `GET /workers/:id/stats`.
    WorkerStats,
    /// `GET /metrics` (JSON or Prometheus).
    Metrics,
    /// `GET /healthz`.
    Healthz,
    /// `GET /debug/trace`.
    DebugTrace,
    /// `POST /admin/snapshot`.
    AdminSnapshot,
    /// `POST /admin/restore`.
    AdminRestore,
    /// `POST /admin/prune`.
    AdminPrune,
    /// `POST /workers/register`.
    WorkersRegister,
    /// `POST /admin/split`.
    AdminSplit,
    /// `POST /admin/merge`.
    AdminMerge,
    /// `POST /admin/rebalance`.
    AdminRebalance,
    /// `POST /campaigns`.
    CampaignsCreate,
    /// `GET /campaigns`.
    CampaignsList,
    /// `POST /campaigns/:id/close`.
    CampaignsClose,
    /// Anything else (404/405).
    Other,
}

impl Route {
    /// Every route, in histogram-index order.
    pub const ALL: [Route; 18] = [
        Route::TasksRequest,
        Route::Labels,
        Route::Progress,
        Route::WorkerStats,
        Route::Metrics,
        Route::Healthz,
        Route::DebugTrace,
        Route::AdminSnapshot,
        Route::AdminRestore,
        Route::AdminPrune,
        Route::WorkersRegister,
        Route::AdminSplit,
        Route::AdminMerge,
        Route::AdminRebalance,
        Route::CampaignsCreate,
        Route::CampaignsList,
        Route::CampaignsClose,
        Route::Other,
    ];

    /// The route's label in metrics output.
    pub fn as_str(self) -> &'static str {
        match self {
            Route::TasksRequest => "tasks_request",
            Route::Labels => "labels",
            Route::Progress => "progress",
            Route::WorkerStats => "worker_stats",
            Route::Metrics => "metrics",
            Route::Healthz => "healthz",
            Route::DebugTrace => "debug_trace",
            Route::AdminSnapshot => "admin_snapshot",
            Route::AdminRestore => "admin_restore",
            Route::AdminPrune => "admin_prune",
            Route::WorkersRegister => "workers_register",
            Route::AdminSplit => "admin_split",
            Route::AdminMerge => "admin_merge",
            Route::AdminRebalance => "admin_rebalance",
            Route::CampaignsCreate => "campaigns_create",
            Route::CampaignsList => "campaigns_list",
            Route::CampaignsClose => "campaigns_close",
            Route::Other => "other",
        }
    }

    /// Index into [`HttpStats::route_latency`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Monotonic HTTP-layer counters, exported under `"http"` in `/metrics`.
#[derive(Debug)]
pub(crate) struct HttpStats {
    /// Connections accepted since startup.
    pub connections_total: AtomicU64,
    /// Connections currently open.
    pub active_connections: AtomicU64,
    /// Requests parsed and dispatched.
    pub requests_total: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with a 4xx status (includes the 408s below).
    pub responses_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub responses_5xx: AtomicU64,
    /// 408 deadline expiries alone — a slow-client signal worth watching
    /// separately from client errors at large.
    pub responses_408: AtomicU64,
    /// Handler wall-clock latency per route, indexed by
    /// [`Route::index`]. Lives here rather than in the service's
    /// [`ObsHub`](crate::ObsHub) because `/admin/restore` swaps the
    /// service (and its hub) while the server keeps running.
    pub route_latency: [Histogram; Route::ALL.len()],
}

impl Default for HttpStats {
    fn default() -> Self {
        Self {
            connections_total: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            responses_408: AtomicU64::new(0),
            route_latency: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

/// Shared state behind every connection thread.
pub(crate) struct ServerState {
    /// The running primary service. `None` only transiently:
    /// `/admin/restore` swaps services under the write lock, and shutdown
    /// takes it out.
    pub service: RwLock<Option<LabellingService>>,
    /// Secondary campaigns attached to the primary's shard pool via
    /// `POST /campaigns`, addressed by `?campaign=N`. The primary's
    /// campaign id always resolves through `service` above.
    pub campaigns: RwLock<Vec<LabellingService>>,
    /// The campaign's task space (needed to validate and restore).
    pub tasks: TaskSet,
    /// The campaign's worker pool (needed to validate and restore).
    pub workers: WorkerPool,
    /// Set once at shutdown; acceptors and idle connections exit on it.
    pub shutdown: AtomicBool,
    /// HTTP-layer counters.
    pub stats: HttpStats,
    /// Per-connection byte limits and idle window.
    pub limits: Limits,
}

/// The running HTTP front-end.
///
/// ```no_run
/// use crowd_serve::{HttpConfig, HttpServer, LabellingService, ServeConfig};
/// # fn demo(tasks: crowd_core::TaskSet, workers: crowd_core::WorkerPool) {
/// let service = LabellingService::start(&tasks, &workers, ServeConfig::default());
/// let server = HttpServer::start(service, tasks, workers, HttpConfig::default()).unwrap();
/// println!("listening on {}", server.addr());
/// let service = server.shutdown().expect("service still installed");
/// service.shutdown();
/// # }
/// ```
pub struct HttpServer {
    state: Arc<ServerState>,
    addr: SocketAddr,
    acceptors: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds the listener and spawns the acceptor pool.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn start(
        service: LabellingService,
        tasks: TaskSet,
        workers: WorkerPool,
        config: HttpConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Acceptors poll a non-blocking listener so they can watch the
        // shutdown flag without an OS-specific wakeup mechanism.
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            service: RwLock::new(Some(service)),
            campaigns: RwLock::new(Vec::new()),
            tasks,
            workers,
            shutdown: AtomicBool::new(false),
            stats: HttpStats::default(),
            limits: Limits {
                max_head_bytes: config.max_head_bytes,
                max_body_bytes: config.max_body_bytes,
                keep_alive: config.keep_alive,
            },
        });
        let mut acceptors = Vec::with_capacity(config.accept_threads.max(1));
        for i in 0..config.accept_threads.max(1) {
            let listener = listener.try_clone()?;
            let state = Arc::clone(&state);
            let handle = thread::Builder::new()
                .name(format!("http-accept-{i}"))
                .spawn(move || accept_loop(&listener, &state))
                .expect("spawn acceptor thread");
            acceptors.push(handle);
        }
        Ok(Self {
            state,
            addr,
            acceptors,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains open connections, and hands back the
    /// labelling service (still running — the caller decides whether to
    /// snapshot or shut it down). Returns `None` if an `/admin/restore`
    /// race left no service installed.
    #[must_use = "the returned service keeps its drain threads until shut down"]
    pub fn shutdown(self) -> Option<LabellingService> {
        self.state.shutdown.store(true, Ordering::Release);
        for handle in self.acceptors {
            let _ = handle.join();
        }
        // Connection threads are detached; they notice the flag within one
        // read-timeout poll. Wait for them, but never forever: a peer that
        // stops mid-request holds its connection until REQUEST_DEADLINE.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.state.stats.active_connections.load(Ordering::Acquire) > 0
            && Instant::now() < deadline
        {
            thread::sleep(POLL_INTERVAL);
        }
        // Secondary campaigns die with the server; only the primary is
        // handed back to the caller.
        for campaign in self.state.campaigns.write().drain(..) {
            campaign.shutdown();
        }
        self.state.service.write().take()
    }
}

/// One acceptor: polls the shared non-blocking listener and spawns a
/// thread per connection.
fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    let mut next_conn = 0u64;
    while !state.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                state
                    .stats
                    .connections_total
                    .fetch_add(1, Ordering::Relaxed);
                state
                    .stats
                    .active_connections
                    .fetch_add(1, Ordering::AcqRel);
                let conn_state = Arc::clone(state);
                let name = format!("http-conn-{next_conn}");
                next_conn += 1;
                let spawned = thread::Builder::new()
                    .name(name)
                    .spawn(move || serve_connection(&conn_state, stream));
                if spawned.is_err() {
                    // Out of threads; the guard below keeps the gauge honest.
                    state
                        .stats
                        .active_connections
                        .fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Serves one connection until it closes, errors, or the server stops.
fn serve_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut carry = Vec::new();
    loop {
        match proto::read_request(&mut stream, &mut carry, &state.limits, &state.shutdown) {
            Ok(Some(req)) => {
                state.stats.requests_total.fetch_add(1, Ordering::Relaxed);
                let handled_at = Instant::now();
                // Begin the request's trace span on the *current* service's
                // hub (an /admin/restore may swap it between requests).
                let span = {
                    let guard = state.service.read();
                    guard.as_ref().map_or(0, |svc| {
                        let trace = &svc.obs().trace;
                        let span = trace.begin_span();
                        trace.record(span, "http_parse", None);
                        span
                    })
                };
                let (route, response) = routes::dispatch(state, &req, span);
                state.stats.route_latency[route.index()].record_duration(handled_at.elapsed());
                count_status(state, response.status);
                // Stop renewing keep-alive once shutdown begins so drains
                // converge quickly.
                let keep = req.keep_alive && !state.shutdown.load(Ordering::Acquire);
                if proto::write_response(&mut stream, &response, keep).is_err() || !keep {
                    break;
                }
            }
            Ok(None) => break,
            Err(e) => {
                let response = Response::error(e.status, &e.msg);
                count_status(state, response.status);
                let _ = proto::write_response(&mut stream, &response, false);
                break;
            }
        }
    }
    state
        .stats
        .active_connections
        .fetch_sub(1, Ordering::AcqRel);
}

fn count_status(state: &ServerState, status: u16) {
    if (200..300).contains(&status) {
        state.stats.responses_2xx.fetch_add(1, Ordering::Relaxed);
    } else if (400..500).contains(&status) {
        state.stats.responses_4xx.fetch_add(1, Ordering::Relaxed);
        if status == 408 {
            state.stats.responses_408.fetch_add(1, Ordering::Relaxed);
        }
    } else if status >= 500 {
        state.stats.responses_5xx.fetch_add(1, Ordering::Relaxed);
    }
}
