//! The concurrent labelling service: sharded campaign state behind striped
//! locks, multiplexed over a pool of bounded ingestion queues.
//!
//! ```text
//!  producers (request/submit)          pool slots            campaigns
//!  ┌────────┐ route by (campaign, ┌─▶ slot 0 ─▶ drain 0 ─┐ ┌──────────────┐
//!  │ handle │─────────────────────┤                      ├▶│ C0: shards   │
//!  └────────┘  task) against the  ├─▶ slot 1 ─▶ drain 1 ─┤ │ (RwLock each)│
//!  ┌────────┐  campaign's current │                      │ ├──────────────┤
//!  │ handle │─┘ versioned ShardMap└─▶   …         …      └▶│ C1: shards   │
//!  └────────┘                                              └──────────────┘
//! ```
//!
//! * The shard map is a **versioned, immutable snapshot**: routing reads an
//!   `Arc<ShardMap>` and stamps every command with the map version it was
//!   routed under. A hot-cell split or cold-cell merge
//!   ([`LabellingService::reassign_cell`]) publishes a *successor* map
//!   under a two-phase handoff (freeze both shards → transfer answer-log
//!   segments, reservations, gossip events and a budget share → publish);
//!   in-flight commands routed under the old version are re-resolved on
//!   the drain side under the shard lock, so nothing is lost or misapplied.
//! * [`ServiceHandle::submit`] routes the answer to its owning shard and
//!   enqueues it on that shard's pool slot; the bounded queue blocks the
//!   producer only when that slot falls behind.
//! * [`ServiceHandle::request_tasks`] enqueues on the workers' home shard
//!   and blocks on a one-shot reply channel; the draining thread serves
//!   from its own shard first and roams to the shard with the most
//!   remaining budget when the home region has nothing assignable.
//! * N campaigns can share one [`CampaignPool`]: the routing key carries
//!   the campaign id, each campaign keeps its own shards, budget slices,
//!   metrics and snapshots, and drain threads dispatch each command to its
//!   campaign's shard. A single campaign started with
//!   [`LabellingService::start`] is simply a pool of one.
//! * With [`ServeConfig::gossip_every`] set, the drain loops additionally
//!   run the cross-shard worker-quality gossip: every N applied answers a
//!   shard publishes its worker-side sufficient statistics to a shared
//!   exchange and folds its peers' latest deltas, so every shard's
//!   `P(i_w)` / `P(d_w)` estimates converge on the pooled (unsharded)
//!   values. Folds are recorded as positioned events, keeping shard state
//!   a deterministic function of its persisted event stream.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use crowd_core::{
    Assignment, CoreError, Distances, EmConfig, FrameworkConfig, LabelBits, RecorderHandle, TaskId,
    TaskSet, UpdatePolicy, Worker, WorkerId, WorkerPool, WorkerStatDelta,
};
use parking_lot::{Mutex, RwLock};

use crate::metrics::{ServiceMetrics, ShardMetrics};
use crate::obs::{CoreRecorder, ObsHub};
use crate::shard::{GossipEventKind, Shard, ShardMap};
use crate::spill::SpillWriter;

/// What a shard keeps in memory as its answer stream grows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RetentionPolicy {
    /// Keep every answer payload in memory for the campaign's lifetime —
    /// the historical behaviour, and the only mode in which the full
    /// replay restore/verify path exists.
    #[default]
    KeepAll,
    /// Bound memory: whenever a shard records a full-sweep checkpoint at
    /// the end of its stream, drop the answer payloads the checkpoint
    /// covers, keeping only a two-integer `(worker, task)` index (exact
    /// duplicate detection and counts) plus the frozen sufficient-
    /// statistics baseline. Resident memory is O(suffix since the last
    /// checkpoint), not O(campaign).
    PruneCheckpointed {
        /// When set, pruned payloads are appended to
        /// `{spill_dir}/shard-{id}.spill` before being dropped (the cold
        /// archive tier — see [`crate::spill`]). `None` discards them:
        /// snapshots still restore bit-identically through the checkpoint,
        /// but the raw pre-checkpoint answers are gone. Spilling is
        /// best-effort: an I/O error disables the writer rather than
        /// blocking ingestion.
        spill_dir: Option<String>,
    },
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServeConfig {
    /// Number of geographic shards (clamped to the task count).
    pub n_shards: usize,
    /// Legacy knob from the shared-queue design: the service now runs
    /// exactly one drain thread per shard, and
    /// [`LabellingService::start`] normalises this field to the (clamped)
    /// shard count so [`LabellingService::config`] reports reality.
    pub ingest_threads: usize,
    /// Total ingestion capacity — the backpressure bound, split evenly
    /// across the per-shard queues (at least one slot each). A producer
    /// blocks only when the *target shard's* queue is full.
    pub queue_capacity: usize,
    /// Maximum commands a drain thread applies per wakeup.
    pub drain_batch: usize,
    /// Total campaign budget, split proportionally across shards.
    pub budget: usize,
    /// Tasks per HIT.
    pub h: usize,
    /// Inference configuration (shared by every shard's framework).
    pub em: EmConfig,
    /// Online-update policy (per shard).
    pub policy: UpdatePolicy,
    /// Cross-shard worker-quality gossip: every `gossip_every` answers a
    /// shard applies, it publishes its worker-side sufficient statistics
    /// to the shared exchange and folds its peers' latest deltas into its
    /// own model (see [`crowd_core::model::gossip`]). The folds land
    /// before the shard's next delayed rebuild, so dirty-set sweeps
    /// re-estimate under the pooled worker quality. `None` (or `Some(0)`)
    /// disables gossip everywhere — each shard estimates `P(i_w)` from its
    /// own answers only, the pre-gossip behaviour.
    pub gossip_every: Option<usize>,
    /// Period, in milliseconds, of the observability self-sampler thread
    /// that appends queue-depth and event-log-length gauge points to the
    /// service's [`ObsHub`]. `0` disables the sampler.
    pub obs_sample_ms: u64,
    /// What each shard keeps in memory as its stream grows (see
    /// [`RetentionPolicy`]). Defaults to [`RetentionPolicy::KeepAll`].
    pub retention: RetentionPolicy,
    /// Period, in milliseconds, of the self-scheduled retention prune:
    /// every period the sampler thread runs the equivalent of
    /// [`LabellingService::prune`] (harden every shard, drop the
    /// checkpoint-covered prefixes). Only meaningful under
    /// [`RetentionPolicy::PruneCheckpointed`]; `None` (the default) and
    /// `Some(0)` disable the timer — pruning then happens only on
    /// checkpoints and explicit admin calls.
    pub prune_every: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            n_shards: 4,
            ingest_threads: 2,
            queue_capacity: 1024,
            drain_batch: 64,
            budget: 1000,
            h: 2,
            em: EmConfig::default(),
            policy: UpdatePolicy::default(),
            gossip_every: None,
            obs_sample_ms: 200,
            retention: RetentionPolicy::KeepAll,
            prune_every: None,
        }
    }
}

impl ServeConfig {
    /// The per-shard framework configuration for a given budget slice.
    #[must_use]
    pub fn framework_config(&self, budget_slice: usize) -> FrameworkConfig {
        FrameworkConfig {
            em: self.em.clone(),
            policy: self.policy,
            budget: budget_slice,
            h: self.h,
        }
    }
}

/// Service-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The underlying framework rejected the command.
    Core(CoreError),
    /// The service is shut down (or shutting down) and accepts no commands.
    Closed,
    /// An elastic operation (handoff, rebalance, registration) was refused;
    /// the message says why. The current state is untouched — refusals
    /// happen before any migration starts.
    Rejected(String),
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Core(e) => write!(f, "{e}"),
            Self::Closed => write!(f, "labelling service is closed"),
            Self::Rejected(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// An ingestion command. Every command carries its trace span (0 =
/// untraced) and the instant it was enqueued, so the drain side can
/// record shard queue-wait time and continue the span.
enum Command {
    Submit {
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
        reply: Option<Sender<Result<bool, ServeError>>>,
        span: u64,
        queued_at: Instant,
    },
    Request {
        workers: Vec<WorkerId>,
        reply: Sender<Result<Assignment, ServeError>>,
        span: u64,
        queued_at: Instant,
    },
}

/// A command routed into the shared slot queues: which campaign it belongs
/// to, the shard it was routed to, and the shard-map version that routing
/// decision was made under. The drain side resolves the campaign, takes the
/// shard's lock, and re-validates ownership against the *current* map — a
/// command routed under an older epoch follows the task to its new owner
/// (see [`Inner::apply_submit`]).
struct Routed {
    campaign: u32,
    shard: u32,
    epoch: u64,
    cmd: Command,
}

/// What one cell handoff moved (returned by
/// [`LabellingService::reassign_cell`] and the hot/cold auto-pickers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoffReport {
    /// The shard-map version the handoff published.
    pub map_version: u64,
    /// The grid cell that changed owner.
    pub cell: usize,
    /// The shard that gave the cell up.
    pub from: usize,
    /// The shard that received it.
    pub to: usize,
    /// Tasks that moved with the cell.
    pub moved_tasks: usize,
    /// Answers whose log segments migrated to the receiving shard.
    pub moved_answers: usize,
    /// Budget units transferred from the source's remaining slice.
    pub budget_moved: usize,
}

/// Bookkeeping serialized by the elastic mutex: one handoff, rebalance or
/// registration at a time.
struct ElasticState {
    /// Per-shard `assigned` counter at the last rebalance — the window
    /// over which the next rebalance measures observed spend rate.
    last_assigned: Vec<u64>,
}

/// Shared state between one campaign's service, its handles and the pool's
/// drain threads.
pub(crate) struct Inner {
    /// This campaign's id inside its [`CampaignPool`] (the routing key).
    campaign: u32,
    /// The shard pool this campaign is multiplexed onto.
    pool: Arc<PoolInner>,
    pub(crate) shards: Vec<RwLock<Shard>>,
    /// The current task → shard partition. Readers clone the `Arc` out and
    /// drop the guard immediately (see [`Inner::map`]); a handoff publishes
    /// a successor version while still holding every shard's write lock, so
    /// anything resolved through the newest map is definitive.
    pub(crate) map: RwLock<Arc<ShardMap>>,
    pub(crate) metrics: Vec<ShardMetrics>,
    /// The gossip exchange: each shard's latest published worker-stat
    /// delta. Leaf locks — never held while acquiring a shard lock.
    pub(crate) exchange: Vec<RwLock<Option<WorkerStatDelta>>>,
    /// Gossip cadence (copied out of the config for the hot path).
    gossip_every: Option<usize>,
    /// Whether checkpoint pruning is on (copied out of the config).
    prune_on_checkpoint: bool,
    /// Per-shard spill writers (the on-disk answer tier). `None` when
    /// retention keeps everything, spilling is unconfigured, or the writer
    /// was disabled after an I/O error. Leaf locks, taken only while
    /// holding the owning shard's write lock.
    spills: Vec<Mutex<Option<SpillWriter>>>,
    /// The effective configuration — handoffs rebuild shards from it.
    serve_config: ServeConfig,
    /// The campaign's task universe (rebuilds need the full set).
    tasks: TaskSet,
    /// Campaign-global distance normalisation, shared by every shard.
    distances: Distances,
    /// The worker pool as it was at start — the base every rebuild
    /// re-registers from, before replaying mid-campaign registrations.
    pub(crate) base_pool: WorkerPool,
    /// Home shard per registered worker (grows with registrations, fully
    /// recomputed when a handoff publishes a new map).
    pub(crate) worker_home: RwLock<Vec<usize>>,
    /// Serializes elastic operations: handoff, rebalance, registration.
    elastic: Mutex<ElasticState>,
    /// The next canonical global sequence number, once any shard's seqs
    /// have been materialized by a first handoff. Allocated under the
    /// owning shard's write lock, so per-shard seq order tracks apply
    /// order.
    pub(crate) next_seq: AtomicU64,
    /// Submits that drained against a newer map version than they were
    /// routed under and followed their task to its new owner.
    rerouted: AtomicU64,
    /// The recorder every shard's framework reports EM/assignment timings
    /// through; rebuilds re-attach it.
    recorder: RecorderHandle,
    /// Commands accepted into the pool queues on behalf of this campaign.
    enqueued: AtomicU64,
    /// Commands fully applied.
    processed: AtomicU64,
    /// Byte length of the last snapshot rendered via
    /// [`LabellingService::snapshot_json`] (operator gauge).
    pub(crate) snapshot_bytes: AtomicU64,
    /// This service's observability hub (histograms, trace ring, gauge
    /// series). Process-local: never serialized into snapshots.
    pub(crate) obs: Arc<ObsHub>,
    /// Cleared on shutdown; handles refuse new commands once false.
    open: AtomicBool,
    /// Whether this campaign has already been detached from its pool
    /// (shutdown and drop are both allowed to run; only the first acts).
    detached: AtomicBool,
    started: Instant,
}

impl Inner {
    pub(crate) fn n_workers(&self) -> usize {
        self.worker_home.read().len()
    }

    /// The current shard map. Clones the `Arc` out and releases the map
    /// lock immediately, so no caller ever holds it while acquiring a
    /// shard lock.
    pub(crate) fn map(&self) -> Arc<ShardMap> {
        Arc::clone(&self.map.read())
    }

    /// Applies one routed command for this campaign.
    fn apply(&self, routed: Routed) {
        let shard = (routed.shard as usize).min(self.shards.len() - 1);
        match routed.cmd {
            Command::Submit {
                worker,
                task,
                bits,
                reply,
                span,
                queued_at,
            } => {
                self.obs.queue_wait.record_duration(queued_at.elapsed());
                self.obs.trace.record(span, "drain", Some(shard));
                let result = self.apply_submit(shard, routed.epoch, worker, task, bits, span);
                if let Some(reply) = reply {
                    // A producer that gave up on the reply is not an error.
                    let _ = reply.send(result);
                }
            }
            Command::Request {
                workers,
                reply,
                span,
                queued_at,
            } => {
                self.obs.queue_wait.record_duration(queued_at.elapsed());
                self.obs.trace.record(span, "drain", Some(shard));
                let _ = reply.send(self.apply_request(shard, &workers));
            }
        }
        self.processed.fetch_add(1, Ordering::AcqRel);
    }

    fn apply_submit(
        &self,
        routed_to: usize,
        epoch: u64,
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
        span: u64,
    ) -> Result<bool, ServeError> {
        // Lock-then-check routing: the shard this command was routed to may
        // have handed the task off while the command sat in the queue. Take
        // the shard's lock, verify it still owns the task, and on a miss
        // follow the *current* map (a handoff publishes the new map before
        // releasing the shard locks, so whatever the newest map says is
        // definitive; a still-newer handoff just loops again).
        let mut target = routed_to;
        let mut shard = loop {
            let guard = self.shards[target].write();
            if guard.local_of(task).is_some() {
                break guard;
            }
            drop(guard);
            let map = self.map();
            debug_assert!(map.version() >= epoch, "shard maps are monotone");
            match map.shard_of_task_checked(task) {
                Some(owner) => target = owner,
                None => return Err(CoreError::UnknownTask(task).into()),
            }
        };
        let shard_id = target;
        if shard_id != routed_to {
            self.rerouted.fetch_add(1, Ordering::Relaxed);
        }
        let applied_at = Instant::now();
        let result = shard.submit_global(worker, task, bits);
        self.obs.apply.record_duration(applied_at.elapsed());
        match result {
            Ok(triggered) => {
                // Once seqs are materialized (first handoff), every applied
                // answer records its canonical global sequence number,
                // allocated under this shard's write lock.
                if shard.seqs().is_some() {
                    let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                    shard.push_seq(seq);
                }
                self.obs.trace.record(span, "apply", Some(shard_id));
                if triggered {
                    // The delayed full EM ran inside submit_global; its
                    // duration lands in the EM histograms via the core
                    // recorder, this event ties it to the span.
                    self.obs.trace.record(span, "em", Some(shard_id));
                }
                self.metrics[shard_id].record_submit(triggered);
                // Gossip piggybacks on the drain loop: every
                // `gossip_every`-th applied answer, publish + fold while
                // still holding this shard's write lock, so the fold
                // position in the event stream is exact.
                // A delayed full EM just recorded a checkpoint at the
                // exact end of the stream; under a pruning policy this is
                // the moment the covered prefix leaves memory. Must run
                // *before* the gossip round below appends an event and
                // makes the checkpoint non-current.
                if triggered {
                    self.maybe_prune(shard_id, &mut shard);
                }
                if let Some(every) = self.gossip_every.filter(|&n| n > 0) {
                    // Cadence counts the whole stream, so pruning the
                    // resident log never shifts the gossip schedule.
                    if shard.framework().log().stream_len() % every == 0 {
                        self.gossip_round(shard_id, &mut shard, span);
                    }
                }
                Ok(triggered)
            }
            Err(e) => {
                self.metrics[shard_id].record_rejected();
                Err(e.into())
            }
        }
    }

    /// One gossip round for `shard`: publish its cumulative worker
    /// statistics to the exchange, then fold every peer's latest published
    /// delta in one batched pass (each covered worker's pooled parameters
    /// refresh once per round, not once per delta). The exchange slots are
    /// leaf locks, taken strictly after the shard lock the caller already
    /// holds. `span` ties the round into the trace when the triggering
    /// answer was traced (0 otherwise).
    pub(crate) fn gossip_round(&self, shard_id: usize, shard: &mut Shard, span: u64) {
        let started = Instant::now();
        self.publish(shard_id, shard.publish_delta());
        self.fold_round(shard_id, shard);
        self.obs.gossip_round.record_duration(started.elapsed());
        self.obs.trace.record(span, "gossip_fold", Some(shard_id));
    }

    /// The fold half of a gossip round: fold every peer's latest published
    /// delta in one batched pass (each covered worker's pooled parameters
    /// refresh once per round, not once per delta). Slots whose version
    /// the shard has already absorbed are skipped before cloning — in
    /// steady state with slow-publishing peers a round costs one version
    /// comparison per peer, not a deep copy.
    pub(crate) fn fold_round(&self, shard_id: usize, shard: &mut Shard) {
        // Clone each (new-to-us) slot out under its lock; fold outside.
        let deltas: Vec<WorkerStatDelta> = (0..self.shards.len())
            .filter(|&peer| peer != shard_id)
            .filter_map(|peer| {
                let slot = self.exchange[peer].read();
                slot.as_ref()
                    .filter(|held| {
                        shard
                            .framework()
                            .peer_stats()
                            .version_of(held.source)
                            .is_none_or(|seen| seen < held.version)
                    })
                    .cloned()
            })
            .collect();
        let folded = shard.fold_peers(&deltas);
        self.metrics[shard_id].record_gossip_round(folded);
        self.metrics[shard_id].set_events_len(shard.gossip_events().len() as u64);
    }

    /// Whether gossip is configured on (`Some(0)` spells disabled, like a
    /// `None`, on every gossip path).
    fn gossip_enabled(&self) -> bool {
        self.gossip_every.is_some_and(|n| n > 0)
    }

    /// Under a pruning retention policy, drops the answer prefix the
    /// shard's (current) checkpoint covers: spills the payloads to the
    /// shard's on-disk tier when one is configured, then updates the
    /// resident/pruned gauges. No-op (and cheap) when retention keeps
    /// everything or the checkpoint is not at the exact end of the stream.
    /// Caller holds the shard's write lock.
    pub(crate) fn maybe_prune(&self, shard_id: usize, shard: &mut Shard) {
        if !self.prune_on_checkpoint {
            return;
        }
        let Some(drained) = shard.prune_to_checkpoint() else {
            return;
        };
        let mut slot = self.spills[shard_id].lock();
        if let Some(writer) = slot.as_mut() {
            let spilled = drained
                .iter()
                .try_for_each(|&(worker, task, bits)| writer.append(worker, task, bits))
                .and_then(|()| writer.flush());
            if spilled.is_err() {
                // Best-effort archive: a failing disk must not take down
                // ingestion. The writer is dropped so the error surfaces
                // once, not per prune.
                *slot = None;
            }
        }
        drop(slot);
        self.metrics[shard_id].set_answer_tiers(shard.resident_answers(), shard.pruned_answers());
    }

    /// Stores `delta` as `shard_id`'s latest published statistics unless
    /// the slot already holds a newer version.
    pub(crate) fn publish(&self, shard_id: usize, delta: WorkerStatDelta) {
        let mut slot = self.exchange[shard_id].write();
        if slot
            .as_ref()
            .is_none_or(|held| held.version < delta.version)
        {
            *slot = Some(delta);
        }
    }

    fn apply_request(&self, home: usize, workers: &[WorkerId]) -> Result<Assignment, ServeError> {
        if workers.is_empty() {
            return Ok(Assignment::new(Vec::new()));
        }
        // Candidate order: home region first (location-aware routing), then
        // the fattest remaining budget slices. The mirror may lag by an
        // in-flight request; the shard's framework stays authoritative.
        let mut candidates: Vec<usize> = (0..self.shards.len()).collect();
        candidates.sort_by_key(|&s| (std::cmp::Reverse(self.metrics[s].budget_remaining()), s));
        if let Some(pos) = candidates.iter().position(|&s| s == home) {
            candidates.remove(pos);
            candidates.insert(0, home);
        }
        let mut saw_budget = false;
        for s in candidates {
            if self.metrics[s].budget_remaining() == 0 {
                continue;
            }
            let mut shard = self.shards[s].write();
            match shard.request(workers) {
                Ok(a) if !a.is_empty() => {
                    self.metrics[s].record_request(a.total());
                    self.metrics[s].set_budget_remaining(shard.framework().budget_remaining());
                    return Ok(a);
                }
                // Budget remains but these workers have answered everything
                // assignable here; roam to the next shard.
                Ok(_) => saw_budget = true,
                Err(CoreError::BudgetExhausted) => {
                    self.metrics[s].set_budget_remaining(0);
                }
                Err(e) => {
                    self.metrics[s].record_rejected();
                    return Err(e.into());
                }
            }
        }
        if saw_budget {
            Ok(Assignment::new(Vec::new()))
        } else {
            Err(CoreError::BudgetExhausted.into())
        }
    }

    /// Registers a new worker into every shard of this campaign and
    /// records their home shard. Serialized with handoffs by the elastic
    /// mutex, so a concurrent rebuild sees either all shards with the
    /// worker or none.
    ///
    /// Mid-campaign workers carry exactly one location: the recorded
    /// `Register` event (which snapshot restore and handoff rebuilds
    /// replay) stores a single point, so extra locations are dropped here
    /// rather than silently lost on the first restore.
    pub(crate) fn register_worker(&self, mut worker: Worker) -> Result<WorkerId, ServeError> {
        if worker.locations.is_empty() {
            let next = WorkerId(u32::try_from(self.n_workers()).unwrap_or(u32::MAX));
            return Err(CoreError::WorkerWithoutLocation(next).into());
        }
        worker.locations.truncate(1);
        let _elastic = self.elastic.lock();
        let mut id = None;
        for lock in &self.shards {
            let assigned = lock.write().register_worker(worker.clone())?;
            debug_assert!(
                id.is_none_or(|prev: WorkerId| prev == assigned),
                "shards assign registration ids in lockstep"
            );
            id = Some(assigned);
        }
        let id = id.expect("a service always has at least one shard");
        let home = self.map().shard_for_point(worker.locations[0]);
        self.worker_home.write().push(home);
        Ok(id)
    }

    /// Two-phase cell handoff: freeze (all shard write locks), drain (the
    /// locks drain the queues by construction — a queued command applies
    /// only under its shard's lock), transfer (rebuild both affected
    /// shards by replaying their post-handoff streams), publish (install
    /// the bumped map while still frozen).
    pub(crate) fn reassign_cell(
        &self,
        cell: usize,
        to: usize,
    ) -> Result<HandoffReport, ServeError> {
        let _elastic = self.elastic.lock();
        let old_map = self.map();
        let next = old_map
            .reassign_cell(cell, to)
            .map_err(ServeError::Rejected)?;
        let from = old_map.shard_of_cell(cell);
        let mut guards: Vec<_> = self.shards.iter().map(RwLock::write).collect();
        for (role, s) in [("source", from), ("target", to)] {
            let shard = &guards[s];
            let has_refs = shard
                .gossip_events()
                .iter()
                .any(|e| matches!(e.kind, GossipEventKind::FoldRef { .. }));
            if shard.pruned_answers() > 0 || has_refs {
                return Err(ServeError::Rejected(format!(
                    "shard {s} ({role}) has pruned history; a handoff needs the full resident stream"
                )));
            }
        }
        if next.tasks_of(from).is_empty() {
            return Err(ServeError::Rejected(format!(
                "handoff would leave shard {from} without tasks"
            )));
        }
        // Materialize canonical sequence numbers under the freeze: while
        // the map was static they were implied by position and shard id;
        // from here on the global counter allocates them at apply time.
        let n_shards = guards.len();
        for g in &mut guards {
            g.materialize_seqs(n_shards);
        }
        let max_seq = guards
            .iter()
            .filter_map(|g| g.seqs().and_then(|s| s.last().copied()))
            .max()
            .unwrap_or(0);
        self.next_seq.fetch_max(max_seq + 1, Ordering::AcqRel);

        // Capture both shards' full histories before the rebuild.
        let from_answers: Vec<_> = guards[from].answers_global().collect();
        let from_seqs = guards[from].seqs().expect("just materialized").to_vec();
        let to_answers: Vec<_> = guards[to].answers_global().collect();
        let to_seqs = guards[to].seqs().expect("just materialized").to_vec();
        let from_events: Vec<(usize, GossipEventKind)> = guards[from]
            .gossip_events()
            .iter()
            .map(|e| (e.position, e.kind.clone()))
            .collect();
        let to_events: Vec<(usize, GossipEventKind)> = guards[to]
            .gossip_events()
            .iter()
            .map(|e| (e.position, e.kind.clone()))
            .collect();
        let from_publishes = guards[from].publishes();
        let to_publishes = guards[to].publishes();
        let mut reservations = guards[from].reservations_global();
        reservations.extend(guards[to].reservations_global());
        let extras: Vec<Worker> = guards[from]
            .framework()
            .workers()
            .iter()
            .skip(self.base_pool.len())
            .cloned()
            .collect();
        let (from_used, from_remaining) = {
            let f = guards[from].framework();
            (f.budget_used(), f.budget_remaining())
        };
        let (to_used, to_remaining) = {
            let f = guards[to].framework();
            (f.budget_used(), f.budget_remaining())
        };

        // Partition the source's stream: answers for tasks of the moving
        // cell migrate, the rest stay. `kept_before[p]` counts surviving
        // answers among the first `p` — the event-schedule remap.
        let mut kept = Vec::new();
        let mut moved = Vec::new();
        let mut kept_before = vec![0usize];
        for (i, ans) in from_answers.into_iter().enumerate() {
            if next.shard_of_task(ans.1) == from {
                kept.push((from_seqs[i], true, ans));
            } else {
                moved.push((from_seqs[i], false, ans));
            }
            kept_before.push(kept.len());
        }
        let moved_answers = moved.len();
        let mut merged: Vec<_> = to_seqs
            .iter()
            .zip(to_answers)
            .map(|(&seq, ans)| (seq, true, ans))
            .collect();
        merged.extend(moved);
        merged.sort_by_key(|&(seq, _, _)| seq);
        let from_sched: Vec<(usize, GossipEventKind)> = from_events
            .into_iter()
            .map(|(p, k)| (kept_before[p], k))
            .collect();

        let mut new_from = self.rebuild_shard(from, next.tasks_of(from), kept, from_sched, &extras);
        let mut new_to = self.rebuild_shard(to, next.tasks_of(to), merged, to_events, &extras);
        new_from.set_publishes(from_publishes);
        new_to.set_publishes(to_publishes);

        // Budget migrates with the tasks: a share of the source's
        // *remaining* slice proportional to the tasks that left. The spent
        // part stays where it was charged, so `used ≤ slice` holds on both
        // sides and the slices still sum to the campaign budget.
        let moved_tasks = old_map.cell_tasks(cell).len();
        let from_tasks_before = old_map.tasks_of(from).len();
        let transfer = (from_remaining * moved_tasks)
            .checked_div(from_tasks_before)
            .unwrap_or(0);
        new_from
            .framework_mut()
            .set_budget(from_used + from_remaining - transfer);
        new_from.framework_mut().charge(from_used);
        new_to
            .framework_mut()
            .set_budget(to_used + to_remaining + transfer);
        new_to.framework_mut().charge(to_used);

        // In-flight reservations follow their tasks; each rebuilt shard
        // adopts the pairs it now owns, so a (worker, task) issued before
        // the handoff still cannot be re-issued after it.
        new_from.adopt_reservations_global(&reservations);
        new_to.adopt_reservations_global(&reservations);

        self.install_rebuilt(from, &mut guards[from], new_from);
        self.install_rebuilt(to, &mut guards[to], new_to);

        // Re-home every worker under the new partition, then publish the
        // map while the shards are still frozen: the moment a drain thread
        // can observe rebuilt shards, the map already routes to them.
        let homes: Vec<usize> = guards[from]
            .framework()
            .workers()
            .iter()
            .map(|w| next.shard_for_point(w.locations[0]))
            .collect();
        *self.worker_home.write() = homes;
        let map_version = next.version();
        *self.map.write() = Arc::new(next);
        Ok(HandoffReport {
            map_version,
            cell,
            from,
            to,
            moved_tasks,
            moved_answers,
            budget_moved: transfer,
        })
    }

    /// Rebuilds one shard from scratch by replaying its post-handoff
    /// stream: fresh state over the new task set, the base worker pool
    /// plus every mid-campaign registration pre-registered at position 0,
    /// then every `(seq, answer)` in canonical order with the shard's
    /// recorded out-of-stream events re-applied at their own-stream
    /// positions. The result is bit-identical to a shard that owned these
    /// tasks from the start and saw the same answer stream.
    fn rebuild_shard(
        &self,
        id: usize,
        task_ids: Vec<TaskId>,
        stream: Vec<(u64, bool, (WorkerId, TaskId, LabelBits))>,
        events: Vec<(usize, GossipEventKind)>,
        extras: &[Worker],
    ) -> Shard {
        let mut shard = Shard::new(
            id,
            &self.tasks,
            task_ids,
            self.base_pool.clone(),
            self.serve_config.framework_config(0),
            self.distances,
        );
        shard.framework_mut().set_recorder(self.recorder.clone());
        for w in extras {
            shard
                .register_worker(w.clone())
                .expect("mid-campaign workers re-register during a handoff rebuild");
        }
        let mut events = events.into_iter().peekable();
        let mut own_count = 0usize;
        let mut seqs = Vec::with_capacity(stream.len());
        for (seq, own, (worker, task, bits)) in stream {
            while events.peek().is_some_and(|&(p, _)| p <= own_count) {
                let (_, kind) = events.next().expect("peeked");
                replay_event(&mut shard, kind);
            }
            shard
                .submit_global(worker, task, bits)
                .expect("replaying an accepted answer cannot fail");
            seqs.push(seq);
            if own {
                own_count += 1;
            }
        }
        for (_, kind) in events {
            replay_event(&mut shard, kind);
        }
        let adopted = shard.adopt_seqs(seqs);
        debug_assert!(adopted, "rebuild collects one seq per replayed answer");
        shard
    }

    /// Installs a rebuilt shard and refreshes its metric gauges.
    fn install_rebuilt(&self, s: usize, slot: &mut Shard, rebuilt: Shard) {
        let (used, remaining) = {
            let f = rebuilt.framework();
            (f.budget_used(), f.budget_remaining())
        };
        self.metrics[s].set_budget_slice(used + remaining);
        self.metrics[s].set_budget_remaining(remaining);
        self.metrics[s].set_answer_tiers(rebuilt.resident_answers(), rebuilt.pruned_answers());
        self.metrics[s].set_events_len(rebuilt.gossip_events().len() as u64);
        *slot = rebuilt;
    }

    /// Picks `(cell, to)` for an automatic handoff: the hottest (or
    /// coldest) movable cell by resident answer count, handed to the
    /// least-loaded other shard. A cell is movable when its owner keeps at
    /// least one task after the move.
    fn pick_cell(&self, hottest: bool) -> Result<(usize, usize), ServeError> {
        let map = self.map();
        if map.n_shards() < 2 {
            return Err(ServeError::Rejected(
                "elastic handoff needs at least 2 shards".into(),
            ));
        }
        let mut cell_of = vec![0usize; map.n_tasks()];
        for c in 0..map.n_cells() {
            for t in map.cell_tasks(c) {
                cell_of[t.index()] = c;
            }
        }
        let mut cell_heat = vec![0usize; map.n_cells()];
        let mut shard_heat = vec![0usize; map.n_shards()];
        for (s, heat) in shard_heat.iter_mut().enumerate() {
            let shard = self.shards[s].read();
            for (_, t, _) in shard.answers_global() {
                cell_heat[cell_of[t.index()]] += 1;
                *heat += 1;
            }
        }
        let movable = (0..map.n_cells()).filter(|&c| {
            let owner = map.shard_of_cell(c);
            map.tasks_of(owner).len() > map.cell_tasks(c).len()
        });
        let cell = if hottest {
            movable.max_by_key(|&c| (cell_heat[c], std::cmp::Reverse(c)))
        } else {
            movable.min_by_key(|&c| (cell_heat[c], c))
        };
        let Some(cell) = cell else {
            return Err(ServeError::Rejected(
                "no movable cell: every owner would be left without tasks".into(),
            ));
        };
        let owner = map.shard_of_cell(cell);
        let to = (0..map.n_shards())
            .filter(|&s| s != owner)
            .min_by_key(|&s| (shard_heat[s], s))
            .expect("checked n_shards >= 2");
        Ok((cell, to))
    }

    /// Demand-driven budget rebalance: under a full freeze, re-split the
    /// campaign's unspent budget across shards proportionally to each
    /// shard's observed spend (pairs assigned) since the last rebalance.
    /// Every shard keeps what it has already spent — `used ≤ slice` never
    /// breaks, and the slices still sum to the campaign budget. Returns
    /// the new per-shard slices.
    pub(crate) fn rebalance(&self) -> Vec<usize> {
        let mut elastic = self.elastic.lock();
        let mut guards: Vec<_> = self.shards.iter().map(RwLock::write).collect();
        let n = guards.len();
        let used: Vec<usize> = guards.iter().map(|g| g.framework().budget_used()).collect();
        let spendable: usize = guards
            .iter()
            .map(|g| g.framework().budget_remaining())
            .sum();
        let assigned: Vec<u64> = (0..n).map(|s| self.metrics[s].assigned()).collect();
        // +1 keeps every shard fundable: a region quiet in this window
        // still gets a sliver, so a worker showing up there is servable.
        let weights: Vec<u64> = (0..n)
            .map(|s| assigned[s].saturating_sub(elastic.last_assigned[s]) + 1)
            .collect();
        let shares = largest_remainder(spendable, &weights);
        let mut slices = Vec::with_capacity(n);
        for s in 0..n {
            let slice = used[s] + shares[s];
            guards[s].framework_mut().set_budget(slice);
            self.metrics[s].set_budget_slice(slice);
            self.metrics[s].set_budget_remaining(shares[s]);
            slices.push(slice);
        }
        elastic.last_assigned = assigned;
        slices
    }

    /// Hardens every shard: with gossip enabled a final publish/fold
    /// exchange first, then one full-sweep EM per shard, pruning each
    /// checkpoint-covered prefix under a pruning retention policy.
    pub(crate) fn harden_all(&self) {
        if self.gossip_enabled() {
            // Everyone publishes first, so every fold below sees every
            // peer's final statistics.
            for (s, lock) in self.shards.iter().enumerate() {
                let delta = lock.write().publish_delta();
                self.publish(s, delta);
            }
            for (s, lock) in self.shards.iter().enumerate() {
                self.fold_round(s, &mut lock.write());
            }
        }
        for (s, lock) in self.shards.iter().enumerate() {
            let mut shard = lock.write();
            shard.harden();
            // The sweep checkpointed the whole stream; under a pruning
            // policy the covered prefix leaves memory here, in the same
            // critical section, before any new answer can extend the log.
            self.maybe_prune(s, &mut shard);
            self.metrics[s].set_events_len(shard.gossip_events().len() as u64);
        }
    }

    /// [`Inner::harden_all`] under a pruning policy, reporting how many
    /// answers this call pruned; `None` when retention keeps everything.
    pub(crate) fn prune_all(&self) -> Option<usize> {
        if !self.prune_on_checkpoint {
            return None;
        }
        let before: usize = self.shards.iter().map(|s| s.read().pruned_answers()).sum();
        self.harden_all();
        let after: usize = self.shards.iter().map(|s| s.read().pruned_answers()).sum();
        Some(after - before)
    }

    /// Replaces every (still-empty) shard with fresh state partitioned by
    /// `map`, with explicit budget slices, and publishes `map` as the
    /// current version. Restore uses this to resume a snapshot taken
    /// mid-elasticity before replaying its answers.
    pub(crate) fn adopt_map(&self, map: ShardMap, slices: &[usize]) {
        let _elastic = self.elastic.lock();
        let mut guards: Vec<_> = self.shards.iter().map(RwLock::write).collect();
        for (s, guard) in guards.iter_mut().enumerate() {
            debug_assert_eq!(
                guard.framework().log().stream_len(),
                0,
                "adopt_map expects untouched shards"
            );
            let mut shard = Shard::new(
                s,
                &self.tasks,
                map.tasks_of(s),
                self.base_pool.clone(),
                self.serve_config.framework_config(slices[s]),
                self.distances,
            );
            shard.framework_mut().set_recorder(self.recorder.clone());
            **guard = shard;
            self.metrics[s].set_budget_slice(slices[s]);
            self.metrics[s].set_budget_remaining(slices[s]);
        }
        let homes: Vec<usize> = self
            .base_pool
            .iter()
            .map(|w| map.shard_for_point(w.locations[0]))
            .collect();
        *self.worker_home.write() = homes;
        *self.map.write() = Arc::new(map);
    }
}

/// Re-applies one recorded out-of-stream event during a handoff rebuild.
fn replay_event(shard: &mut Shard, kind: GossipEventKind) {
    match kind {
        GossipEventKind::Fold(delta) => {
            let _ = shard.fold_peer(&delta);
        }
        GossipEventKind::FullSweep => shard.harden(),
        // Mid-campaign workers are pre-registered at position 0 of every
        // rebuild; the recorded event's effect is already in the pool.
        GossipEventKind::Register { .. } => {}
        GossipEventKind::FoldRef { .. } => {
            unreachable!("handoff refuses shards with pruned history")
        }
    }
}

/// Largest-remainder apportionment of `total` across `weights`.
fn largest_remainder(total: usize, weights: &[u64]) -> Vec<usize> {
    let sum: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if sum == 0 {
        return vec![0; weights.len()];
    }
    let mut shares = Vec::with_capacity(weights.len());
    let mut remainders = Vec::with_capacity(weights.len());
    for (i, &w) in weights.iter().enumerate() {
        let exact = u128::from(w) * total as u128;
        shares.push(usize::try_from(exact / sum).expect("a share is at most `total`"));
        remainders.push((exact % sum, i));
    }
    let mut deficit = total - shares.iter().sum::<usize>();
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in &remainders {
        if deficit == 0 {
            break;
        }
        shares[i] += 1;
        deficit -= 1;
    }
    shares
}

/// One pool slot's drain thread: pops routed commands off its shared
/// queue in batches, resolves each command's campaign, and applies it. A
/// command whose campaign has been closed is dropped — its reply sender
/// (if any) closes and the caller observes [`ServeError::Closed`].
fn pool_drain_loop(pool: &PoolInner, rx: &Receiver<Routed>, drain_batch: usize) {
    let mut batch: Vec<Routed> = Vec::with_capacity(drain_batch.max(1));
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(cmd) => batch.push(cmd),
            Err(RecvTimeoutError::Timeout) => {
                if !pool.open.load(Ordering::Acquire) && rx.is_empty() {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
        while batch.len() < drain_batch.max(1) {
            match rx.try_recv() {
                Ok(cmd) => batch.push(cmd),
                Err(_) => break,
            }
        }
        for routed in batch.drain(..) {
            let campaign = pool
                .campaigns
                .read()
                .get(routed.campaign as usize)
                .and_then(Clone::clone);
            if let Some(inner) = campaign {
                inner.apply(routed);
            }
        }
    }
}

/// The campaign's self-scheduled maintenance thread: appends queue-depth
/// and event-log-length gauge points every `obs_period`, and runs a
/// retention prune every `prune_period` ([`ServeConfig::prune_every`]).
/// Gauge sampling reads only lock-free counters; the prune takes shard
/// write locks like any admin call. Polls in 25 ms naps so shutdown never
/// waits a full period.
fn sampler_loop(inner: &Inner, obs_period: Option<Duration>, prune_period: Option<Duration>) {
    let mut next_obs = obs_period.map(|_| Instant::now());
    let mut next_prune = prune_period.map(|p| Instant::now() + p);
    while inner.open.load(Ordering::Acquire) {
        let now = Instant::now();
        if let (Some(period), Some(due)) = (obs_period, next_obs) {
            if now >= due {
                inner
                    .obs
                    .queue_depth_series
                    .record(inner.pool.queued_total() as u64);
                let events: u64 = inner.metrics.iter().map(ShardMetrics::events_len).sum();
                inner.obs.events_len_series.record(events);
                next_obs = Some(now + period);
            }
        }
        if let (Some(period), Some(due)) = (prune_period, next_prune) {
            if now >= due {
                let _ = inner.prune_all();
                next_prune = Some(Instant::now() + period);
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Shared state of one shard pool: the slot queues, their drain threads,
/// and the campaign registry the drains resolve routing keys against.
pub(crate) struct PoolInner {
    /// One bounded queue per pool slot; campaign shard `s` routes to slot
    /// `s % n_slots`.
    queues: Vec<Sender<Routed>>,
    /// Campaign id → shared state; `None` marks a closed (or reusable)
    /// slot.
    campaigns: RwLock<Vec<Option<Arc<Inner>>>>,
    /// Campaigns currently attached; the pool closes when the last one
    /// shuts down.
    active: AtomicUsize,
    /// Cleared when the last campaign detaches; drains exit once their
    /// queues are empty.
    open: AtomicBool,
    /// The slot drain threads, joined by whichever campaign closes last.
    drains: Mutex<Vec<JoinHandle<()>>>,
}

impl PoolInner {
    /// Commands currently waiting across all slot queues (all campaigns).
    fn queued_total(&self) -> usize {
        self.queues.iter().map(Sender::len).sum()
    }
}

/// A pool of ingestion slots (queues + drain threads) that any number of
/// concurrent campaigns multiplex over.
///
/// [`LabellingService::start`] creates a single-campaign pool internally;
/// to run several campaigns over one set of drain threads, create the pool
/// explicitly and [`CampaignPool::attach`] each campaign:
///
/// ```no_run
/// # use crowd_core::prelude::*;
/// # use crowd_serve::{CampaignPool, ServeConfig};
/// # let (tasks_a, tasks_b): (TaskSet, TaskSet) = unimplemented!();
/// # let workers = WorkerPool::new();
/// let pool = CampaignPool::new(4, 1024, 64);
/// let campaign_a = pool.attach(&tasks_a, &workers, ServeConfig::default());
/// let campaign_b = pool.attach(&tasks_b, &workers, ServeConfig::default());
/// ```
///
/// Each campaign keeps its own shards, budget, metrics, map and snapshot;
/// only the queues and drain threads are shared. The pool closes when its
/// last attached campaign shuts down (attaching to a closed pool panics),
/// so attach every campaign before shutting the first one down, or keep
/// one alive. Campaigns under a pruning retention policy should use
/// distinct `spill_dir`s — spill files are named by shard id only.
#[derive(Clone)]
pub struct CampaignPool {
    pool: Arc<PoolInner>,
}

impl std::fmt::Debug for CampaignPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignPool")
            .field("n_slots", &self.pool.queues.len())
            .field("active", &self.pool.active.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl CampaignPool {
    /// Creates a pool with `n_slots` drain threads (at least one), a total
    /// ingestion capacity of `queue_capacity` split across the slots, and
    /// the given per-wakeup drain batch size.
    #[must_use]
    pub fn new(n_slots: usize, queue_capacity: usize, drain_batch: usize) -> Self {
        let n_slots = n_slots.max(1);
        let per_slot = (queue_capacity / n_slots).max(1);
        let mut queues = Vec::with_capacity(n_slots);
        let mut receivers = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let (tx, rx) = channel::bounded(per_slot);
            queues.push(tx);
            receivers.push(rx);
        }
        let pool = Arc::new(PoolInner {
            queues,
            campaigns: RwLock::new(Vec::new()),
            active: AtomicUsize::new(0),
            open: AtomicBool::new(true),
            drains: Mutex::new(Vec::new()),
        });
        let drains: Vec<JoinHandle<()>> = receivers
            .into_iter()
            .enumerate()
            .map(|(s, rx)| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("crowd-serve-slot-{s}"))
                    .spawn(move || pool_drain_loop(&pool, &rx, drain_batch))
                    .expect("spawn pool drain thread")
            })
            .collect();
        *pool.drains.lock() = drains;
        Self { pool }
    }

    /// Number of slot queues / drain threads.
    #[must_use]
    pub fn n_slots(&self) -> usize {
        self.pool.queues.len()
    }

    /// Whether the pool still accepts campaigns (false once the last
    /// attached campaign has shut down).
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.pool.open.load(Ordering::Acquire)
    }

    /// Commands currently waiting across all slot queues (all campaigns).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.pool.queued_total()
    }

    /// Ids of the currently attached campaigns, in id order.
    #[must_use]
    pub fn campaign_ids(&self) -> Vec<u32> {
        self.pool
            .campaigns
            .read()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Attaches a new campaign over `tasks` and `workers` to this pool and
    /// returns its service. The campaign id (visible via
    /// [`LabellingService::campaign_id`]) is the routing key its handles
    /// stamp on every command; closed campaigns' ids are reused.
    ///
    /// The requested shard count is clamped to the task count; the clamped
    /// value is what [`LabellingService::config`] reports afterwards.
    ///
    /// # Panics
    /// Panics if `tasks` is empty or the pool is closed (its last campaign
    /// already shut down).
    #[must_use]
    pub fn attach(
        &self,
        tasks: &TaskSet,
        workers: &WorkerPool,
        mut config: ServeConfig,
    ) -> LabellingService {
        assert!(
            self.pool.open.load(Ordering::Acquire),
            "campaign pool is closed"
        );
        let map = ShardMap::build(tasks, config.n_shards);
        config.n_shards = map.n_shards();
        // Legacy knob: report the campaign's parallelism deterministically
        // (snapshots round-trip it), even though drains belong to the pool.
        config.ingest_threads = map.n_shards();
        // Every shard measures d(w, t) on the campaign-global scale.
        let distances = Distances::from_tasks(tasks);
        let slices = map.budget_slices(config.budget);
        let shards: Vec<RwLock<Shard>> = (0..map.n_shards())
            .map(|s| {
                RwLock::new(Shard::new(
                    s,
                    tasks,
                    map.tasks_of(s),
                    workers.clone(),
                    config.framework_config(slices[s]),
                    distances,
                ))
            })
            .collect();
        let metrics: Vec<ShardMetrics> = slices
            .iter()
            .map(|&b| ShardMetrics::with_budget(b))
            .collect();
        // Every shard's model sweeps with the same resolved thread count;
        // seed the gauge once so /metrics reports it before the first
        // rebuild fires.
        let em_threads = config.policy.parallelism.resolve() as u64;
        for m in &metrics {
            m.set_em_threads(em_threads);
        }
        let worker_home: Vec<usize> = workers
            .iter()
            .map(|w| map.shard_for_point(w.locations[0]))
            .collect();
        let exchange = (0..map.n_shards()).map(|_| RwLock::new(None)).collect();
        // The on-disk answer tier: one append-mode spill writer per shard
        // when pruning is configured with a directory. Best-effort — a
        // writer that cannot open starts disabled instead of failing the
        // service.
        let spill_dir = match &config.retention {
            RetentionPolicy::PruneCheckpointed { spill_dir } => spill_dir.clone(),
            RetentionPolicy::KeepAll => None,
        };
        let spills = (0..map.n_shards())
            .map(|s| {
                Mutex::new(
                    spill_dir
                        .as_ref()
                        .and_then(|dir| SpillWriter::open(std::path::Path::new(dir), s).ok()),
                )
            })
            .collect();
        // Wire the core recorder before any answer flows: EM rebuilds and
        // assignment rounds inside the shards land in this service's hub.
        let obs = Arc::new(ObsHub::new());
        let recorder = RecorderHandle::new(Arc::new(CoreRecorder::new(Arc::clone(&obs))));
        for lock in &shards {
            lock.write().framework_mut().set_recorder(recorder.clone());
        }
        let n_shards = map.n_shards();
        let prune_on_checkpoint =
            matches!(config.retention, RetentionPolicy::PruneCheckpointed { .. });
        // The registry write lock spans slot choice and insertion, so two
        // racing attaches cannot claim the same campaign id.
        let mut campaigns = self.pool.campaigns.write();
        let slot = campaigns
            .iter()
            .position(Option::is_none)
            .unwrap_or(campaigns.len());
        let inner = Arc::new(Inner {
            campaign: u32::try_from(slot).expect("campaign ids fit in u32"),
            pool: Arc::clone(&self.pool),
            shards,
            map: RwLock::new(Arc::new(map)),
            metrics,
            exchange,
            gossip_every: config.gossip_every,
            prune_on_checkpoint,
            spills,
            serve_config: config.clone(),
            tasks: tasks.clone(),
            distances,
            base_pool: workers.clone(),
            worker_home: RwLock::new(worker_home),
            elastic: Mutex::new(ElasticState {
                last_assigned: vec![0; n_shards],
            }),
            next_seq: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            recorder,
            enqueued: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(0),
            obs,
            open: AtomicBool::new(true),
            detached: AtomicBool::new(false),
            started: Instant::now(),
        });
        if slot == campaigns.len() {
            campaigns.push(Some(Arc::clone(&inner)));
        } else {
            campaigns[slot] = Some(Arc::clone(&inner));
        }
        self.pool.active.fetch_add(1, Ordering::AcqRel);
        drop(campaigns);
        let obs_period =
            (config.obs_sample_ms > 0).then(|| Duration::from_millis(config.obs_sample_ms));
        let prune_period = config
            .prune_every
            .filter(|&ms| ms > 0 && prune_on_checkpoint)
            .map(Duration::from_millis);
        let sampler = (obs_period.is_some() || prune_period.is_some()).then(|| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("crowd-obs-sampler".to_owned())
                .spawn(move || sampler_loop(&inner, obs_period, prune_period))
                .expect("spawn obs sampler thread")
        });
        LabellingService {
            inner,
            config,
            sampler,
        }
    }
}

/// A sharded, concurrent labelling campaign service.
///
/// Construction spawns the drain threads; [`LabellingService::handle`]
/// hands out cloneable producer endpoints. Producers stop, then
/// [`LabellingService::quiesce`] flushes the queue, and
/// [`LabellingService::shutdown`] joins the drain threads. Dropping the
/// service without a shutdown also stops the threads (they notice the
/// closed flag within one poll interval).
pub struct LabellingService {
    pub(crate) inner: Arc<Inner>,
    pub(crate) config: ServeConfig,
    sampler: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for LabellingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabellingService")
            .field("n_shards", &self.inner.shards.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl LabellingService {
    /// Starts a service over `tasks` and `workers`.
    ///
    /// The requested shard count is clamped to the task count; the clamped
    /// value is what [`LabellingService::config`] reports afterwards.
    ///
    /// # Panics
    /// Panics if `tasks` is empty.
    #[must_use]
    pub fn start(tasks: &TaskSet, workers: &WorkerPool, config: ServeConfig) -> Self {
        let n_slots = config.n_shards.clamp(1, tasks.len().max(1));
        let pool = CampaignPool::new(n_slots, config.queue_capacity, config.drain_batch);
        pool.attach(tasks, workers, config)
    }

    /// The effective configuration (shard count clamped, thread count
    /// normalised).
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// A cloneable producer endpoint.
    #[must_use]
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Blocks until every command accepted for this campaign has been
    /// applied. Producers must have stopped sending first, otherwise this
    /// chases a moving target.
    pub fn quiesce(&self) {
        loop {
            let enqueued = self.inner.enqueued.load(Ordering::Acquire);
            let processed = self.inner.processed.load(Ordering::Acquire);
            if processed >= enqueued {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Detaches this campaign from its pool: refuses new commands, clears
    /// its registry slot, and — when it was the pool's last campaign —
    /// closes the pool itself. Returns whether this call closed the pool.
    /// Idempotent: only the first of shutdown/drop acts.
    fn close(&self) -> bool {
        if self.inner.detached.swap(true, Ordering::AcqRel) {
            return false;
        }
        self.inner.open.store(false, Ordering::Release);
        let campaign = self.inner.campaign as usize;
        self.inner.pool.campaigns.write()[campaign] = None;
        if self.inner.pool.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.inner.pool.open.store(false, Ordering::Release);
            return true;
        }
        false
    }

    /// Flushes this campaign's accepted commands, closes it to new ones
    /// and, when it is the pool's last campaign, joins the pool's drain
    /// threads. Call after producers have stopped.
    pub fn shutdown(mut self) {
        self.quiesce();
        let closed_pool = self.close();
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
        if closed_pool {
            let drains: Vec<JoinHandle<()>> = self.inner.pool.drains.lock().drain(..).collect();
            for handle in drains {
                let _ = handle.join();
            }
        }
    }

    /// Point-in-time service metrics. Per-shard queue depth reads the
    /// *pool slot* the shard routes through, which other campaigns (and
    /// other shards mapping to the same slot) share.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        let n_slots = self.inner.pool.queues.len();
        let shards: Vec<_> = self
            .inner
            .metrics
            .iter()
            .enumerate()
            .map(|(s, m)| m.snapshot(s, self.inner.pool.queues[s % n_slots].len()))
            .collect();
        // Summing the per-shard snapshots keeps the service total
        // consistent with them within this one snapshot.
        let queue_depth = shards.iter().map(|s| s.queue_depth).sum();
        ServiceMetrics {
            shards,
            queue_depth,
            enqueued: self.inner.enqueued.load(Ordering::Acquire),
            processed: self.inner.processed.load(Ordering::Acquire),
            rerouted: self.inner.rerouted.load(Ordering::Relaxed),
            map_version: self.inner.map().version(),
            snapshot_bytes: self.inner.snapshot_bytes.load(Ordering::Relaxed),
            uptime: self.inner.started.elapsed(),
        }
    }

    /// Hardened label decisions for every task, indexed by global task id.
    /// Taken under shard read locks; call [`LabellingService::quiesce`]
    /// first for a consistent end-of-campaign view.
    #[must_use]
    pub fn decisions(&self) -> Vec<LabelBits> {
        let mut out = vec![LabelBits::zeros(0); self.inner.map().n_tasks()];
        for lock in &self.inner.shards {
            lock.read().decisions_into(&mut out);
        }
        out
    }

    /// Total budget charged across all shards (authoritative, under read
    /// locks).
    #[must_use]
    pub fn budget_used(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().framework().budget_used())
            .sum()
    }

    /// Total answers accepted across all shards over the campaign's whole
    /// stream — pruned answers count; this is not the resident total.
    #[must_use]
    pub fn answers_total(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().framework().log().stream_len())
            .sum()
    }

    /// Answers currently held in memory across all shards (the retained
    /// stream suffixes; equals [`LabellingService::answers_total`] until a
    /// retention prune runs).
    #[must_use]
    pub fn answers_resident(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().resident_answers())
            .sum()
    }

    /// Runs one full batch EM on every shard (end-of-campaign hardening,
    /// the moral equivalent of [`crowd_core::Framework::force_full_em`]).
    ///
    /// With gossip enabled, a final exchange cycle runs first — every
    /// shard publishes, then every shard folds — so the hardening sweep
    /// estimates worker quality from the complete pooled statistics. Both
    /// the folds and the sweeps are recorded in the shards' event streams,
    /// so a snapshot taken afterwards still restores bit-identically.
    /// Call after [`LabellingService::quiesce`] for a stable result.
    pub fn force_full_em(&self) {
        self.inner.harden_all();
    }

    /// Runs an explicit retention prune: hardens every shard (a final
    /// gossip exchange first, when enabled, exactly like
    /// [`LabellingService::force_full_em`]) and drops each shard's
    /// checkpoint-covered prefix from memory in the same critical section.
    /// Returns the total answers pruned by *this* call, or `None` when the
    /// configured retention policy is [`RetentionPolicy::KeepAll`] (the
    /// admin surface maps that to 409). Call after producers have paused
    /// (or accept that a racing submit keeps its shard unpruned this
    /// round).
    pub fn prune(&self) -> Option<usize> {
        self.inner.prune_all()
    }

    /// Read access to a shard (diagnostics and tests).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> parking_lot::RwLockReadGuard<'_, Shard> {
        self.inner.shards[shard].read()
    }

    /// This service's observability hub: latency histograms, the request
    /// trace ring, and the self-sampled gauge series. Process-local —
    /// snapshots never carry it, and a restored service starts fresh.
    #[must_use]
    pub fn obs(&self) -> &Arc<ObsHub> {
        &self.inner.obs
    }

    /// The current shard map (a consistent point-in-time snapshot; a
    /// handoff publishes a successor rather than mutating it).
    #[must_use]
    pub fn map(&self) -> Arc<ShardMap> {
        self.inner.map()
    }

    /// Workers currently registered (base pool plus mid-campaign
    /// registrations).
    #[must_use]
    pub fn n_workers(&self) -> usize {
        self.inner.n_workers()
    }

    /// The display name of a registered worker, if the id is known.
    #[must_use]
    pub fn worker_name(&self, id: WorkerId) -> Option<String> {
        self.inner.shards[0]
            .read()
            .framework()
            .workers()
            .get(id)
            .map(|w| w.name.clone())
    }

    /// This campaign's id inside its [`CampaignPool`].
    #[must_use]
    pub fn campaign_id(&self) -> u32 {
        self.inner.campaign
    }

    /// The pool this campaign is multiplexed onto (attach more campaigns
    /// through it).
    #[must_use]
    pub fn pool(&self) -> CampaignPool {
        CampaignPool {
            pool: Arc::clone(&self.inner.pool),
        }
    }

    /// Registers a worker mid-campaign into every shard and returns the
    /// assigned id. The registration is recorded in each shard's event
    /// stream, so snapshots taken afterwards restore the grown pool.
    ///
    /// # Errors
    /// [`CoreError::WorkerWithoutLocation`] when the worker has no
    /// location (the model cannot compute `d(w, t)` without one).
    pub fn register_worker(&self, worker: Worker) -> Result<WorkerId, ServeError> {
        self.inner.register_worker(worker)
    }

    /// Moves one grid cell (and its tasks, answer-log segments,
    /// reservations and a proportional budget share) from its owning shard
    /// to `to` under a two-phase handoff, publishing a new map version.
    ///
    /// # Errors
    /// [`ServeError::Rejected`] when the move is invalid (cell out of
    /// range, `to` already owns it, the source would be left without
    /// tasks) or when either affected shard has pruned history.
    pub fn reassign_cell(&self, cell: usize, to: usize) -> Result<HandoffReport, ServeError> {
        self.inner.reassign_cell(cell, to)
    }

    /// Splits load: hands the hottest movable cell (most resident
    /// answers) to the least-loaded other shard.
    ///
    /// # Errors
    /// [`ServeError::Rejected`] when no cell is movable or the service has
    /// a single shard; otherwise as [`LabellingService::reassign_cell`].
    pub fn split_hot(&self) -> Result<HandoffReport, ServeError> {
        let (cell, to) = self.inner.pick_cell(true)?;
        self.inner.reassign_cell(cell, to)
    }

    /// Consolidates load: hands the coldest movable cell to the
    /// least-loaded other shard.
    ///
    /// # Errors
    /// As [`LabellingService::split_hot`].
    pub fn merge_cold(&self) -> Result<HandoffReport, ServeError> {
        let (cell, to) = self.inner.pick_cell(false)?;
        self.inner.reassign_cell(cell, to)
    }

    /// Rebalances the campaign's unspent budget across shards by observed
    /// per-shard spend rate since the last rebalance (see
    /// [`crowd_core::Framework::charge`] / `set_budget` — this drives
    /// those hooks). Returns the new per-shard slices.
    pub fn rebalance_budget(&self) -> Vec<usize> {
        self.inner.rebalance()
    }
}

impl Drop for LabellingService {
    fn drop(&mut self) {
        // Detach without joining: pool drains (if this was the last
        // campaign) exit on their next poll.
        let _ = self.close();
    }
}

/// A cloneable producer endpoint for a [`LabellingService`].
///
/// The handle *is* the router: it resolves the owning shard of every
/// command against the *current* shard map version and enqueues onto that
/// shard's pool slot, stamping the command with the map version it was
/// routed under. A handoff racing the enqueue is benign: the drain side
/// re-checks ownership under the shard lock and re-resolves against the
/// newer map when the task has moved (counted in
/// [`ServiceMetrics::rerouted`](crate::ServiceMetrics)).
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ServiceHandle { .. }")
    }
}

impl ServiceHandle {
    fn enqueue(&self, shard: usize, epoch: u64, span: u64, cmd: Command) -> Result<(), ServeError> {
        if !self.inner.open.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        // Recorded *before* the send: once the command is in the queue the
        // drain thread races this caller, and the span's "drain" event
        // must sort after its "enqueue" event.
        self.inner.obs.trace.record(span, "enqueue", Some(shard));
        let slot = shard % self.inner.pool.queues.len();
        // Counted *before* the send so `quiesce` never observes
        // `processed` overtaking `enqueued` mid-handoff of the count.
        self.inner.enqueued.fetch_add(1, Ordering::AcqRel);
        let routed = Routed {
            campaign: self.inner.campaign,
            shard: shard as u32,
            epoch,
            cmd,
        };
        if self.inner.pool.queues[slot].send(routed).is_err() {
            self.inner.enqueued.fetch_sub(1, Ordering::AcqRel);
            return Err(ServeError::Closed);
        }
        self.inner.metrics[shard].note_queue_depth(self.inner.pool.queues[slot].len());
        Ok(())
    }

    /// Enqueues an answer on its owning shard's queue without waiting for
    /// it to be applied. Blocks only when *that shard's* queue is full
    /// (per-shard backpressure).
    ///
    /// A request → fire-and-forget answer → request loop for the same
    /// workers is safe: every issued pair stays *reserved* on its shard
    /// until the answer is applied, so a follow-up request racing a
    /// still-queued submit skips the in-flight pair instead of re-issuing
    /// it (see [`crowd_core::ReservationSet`]).
    ///
    /// # Errors
    /// [`ServeError::Closed`] when the service is shut down, or
    /// [`CoreError::UnknownTask`] when no shard owns the task (the router
    /// rejects it before it reaches a queue). Other validation failures
    /// (duplicate answers, foreign worker ids) surface in the shard
    /// metrics, not here — use [`ServiceHandle::submit_wait`] to observe
    /// them.
    pub fn submit(
        &self,
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
    ) -> Result<(), ServeError> {
        self.submit_traced(worker, task, bits, 0)
    }

    /// [`ServiceHandle::submit`] with an explicit trace span: the
    /// "enqueue", "drain", "apply" (and, when triggered, "em" /
    /// "gossip_fold") events the command produces all carry `span`, so a
    /// reader of the trace ring can follow this one answer across
    /// threads. Span 0 means untraced — no events are recorded.
    ///
    /// # Errors
    /// As [`ServiceHandle::submit`].
    pub fn submit_traced(
        &self,
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
        span: u64,
    ) -> Result<(), ServeError> {
        let map = self.inner.map();
        let Some(shard) = map.shard_of_task_checked(task) else {
            return Err(CoreError::UnknownTask(task).into());
        };
        self.enqueue(
            shard,
            map.version(),
            span,
            Command::Submit {
                worker,
                task,
                bits,
                reply: None,
                span,
                queued_at: Instant::now(),
            },
        )
    }

    /// Enqueues an answer and blocks until it is applied, returning whether
    /// it triggered a delayed full EM.
    ///
    /// # Errors
    /// [`ServeError::Closed`] when the service is shut down, or the
    /// underlying [`CoreError`] when the router or the shard rejects the
    /// answer.
    pub fn submit_wait(
        &self,
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
    ) -> Result<bool, ServeError> {
        let map = self.inner.map();
        let Some(shard) = map.shard_of_task_checked(task) else {
            return Err(CoreError::UnknownTask(task).into());
        };
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.enqueue(
            shard,
            map.version(),
            0,
            Command::Submit {
                worker,
                task,
                bits,
                reply: Some(reply_tx),
                span: 0,
                queued_at: Instant::now(),
            },
        )?;
        reply_rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Requests tasks for a batch of workers and blocks for the
    /// assignment. The command queues on the workers' home shard; its
    /// drain thread serves locally first and roams to other shards when
    /// the home region has nothing assignable. Task ids in the result are
    /// global. An empty assignment means budget remains but nothing is
    /// currently assignable to these workers.
    ///
    /// # Errors
    /// [`ServeError::Closed`] when the service is shut down,
    /// [`CoreError::BudgetExhausted`] when every shard's slice is spent, or
    /// [`CoreError::UnknownWorker`] for unregistered ids.
    pub fn request_tasks(&self, workers: &[WorkerId]) -> Result<Assignment, ServeError> {
        self.request_tasks_traced(workers, 0)
    }

    /// [`ServiceHandle::request_tasks`] with an explicit trace span (see
    /// [`ServiceHandle::submit_traced`]; span 0 means untraced).
    ///
    /// # Errors
    /// As [`ServiceHandle::request_tasks`].
    pub fn request_tasks_traced(
        &self,
        workers: &[WorkerId],
        span: u64,
    ) -> Result<Assignment, ServeError> {
        let Some(&first) = workers.first() else {
            return Ok(Assignment::new(Vec::new()));
        };
        let Some(home) = self.inner.worker_home.read().get(first.index()).copied() else {
            return Err(CoreError::UnknownWorker(first).into());
        };
        let epoch = self.inner.map().version();
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.enqueue(
            home,
            epoch,
            span,
            Command::Request {
                workers: workers.to_vec(),
                reply: reply_tx,
                span,
                queued_at: Instant::now(),
            },
        )?;
        reply_rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Registers a worker mid-campaign (see
    /// [`LabellingService::register_worker`] — this is the same operation,
    /// reachable from a handle so the HTTP front-end can thread
    /// `POST /workers/register` through to every shard's
    /// [`crowd_core::Framework::register_worker`]).
    ///
    /// # Errors
    /// [`ServeError::Closed`] when the service is shut down, or the
    /// underlying [`CoreError`] when the worker is invalid.
    pub fn register_worker(&self, worker: Worker) -> Result<WorkerId, ServeError> {
        if !self.inner.open.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        self.inner.register_worker(worker)
    }

    /// Commands currently waiting across the pool's ingestion queues
    /// (shared with any other campaigns on the same pool).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.pool.queued_total()
    }
}
