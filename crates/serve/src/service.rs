//! The concurrent labelling service: sharded campaign state behind striped
//! locks, fed by one bounded ingestion queue *per shard*.
//!
//! ```text
//!  producers (request/submit)      per-shard queues           shards
//!  ┌────────┐  route by task   ┌─▶ queue S0 ─▶ drain S0 ─▶│ RwLock S0 │
//!  │ handle │──────────────────┤                          ├───────────┤
//!  └────────┘  (cheap array    ├─▶ queue S1 ─▶ drain S1 ─▶│ RwLock S1 │
//!  ┌────────┐   lookup in the  │                          ├───────────┤
//!  │ handle │─┘ ShardMap)      └─▶   …            …       │     …     │
//!  └────────┘
//! ```
//!
//! * [`ServiceHandle::submit`] routes the answer to its owning shard's
//!   queue at the call site (a single array lookup) and enqueues it there;
//!   the bounded queue blocks the producer only when *that shard* falls
//!   behind. A shard busy in a delayed full EM therefore never blocks
//!   traffic destined for idle shards — the head-of-line blocking that made
//!   a 2-shard service slower than 1 shard on the shared-queue design.
//! * [`ServiceHandle::request_tasks`] enqueues on the workers' home shard
//!   and blocks on a one-shot reply channel; the draining thread serves
//!   from its own shard first and roams to the shard with the most
//!   remaining budget when the home region has nothing assignable.
//! * Each shard has exactly one drain thread popping its queue in batches
//!   and applying commands under the shard's write lock, so traffic to
//!   different regions runs in parallel end to end.
//! * With [`ServeConfig::gossip_every`] set, the drain loops additionally
//!   run the cross-shard worker-quality gossip: every N applied answers a
//!   shard publishes its worker-side sufficient statistics to a shared
//!   exchange and folds its peers' latest deltas, so every shard's
//!   `P(i_w)` / `P(d_w)` estimates converge on the pooled (unsharded)
//!   values. Folds are recorded as positioned events, keeping shard state
//!   a deterministic function of its persisted event stream.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use crowd_core::{
    Assignment, CoreError, Distances, EmConfig, FrameworkConfig, LabelBits, RecorderHandle, TaskId,
    TaskSet, UpdatePolicy, WorkerId, WorkerPool, WorkerStatDelta,
};
use parking_lot::{Mutex, RwLock};

use crate::metrics::{ServiceMetrics, ShardMetrics};
use crate::obs::{CoreRecorder, ObsHub};
use crate::shard::{Shard, ShardMap};
use crate::spill::SpillWriter;

/// What a shard keeps in memory as its answer stream grows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RetentionPolicy {
    /// Keep every answer payload in memory for the campaign's lifetime —
    /// the historical behaviour, and the only mode in which the full
    /// replay restore/verify path exists.
    #[default]
    KeepAll,
    /// Bound memory: whenever a shard records a full-sweep checkpoint at
    /// the end of its stream, drop the answer payloads the checkpoint
    /// covers, keeping only a two-integer `(worker, task)` index (exact
    /// duplicate detection and counts) plus the frozen sufficient-
    /// statistics baseline. Resident memory is O(suffix since the last
    /// checkpoint), not O(campaign).
    PruneCheckpointed {
        /// When set, pruned payloads are appended to
        /// `{spill_dir}/shard-{id}.spill` before being dropped (the cold
        /// archive tier — see [`crate::spill`]). `None` discards them:
        /// snapshots still restore bit-identically through the checkpoint,
        /// but the raw pre-checkpoint answers are gone. Spilling is
        /// best-effort: an I/O error disables the writer rather than
        /// blocking ingestion.
        spill_dir: Option<String>,
    },
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServeConfig {
    /// Number of geographic shards (clamped to the task count).
    pub n_shards: usize,
    /// Legacy knob from the shared-queue design: the service now runs
    /// exactly one drain thread per shard, and
    /// [`LabellingService::start`] normalises this field to the (clamped)
    /// shard count so [`LabellingService::config`] reports reality.
    pub ingest_threads: usize,
    /// Total ingestion capacity — the backpressure bound, split evenly
    /// across the per-shard queues (at least one slot each). A producer
    /// blocks only when the *target shard's* queue is full.
    pub queue_capacity: usize,
    /// Maximum commands a drain thread applies per wakeup.
    pub drain_batch: usize,
    /// Total campaign budget, split proportionally across shards.
    pub budget: usize,
    /// Tasks per HIT.
    pub h: usize,
    /// Inference configuration (shared by every shard's framework).
    pub em: EmConfig,
    /// Online-update policy (per shard).
    pub policy: UpdatePolicy,
    /// Cross-shard worker-quality gossip: every `gossip_every` answers a
    /// shard applies, it publishes its worker-side sufficient statistics
    /// to the shared exchange and folds its peers' latest deltas into its
    /// own model (see [`crowd_core::model::gossip`]). The folds land
    /// before the shard's next delayed rebuild, so dirty-set sweeps
    /// re-estimate under the pooled worker quality. `None` (or `Some(0)`)
    /// disables gossip everywhere — each shard estimates `P(i_w)` from its
    /// own answers only, the pre-gossip behaviour.
    pub gossip_every: Option<usize>,
    /// Period, in milliseconds, of the observability self-sampler thread
    /// that appends queue-depth and event-log-length gauge points to the
    /// service's [`ObsHub`]. `0` disables the sampler.
    pub obs_sample_ms: u64,
    /// What each shard keeps in memory as its stream grows (see
    /// [`RetentionPolicy`]). Defaults to [`RetentionPolicy::KeepAll`].
    pub retention: RetentionPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            n_shards: 4,
            ingest_threads: 2,
            queue_capacity: 1024,
            drain_batch: 64,
            budget: 1000,
            h: 2,
            em: EmConfig::default(),
            policy: UpdatePolicy::default(),
            gossip_every: None,
            obs_sample_ms: 200,
            retention: RetentionPolicy::KeepAll,
        }
    }
}

impl ServeConfig {
    /// The per-shard framework configuration for a given budget slice.
    #[must_use]
    pub fn framework_config(&self, budget_slice: usize) -> FrameworkConfig {
        FrameworkConfig {
            em: self.em.clone(),
            policy: self.policy,
            budget: budget_slice,
            h: self.h,
        }
    }
}

/// Service-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The underlying framework rejected the command.
    Core(CoreError),
    /// The service is shut down (or shutting down) and accepts no commands.
    Closed,
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Core(e) => write!(f, "{e}"),
            Self::Closed => write!(f, "labelling service is closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// An ingestion command. Every command carries its trace span (0 =
/// untraced) and the instant it was enqueued, so the drain side can
/// record shard queue-wait time and continue the span.
enum Command {
    Submit {
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
        reply: Option<Sender<Result<bool, ServeError>>>,
        span: u64,
        queued_at: Instant,
    },
    Request {
        workers: Vec<WorkerId>,
        reply: Sender<Result<Assignment, ServeError>>,
        span: u64,
        queued_at: Instant,
    },
}

/// Shared state between the service, its handles and the drain threads.
pub(crate) struct Inner {
    pub(crate) shards: Vec<RwLock<Shard>>,
    pub(crate) map: ShardMap,
    pub(crate) metrics: Vec<ShardMetrics>,
    /// The gossip exchange: each shard's latest published worker-stat
    /// delta. Leaf locks — never held while acquiring a shard lock.
    pub(crate) exchange: Vec<RwLock<Option<WorkerStatDelta>>>,
    /// Gossip cadence (copied out of the config for the hot path).
    gossip_every: Option<usize>,
    /// Whether checkpoint pruning is on (copied out of the config).
    prune_on_checkpoint: bool,
    /// Per-shard spill writers (the on-disk answer tier). `None` when
    /// retention keeps everything, spilling is unconfigured, or the writer
    /// was disabled after an I/O error. Leaf locks, taken only while
    /// holding the owning shard's write lock.
    spills: Vec<Mutex<Option<SpillWriter>>>,
    /// One bounded ingestion queue per shard; handles route into these.
    queues: Vec<Sender<Command>>,
    /// Home shard per initially registered worker.
    worker_home: Vec<usize>,
    /// Commands accepted into any queue.
    enqueued: AtomicU64,
    /// Commands fully applied.
    processed: AtomicU64,
    /// Byte length of the last snapshot rendered via
    /// [`LabellingService::snapshot_json`] (operator gauge).
    pub(crate) snapshot_bytes: AtomicU64,
    /// This service's observability hub (histograms, trace ring, gauge
    /// series). Process-local: never serialized into snapshots.
    pub(crate) obs: Arc<ObsHub>,
    /// Cleared on shutdown; handles refuse new commands once false.
    open: AtomicBool,
    started: Instant,
}

impl Inner {
    pub(crate) fn n_workers(&self) -> usize {
        self.worker_home.len()
    }

    /// Commands currently waiting across all per-shard queues.
    fn queued_total(&self) -> usize {
        self.queues.iter().map(Sender::len).sum()
    }

    /// Applies one command routed to `shard` (the drain thread's own
    /// shard). Routing already happened at the `ServiceHandle` call site;
    /// this side trusts the queue it popped from.
    fn apply(&self, shard: usize, cmd: Command) {
        match cmd {
            Command::Submit {
                worker,
                task,
                bits,
                reply,
                span,
                queued_at,
            } => {
                self.obs.queue_wait.record_duration(queued_at.elapsed());
                self.obs.trace.record(span, "drain", Some(shard));
                let result = self.apply_submit(shard, worker, task, bits, span);
                if let Some(reply) = reply {
                    // A producer that gave up on the reply is not an error.
                    let _ = reply.send(result);
                }
            }
            Command::Request {
                workers,
                reply,
                span,
                queued_at,
            } => {
                self.obs.queue_wait.record_duration(queued_at.elapsed());
                self.obs.trace.record(span, "drain", Some(shard));
                let _ = reply.send(self.apply_request(shard, &workers));
            }
        }
        self.processed.fetch_add(1, Ordering::AcqRel);
    }

    fn apply_submit(
        &self,
        shard_id: usize,
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
        span: u64,
    ) -> Result<bool, ServeError> {
        debug_assert_eq!(
            self.map.shard_of_task_checked(task),
            Some(shard_id),
            "submit routed to the wrong shard queue"
        );
        let mut shard = self.shards[shard_id].write();
        let applied_at = Instant::now();
        let result = shard.submit_global(worker, task, bits);
        self.obs.apply.record_duration(applied_at.elapsed());
        match result {
            Ok(triggered) => {
                self.obs.trace.record(span, "apply", Some(shard_id));
                if triggered {
                    // The delayed full EM ran inside submit_global; its
                    // duration lands in the EM histograms via the core
                    // recorder, this event ties it to the span.
                    self.obs.trace.record(span, "em", Some(shard_id));
                }
                self.metrics[shard_id].record_submit(triggered);
                // Gossip piggybacks on the drain loop: every
                // `gossip_every`-th applied answer, publish + fold while
                // still holding this shard's write lock, so the fold
                // position in the event stream is exact.
                // A delayed full EM just recorded a checkpoint at the
                // exact end of the stream; under a pruning policy this is
                // the moment the covered prefix leaves memory. Must run
                // *before* the gossip round below appends an event and
                // makes the checkpoint non-current.
                if triggered {
                    self.maybe_prune(shard_id, &mut shard);
                }
                if let Some(every) = self.gossip_every.filter(|&n| n > 0) {
                    // Cadence counts the whole stream, so pruning the
                    // resident log never shifts the gossip schedule.
                    if shard.framework().log().stream_len() % every == 0 {
                        self.gossip_round(shard_id, &mut shard, span);
                    }
                }
                Ok(triggered)
            }
            Err(e) => {
                self.metrics[shard_id].record_rejected();
                Err(e.into())
            }
        }
    }

    /// One gossip round for `shard`: publish its cumulative worker
    /// statistics to the exchange, then fold every peer's latest published
    /// delta in one batched pass (each covered worker's pooled parameters
    /// refresh once per round, not once per delta). The exchange slots are
    /// leaf locks, taken strictly after the shard lock the caller already
    /// holds. `span` ties the round into the trace when the triggering
    /// answer was traced (0 otherwise).
    pub(crate) fn gossip_round(&self, shard_id: usize, shard: &mut Shard, span: u64) {
        let started = Instant::now();
        self.publish(shard_id, shard.publish_delta());
        self.fold_round(shard_id, shard);
        self.obs.gossip_round.record_duration(started.elapsed());
        self.obs.trace.record(span, "gossip_fold", Some(shard_id));
    }

    /// The fold half of a gossip round: fold every peer's latest published
    /// delta in one batched pass (each covered worker's pooled parameters
    /// refresh once per round, not once per delta). Slots whose version
    /// the shard has already absorbed are skipped before cloning — in
    /// steady state with slow-publishing peers a round costs one version
    /// comparison per peer, not a deep copy.
    pub(crate) fn fold_round(&self, shard_id: usize, shard: &mut Shard) {
        // Clone each (new-to-us) slot out under its lock; fold outside.
        let deltas: Vec<WorkerStatDelta> = (0..self.shards.len())
            .filter(|&peer| peer != shard_id)
            .filter_map(|peer| {
                let slot = self.exchange[peer].read();
                slot.as_ref()
                    .filter(|held| {
                        shard
                            .framework()
                            .peer_stats()
                            .version_of(held.source)
                            .is_none_or(|seen| seen < held.version)
                    })
                    .cloned()
            })
            .collect();
        let folded = shard.fold_peers(&deltas);
        self.metrics[shard_id].record_gossip_round(folded);
        self.metrics[shard_id].set_events_len(shard.gossip_events().len() as u64);
    }

    /// Whether gossip is configured on (`Some(0)` spells disabled, like a
    /// `None`, on every gossip path).
    fn gossip_enabled(&self) -> bool {
        self.gossip_every.is_some_and(|n| n > 0)
    }

    /// Under a pruning retention policy, drops the answer prefix the
    /// shard's (current) checkpoint covers: spills the payloads to the
    /// shard's on-disk tier when one is configured, then updates the
    /// resident/pruned gauges. No-op (and cheap) when retention keeps
    /// everything or the checkpoint is not at the exact end of the stream.
    /// Caller holds the shard's write lock.
    pub(crate) fn maybe_prune(&self, shard_id: usize, shard: &mut Shard) {
        if !self.prune_on_checkpoint {
            return;
        }
        let Some(drained) = shard.prune_to_checkpoint() else {
            return;
        };
        let mut slot = self.spills[shard_id].lock();
        if let Some(writer) = slot.as_mut() {
            let spilled = drained
                .iter()
                .try_for_each(|&(worker, task, bits)| writer.append(worker, task, bits))
                .and_then(|()| writer.flush());
            if spilled.is_err() {
                // Best-effort archive: a failing disk must not take down
                // ingestion. The writer is dropped so the error surfaces
                // once, not per prune.
                *slot = None;
            }
        }
        drop(slot);
        self.metrics[shard_id].set_answer_tiers(shard.resident_answers(), shard.pruned_answers());
    }

    /// Stores `delta` as `shard_id`'s latest published statistics unless
    /// the slot already holds a newer version.
    pub(crate) fn publish(&self, shard_id: usize, delta: WorkerStatDelta) {
        let mut slot = self.exchange[shard_id].write();
        if slot
            .as_ref()
            .is_none_or(|held| held.version < delta.version)
        {
            *slot = Some(delta);
        }
    }

    fn apply_request(&self, home: usize, workers: &[WorkerId]) -> Result<Assignment, ServeError> {
        if workers.is_empty() {
            return Ok(Assignment::new(Vec::new()));
        }
        // Candidate order: home region first (location-aware routing), then
        // the fattest remaining budget slices. The mirror may lag by an
        // in-flight request; the shard's framework stays authoritative.
        let mut candidates: Vec<usize> = (0..self.shards.len()).collect();
        candidates.sort_by_key(|&s| (std::cmp::Reverse(self.metrics[s].budget_remaining()), s));
        if let Some(pos) = candidates.iter().position(|&s| s == home) {
            candidates.remove(pos);
            candidates.insert(0, home);
        }
        let mut saw_budget = false;
        for s in candidates {
            if self.metrics[s].budget_remaining() == 0 {
                continue;
            }
            let mut shard = self.shards[s].write();
            match shard.request(workers) {
                Ok(a) if !a.is_empty() => {
                    self.metrics[s].record_request(a.total());
                    self.metrics[s].set_budget_remaining(shard.framework().budget_remaining());
                    return Ok(a);
                }
                // Budget remains but these workers have answered everything
                // assignable here; roam to the next shard.
                Ok(_) => saw_budget = true,
                Err(CoreError::BudgetExhausted) => {
                    self.metrics[s].set_budget_remaining(0);
                }
                Err(e) => {
                    self.metrics[s].record_rejected();
                    return Err(e.into());
                }
            }
        }
        if saw_budget {
            Ok(Assignment::new(Vec::new()))
        } else {
            Err(CoreError::BudgetExhausted.into())
        }
    }
}

fn drain_loop(inner: &Inner, shard: usize, rx: &Receiver<Command>, drain_batch: usize) {
    let mut batch: Vec<Command> = Vec::with_capacity(drain_batch.max(1));
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(cmd) => batch.push(cmd),
            Err(RecvTimeoutError::Timeout) => {
                if !inner.open.load(Ordering::Acquire) && rx.is_empty() {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
        while batch.len() < drain_batch.max(1) {
            match rx.try_recv() {
                Ok(cmd) => batch.push(cmd),
                Err(_) => break,
            }
        }
        for cmd in batch.drain(..) {
            inner.apply(shard, cmd);
        }
    }
}

/// The observability self-sampler: appends one queue-depth and one
/// event-log-length gauge point per period until shutdown. Reads only
/// lock-free counters (`events_len`, channel lengths), never a shard
/// lock, so sampling cannot perturb the ingestion path.
fn sampler_loop(inner: &Inner, period: Duration) {
    while inner.open.load(Ordering::Acquire) {
        inner
            .obs
            .queue_depth_series
            .record(inner.queued_total() as u64);
        let events: u64 = inner.metrics.iter().map(ShardMetrics::events_len).sum();
        inner.obs.events_len_series.record(events);
        // Sleep in short naps so shutdown never waits a full period.
        let mut left = period;
        while !left.is_zero() && inner.open.load(Ordering::Acquire) {
            let nap = left.min(Duration::from_millis(25));
            std::thread::sleep(nap);
            left = left.saturating_sub(nap);
        }
    }
}

/// A sharded, concurrent labelling campaign service.
///
/// Construction spawns the drain threads; [`LabellingService::handle`]
/// hands out cloneable producer endpoints. Producers stop, then
/// [`LabellingService::quiesce`] flushes the queue, and
/// [`LabellingService::shutdown`] joins the drain threads. Dropping the
/// service without a shutdown also stops the threads (they notice the
/// closed flag within one poll interval).
pub struct LabellingService {
    pub(crate) inner: Arc<Inner>,
    pub(crate) config: ServeConfig,
    drains: Vec<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for LabellingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabellingService")
            .field("n_shards", &self.inner.shards.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl LabellingService {
    /// Starts a service over `tasks` and `workers`.
    ///
    /// The requested shard count is clamped to the task count; the clamped
    /// value is what [`LabellingService::config`] reports afterwards.
    ///
    /// # Panics
    /// Panics if `tasks` is empty.
    #[must_use]
    pub fn start(tasks: &TaskSet, workers: &WorkerPool, mut config: ServeConfig) -> Self {
        let map = ShardMap::build(tasks, config.n_shards);
        config.n_shards = map.n_shards();
        // One drain thread per shard; normalise the legacy knob to reality.
        config.ingest_threads = map.n_shards();
        // Every shard measures d(w, t) on the campaign-global scale.
        let distances = Distances::from_tasks(tasks);
        let slices = map.budget_slices(config.budget);
        let shards: Vec<RwLock<Shard>> = (0..map.n_shards())
            .map(|s| {
                RwLock::new(Shard::new(
                    s,
                    tasks,
                    map.tasks_of(s),
                    workers.clone(),
                    config.framework_config(slices[s]),
                    distances,
                ))
            })
            .collect();
        let metrics: Vec<ShardMetrics> = slices
            .iter()
            .map(|&b| ShardMetrics::with_budget(b))
            .collect();
        // Every shard's model sweeps with the same resolved thread count;
        // seed the gauge once so /metrics reports it before the first
        // rebuild fires.
        let em_threads = config.policy.parallelism.resolve() as u64;
        for m in &metrics {
            m.set_em_threads(em_threads);
        }
        let worker_home = workers
            .iter()
            .map(|w| map.shard_for_point(w.locations[0]))
            .collect();
        // The total backpressure bound is dealt evenly across shards.
        let per_shard_capacity = (config.queue_capacity / map.n_shards()).max(1);
        let mut queues = Vec::with_capacity(map.n_shards());
        let mut receivers = Vec::with_capacity(map.n_shards());
        for _ in 0..map.n_shards() {
            let (tx, rx) = channel::bounded(per_shard_capacity);
            queues.push(tx);
            receivers.push(rx);
        }
        let exchange = (0..map.n_shards()).map(|_| RwLock::new(None)).collect();
        // The on-disk answer tier: one append-mode spill writer per shard
        // when pruning is configured with a directory. Best-effort — a
        // writer that cannot open starts disabled instead of failing the
        // service.
        let spill_dir = match &config.retention {
            RetentionPolicy::PruneCheckpointed { spill_dir } => spill_dir.clone(),
            RetentionPolicy::KeepAll => None,
        };
        let spills = (0..map.n_shards())
            .map(|s| {
                Mutex::new(
                    spill_dir
                        .as_ref()
                        .and_then(|dir| SpillWriter::open(std::path::Path::new(dir), s).ok()),
                )
            })
            .collect();
        // Wire the core recorder before any answer flows: EM rebuilds and
        // assignment rounds inside the shards land in this service's hub.
        let obs = Arc::new(ObsHub::new());
        let recorder = RecorderHandle::new(Arc::new(CoreRecorder::new(Arc::clone(&obs))));
        for lock in &shards {
            lock.write().framework_mut().set_recorder(recorder.clone());
        }
        let inner = Arc::new(Inner {
            shards,
            map,
            metrics,
            exchange,
            gossip_every: config.gossip_every,
            prune_on_checkpoint: matches!(
                config.retention,
                RetentionPolicy::PruneCheckpointed { .. }
            ),
            spills,
            queues,
            worker_home,
            enqueued: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(0),
            obs,
            open: AtomicBool::new(true),
            started: Instant::now(),
        });
        let drains = receivers
            .into_iter()
            .enumerate()
            .map(|(s, rx)| {
                let inner = Arc::clone(&inner);
                let drain_batch = config.drain_batch;
                std::thread::Builder::new()
                    .name(format!("crowd-serve-shard-{s}"))
                    .spawn(move || drain_loop(&inner, s, &rx, drain_batch))
                    .expect("spawn drain thread")
            })
            .collect();
        let sampler = (config.obs_sample_ms > 0).then(|| {
            let inner = Arc::clone(&inner);
            let period = Duration::from_millis(config.obs_sample_ms);
            std::thread::Builder::new()
                .name("crowd-obs-sampler".to_owned())
                .spawn(move || sampler_loop(&inner, period))
                .expect("spawn obs sampler thread")
        });
        Self {
            inner,
            config,
            drains,
            sampler,
        }
    }

    /// The effective configuration (shard count clamped, thread count
    /// normalised).
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// A cloneable producer endpoint.
    #[must_use]
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Blocks until every accepted command has been applied. Producers must
    /// have stopped sending first, otherwise this chases a moving target.
    pub fn quiesce(&self) {
        loop {
            let enqueued = self.inner.enqueued.load(Ordering::Acquire);
            let processed = self.inner.processed.load(Ordering::Acquire);
            if processed >= enqueued && self.inner.queued_total() == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Flushes the queue, closes the service to new commands and joins the
    /// drain threads. Call after producers have stopped.
    pub fn shutdown(mut self) {
        self.quiesce();
        self.inner.open.store(false, Ordering::Release);
        for handle in self.drains.drain(..) {
            let _ = handle.join();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
    }

    /// Point-in-time service metrics.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        let shards: Vec<_> = self
            .inner
            .metrics
            .iter()
            .enumerate()
            .map(|(s, m)| m.snapshot(s, self.inner.queues[s].len()))
            .collect();
        // Summing the per-shard snapshots keeps the service total
        // consistent with them within this one snapshot.
        let queue_depth = shards.iter().map(|s| s.queue_depth).sum();
        ServiceMetrics {
            shards,
            queue_depth,
            enqueued: self.inner.enqueued.load(Ordering::Acquire),
            processed: self.inner.processed.load(Ordering::Acquire),
            snapshot_bytes: self.inner.snapshot_bytes.load(Ordering::Relaxed),
            uptime: self.inner.started.elapsed(),
        }
    }

    /// Hardened label decisions for every task, indexed by global task id.
    /// Taken under shard read locks; call [`LabellingService::quiesce`]
    /// first for a consistent end-of-campaign view.
    #[must_use]
    pub fn decisions(&self) -> Vec<LabelBits> {
        let mut out = vec![LabelBits::zeros(0); self.inner.map.n_tasks()];
        for lock in &self.inner.shards {
            lock.read().decisions_into(&mut out);
        }
        out
    }

    /// Total budget charged across all shards (authoritative, under read
    /// locks).
    #[must_use]
    pub fn budget_used(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().framework().budget_used())
            .sum()
    }

    /// Total answers accepted across all shards over the campaign's whole
    /// stream — pruned answers count; this is not the resident total.
    #[must_use]
    pub fn answers_total(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().framework().log().stream_len())
            .sum()
    }

    /// Answers currently held in memory across all shards (the retained
    /// stream suffixes; equals [`LabellingService::answers_total`] until a
    /// retention prune runs).
    #[must_use]
    pub fn answers_resident(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().resident_answers())
            .sum()
    }

    /// Runs one full batch EM on every shard (end-of-campaign hardening,
    /// the moral equivalent of [`crowd_core::Framework::force_full_em`]).
    ///
    /// With gossip enabled, a final exchange cycle runs first — every
    /// shard publishes, then every shard folds — so the hardening sweep
    /// estimates worker quality from the complete pooled statistics. Both
    /// the folds and the sweeps are recorded in the shards' event streams,
    /// so a snapshot taken afterwards still restores bit-identically.
    /// Call after [`LabellingService::quiesce`] for a stable result.
    pub fn force_full_em(&self) {
        if self.inner.gossip_enabled() {
            // Everyone publishes first, so every fold below sees every
            // peer's final statistics.
            for (s, lock) in self.inner.shards.iter().enumerate() {
                let delta = lock.write().publish_delta();
                self.inner.publish(s, delta);
            }
            for (s, lock) in self.inner.shards.iter().enumerate() {
                self.inner.fold_round(s, &mut lock.write());
            }
        }
        for (s, lock) in self.inner.shards.iter().enumerate() {
            let mut shard = lock.write();
            shard.harden();
            // The sweep checkpointed the whole stream; under a pruning
            // policy the covered prefix leaves memory here, in the same
            // critical section, before any new answer can extend the log.
            self.inner.maybe_prune(s, &mut shard);
            self.inner.metrics[s].set_events_len(shard.gossip_events().len() as u64);
        }
    }

    /// Runs an explicit retention prune: hardens every shard (a final
    /// gossip exchange first, when enabled, exactly like
    /// [`LabellingService::force_full_em`]) and drops each shard's
    /// checkpoint-covered prefix from memory in the same critical section.
    /// Returns the total answers pruned by *this* call, or `None` when the
    /// configured retention policy is [`RetentionPolicy::KeepAll`] (the
    /// admin surface maps that to 409). Call after producers have paused
    /// (or accept that a racing submit keeps its shard unpruned this
    /// round).
    pub fn prune(&self) -> Option<usize> {
        if !self.inner.prune_on_checkpoint {
            return None;
        }
        let before: usize = self
            .inner
            .shards
            .iter()
            .map(|s| s.read().pruned_answers())
            .sum();
        self.force_full_em();
        let after: usize = self
            .inner
            .shards
            .iter()
            .map(|s| s.read().pruned_answers())
            .sum();
        Some(after - before)
    }

    /// Read access to a shard (diagnostics and tests).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> parking_lot::RwLockReadGuard<'_, Shard> {
        self.inner.shards[shard].read()
    }

    /// This service's observability hub: latency histograms, the request
    /// trace ring, and the self-sampled gauge series. Process-local —
    /// snapshots never carry it, and a restored service starts fresh.
    #[must_use]
    pub fn obs(&self) -> &Arc<ObsHub> {
        &self.inner.obs
    }
}

impl Drop for LabellingService {
    fn drop(&mut self) {
        // Let detached drain threads exit on their next poll.
        self.inner.open.store(false, Ordering::Release);
    }
}

/// A cloneable producer endpoint for a [`LabellingService`].
///
/// The handle *is* the router: it resolves the owning shard of every
/// command with a single array lookup and enqueues onto that shard's
/// bounded queue, so backpressure is per shard rather than service-wide.
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ServiceHandle { .. }")
    }
}

impl ServiceHandle {
    fn enqueue(&self, shard: usize, span: u64, cmd: Command) -> Result<(), ServeError> {
        if !self.inner.open.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        // Recorded *before* the send: once the command is in the queue the
        // drain thread races this caller, and the span's "drain" event
        // must sort after its "enqueue" event.
        self.inner.obs.trace.record(span, "enqueue", Some(shard));
        self.inner.queues[shard]
            .send(cmd)
            .map_err(|_| ServeError::Closed)?;
        self.inner.metrics[shard].note_queue_depth(self.inner.queues[shard].len());
        self.inner.enqueued.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Enqueues an answer on its owning shard's queue without waiting for
    /// it to be applied. Blocks only when *that shard's* queue is full
    /// (per-shard backpressure).
    ///
    /// A request → fire-and-forget answer → request loop for the same
    /// workers is safe: every issued pair stays *reserved* on its shard
    /// until the answer is applied, so a follow-up request racing a
    /// still-queued submit skips the in-flight pair instead of re-issuing
    /// it (see [`crowd_core::ReservationSet`]).
    ///
    /// # Errors
    /// [`ServeError::Closed`] when the service is shut down, or
    /// [`CoreError::UnknownTask`] when no shard owns the task (the router
    /// rejects it before it reaches a queue). Other validation failures
    /// (duplicate answers, foreign worker ids) surface in the shard
    /// metrics, not here — use [`ServiceHandle::submit_wait`] to observe
    /// them.
    pub fn submit(
        &self,
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
    ) -> Result<(), ServeError> {
        self.submit_traced(worker, task, bits, 0)
    }

    /// [`ServiceHandle::submit`] with an explicit trace span: the
    /// "enqueue", "drain", "apply" (and, when triggered, "em" /
    /// "gossip_fold") events the command produces all carry `span`, so a
    /// reader of the trace ring can follow this one answer across
    /// threads. Span 0 means untraced — no events are recorded.
    ///
    /// # Errors
    /// As [`ServiceHandle::submit`].
    pub fn submit_traced(
        &self,
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
        span: u64,
    ) -> Result<(), ServeError> {
        let Some(shard) = self.inner.map.shard_of_task_checked(task) else {
            return Err(CoreError::UnknownTask(task).into());
        };
        self.enqueue(
            shard,
            span,
            Command::Submit {
                worker,
                task,
                bits,
                reply: None,
                span,
                queued_at: Instant::now(),
            },
        )
    }

    /// Enqueues an answer and blocks until it is applied, returning whether
    /// it triggered a delayed full EM.
    ///
    /// # Errors
    /// [`ServeError::Closed`] when the service is shut down, or the
    /// underlying [`CoreError`] when the router or the shard rejects the
    /// answer.
    pub fn submit_wait(
        &self,
        worker: WorkerId,
        task: TaskId,
        bits: LabelBits,
    ) -> Result<bool, ServeError> {
        let Some(shard) = self.inner.map.shard_of_task_checked(task) else {
            return Err(CoreError::UnknownTask(task).into());
        };
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.enqueue(
            shard,
            0,
            Command::Submit {
                worker,
                task,
                bits,
                reply: Some(reply_tx),
                span: 0,
                queued_at: Instant::now(),
            },
        )?;
        reply_rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Requests tasks for a batch of workers and blocks for the
    /// assignment. The command queues on the workers' home shard; its
    /// drain thread serves locally first and roams to other shards when
    /// the home region has nothing assignable. Task ids in the result are
    /// global. An empty assignment means budget remains but nothing is
    /// currently assignable to these workers.
    ///
    /// # Errors
    /// [`ServeError::Closed`] when the service is shut down,
    /// [`CoreError::BudgetExhausted`] when every shard's slice is spent, or
    /// [`CoreError::UnknownWorker`] for unregistered ids.
    pub fn request_tasks(&self, workers: &[WorkerId]) -> Result<Assignment, ServeError> {
        self.request_tasks_traced(workers, 0)
    }

    /// [`ServiceHandle::request_tasks`] with an explicit trace span (see
    /// [`ServiceHandle::submit_traced`]; span 0 means untraced).
    ///
    /// # Errors
    /// As [`ServiceHandle::request_tasks`].
    pub fn request_tasks_traced(
        &self,
        workers: &[WorkerId],
        span: u64,
    ) -> Result<Assignment, ServeError> {
        let Some(&first) = workers.first() else {
            return Ok(Assignment::new(Vec::new()));
        };
        let Some(&home) = self.inner.worker_home.get(first.index()) else {
            return Err(CoreError::UnknownWorker(first).into());
        };
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.enqueue(
            home,
            span,
            Command::Request {
                workers: workers.to_vec(),
                reply: reply_tx,
                span,
                queued_at: Instant::now(),
            },
        )?;
        reply_rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Commands currently waiting across all per-shard ingestion queues.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.queued_total()
    }
}
