//! Concurrent-ingestion stress tests: N producer threads hammer the
//! service and we assert the three service invariants —
//!
//! 1. no accepted answer is ever lost,
//! 2. no shard ever charges more than its budget slice (and the slices
//!    never exceed the campaign budget),
//! 3. the final model state of every shard equals a deterministic
//!    single-threaded replay of that shard's *event stream* — answers in
//!    arrival order interleaved with any recorded gossip folds at their
//!    recorded positions (which is also the snapshot/restore guarantee).
//!
//! The gossip-enabled variants re-assert all three with the cross-shard
//! worker-quality exchange racing ingestion: fold payloads are produced by
//! racy cross-shard timing, but each shard records what it actually folded
//! and where, so the event replay is still exact.

use crowd_core::{
    synthetic_task, CoreError, Framework, LabelBits, TaskId, TaskSet, Worker, WorkerId, WorkerPool,
};
use crowd_geo::Point;
use crowd_serve::{GossipEventKind, LabellingService, ServeConfig, ServeError, ServiceSnapshot};

const N_TASKS: usize = 40;
const N_WORKERS: usize = 12;
const N_PRODUCERS: usize = 6;
const SUBMITS_PER_PRODUCER: usize = 60;

fn world() -> (TaskSet, WorkerPool) {
    let tasks = TaskSet::new(
        (0..N_TASKS)
            .map(|i| {
                synthetic_task(
                    format!("t{i}"),
                    Point::new((i % 8) as f64, (i / 8) as f64 * 1.7),
                    4,
                )
            })
            .collect(),
    );
    let workers = WorkerPool::from_workers(
        (0..N_WORKERS)
            .map(|i| {
                Worker::at(
                    format!("w{i}"),
                    Point::new((i % 4) as f64 * 2.0, (i / 4) as f64 * 1.5),
                )
            })
            .collect(),
    )
    .unwrap();
    (tasks, workers)
}

/// Deterministic answer content per (worker, task): bits derived from a
/// mixed hash so the stream is reproducible regardless of interleaving.
fn bits_for(w: WorkerId, t: TaskId) -> LabelBits {
    let x = crowd_sim::rngx::pair_seed(u64::from(w.0), u64::from(t.0));
    LabelBits::from_slice(&[x & 1 == 1, x & 2 == 2, x & 4 == 4, x & 8 == 8])
}

/// All distinct (worker, task) pairs, dealt round-robin to producers so
/// every producer touches every shard.
fn producer_streams() -> Vec<Vec<(WorkerId, TaskId)>> {
    let mut streams = vec![Vec::new(); N_PRODUCERS];
    let mut i = 0usize;
    'outer: for w in 0..N_WORKERS {
        for t in 0..N_TASKS {
            streams[i % N_PRODUCERS].push((WorkerId::from_index(w), TaskId::from_index(t)));
            i += 1;
            if i >= N_PRODUCERS * SUBMITS_PER_PRODUCER {
                break 'outer;
            }
        }
    }
    assert!(streams.iter().all(|s| s.len() == SUBMITS_PER_PRODUCER));
    streams
}

/// A full request → answer loop using **fire-and-forget** submits: the
/// per-shard reservation set (see [`crowd_core::ReservationSet`]) keeps a
/// pending pair from being re-issued before its queued answer is applied,
/// so the loop needs no `submit_wait` barrier. An empty assignment may
/// just mean every remaining eligible pair is reserved behind a queued
/// answer, so the loop backs off briefly and retries before concluding
/// the budget (or the worker's task space) is really dry.
fn request_answer_loop(handle: &crowd_serve::ServiceHandle, ids: &[WorkerId]) {
    let mut empties = 0u32;
    loop {
        match handle.request_tasks(ids) {
            Ok(a) if a.is_empty() => {
                empties += 1;
                if empties > 50 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Ok(a) => {
                empties = 0;
                for (w, t) in a.pairs() {
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                }
            }
            Err(_) => break, // budget exhausted
        }
    }
}

/// Replays one shard's event stream — answers in recorded order,
/// interleaved with its recorded gossip folds at their recorded positions
/// — into a fresh framework, single-threaded, and asserts the model state
/// is bit-identical. Without gossip the event list is empty and this is a
/// plain answer-log replay.
fn assert_shard_equals_replay(service: &LabellingService, shard_id: usize) {
    let shard = service.shard(shard_id);
    let live = shard.framework();
    let events = shard.gossip_events();
    let mut replay = Framework::with_distances(
        live.tasks().clone(),
        live.workers().clone(),
        live.config().clone(),
        *live.distances(),
    );
    let mut next_event = 0usize;
    let apply_events_at = |replay: &mut Framework, position: usize, next_event: &mut usize| {
        while *next_event < events.len() && events[*next_event].position == position {
            match &events[*next_event].kind {
                GossipEventKind::Fold(delta) => assert!(
                    replay.fold_peer_stats(delta),
                    "shard {shard_id}: recorded fold {next_event:?} was stale on replay"
                ),
                GossipEventKind::FullSweep => replay.force_full_em(),
                GossipEventKind::FoldRef { .. } => {
                    panic!("shard {shard_id}: pruned fold reference in an unpruned stress run")
                }
                GossipEventKind::Register { .. } => {
                    panic!("shard {shard_id}: registration event in a fixed-pool stress run")
                }
            }
            *next_event += 1;
        }
    };
    for (position, answer) in live.log().answers().iter().enumerate() {
        apply_events_at(&mut replay, position, &mut next_event);
        replay
            .submit(answer.worker, answer.task, answer.bits)
            .expect("replaying a valid log");
    }
    apply_events_at(&mut replay, live.log().len(), &mut next_event);
    assert_eq!(next_event, events.len(), "shard {shard_id}: stray events");
    assert_eq!(
        replay.params(),
        live.params(),
        "shard {shard_id}: concurrent state must equal its deterministic replay"
    );
    assert_eq!(
        replay.inference().decisions(),
        live.inference().decisions(),
        "shard {shard_id}: decisions must match"
    );
    assert_eq!(
        replay.peer_stats(),
        live.peer_stats(),
        "shard {shard_id}: folded peer tables must match"
    );
}

#[test]
fn concurrent_submits_lose_nothing_and_match_replay() {
    let (tasks, workers) = world();
    let service = LabellingService::start(
        &tasks,
        &workers,
        ServeConfig {
            n_shards: 4,
            ingest_threads: 3,
            // Small queue so producers actually hit backpressure.
            queue_capacity: 32,
            budget: 0, // submits only; budget exercised in the next test
            ..ServeConfig::default()
        },
    );
    let streams = producer_streams();
    std::thread::scope(|s| {
        for stream in &streams {
            let handle = service.handle();
            s.spawn(move || {
                for &(w, t) in stream {
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                }
            });
        }
    });
    service.quiesce();

    // Invariant 1: nothing lost, nothing rejected.
    let total = N_PRODUCERS * SUBMITS_PER_PRODUCER;
    assert_eq!(service.answers_total(), total);
    let metrics = service.metrics();
    assert_eq!(metrics.total_submits() as usize, total);
    assert_eq!(metrics.shards.iter().map(|s| s.rejected).sum::<u64>(), 0);
    assert_eq!(metrics.enqueued, metrics.processed);

    // Invariant 3: every shard equals its deterministic replay.
    for shard_id in 0..service.n_shards() {
        assert_shard_equals_replay(&service, shard_id);
    }
    service.shutdown();
}

#[test]
fn per_shard_queues_isolate_traffic_and_match_replay() {
    // One producer per shard floods only that shard's tasks through tiny
    // per-shard queues (heavy backpressure), while the periodic full EM
    // stalls each drain thread in turn. With per-shard queues a stalled
    // shard must not corrupt or lose traffic routed to the other shards,
    // and every shard must still equal its deterministic replay.
    let (tasks, workers) = world();
    let service = LabellingService::start(
        &tasks,
        &workers,
        ServeConfig {
            n_shards: 2,
            queue_capacity: 8, // 4 slots per shard
            budget: 0,
            ..ServeConfig::default()
        },
    );
    assert_eq!(service.n_shards(), 2);
    // Partition every (worker, task) pair by the task's owning shard.
    let mut per_shard: Vec<Vec<(WorkerId, TaskId)>> = vec![Vec::new(); service.n_shards()];
    for w in 0..N_WORKERS {
        for t in 0..N_TASKS {
            let task = TaskId::from_index(t);
            let shard = (0..service.n_shards())
                .find(|&s| service.shard(s).local_of(task).is_some())
                .expect("every task is owned by a shard");
            per_shard[shard].push((WorkerId::from_index(w), task));
        }
    }
    std::thread::scope(|s| {
        for stream in &per_shard {
            let handle = service.handle();
            s.spawn(move || {
                for &(w, t) in stream {
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                }
            });
        }
    });
    service.quiesce();

    assert_eq!(service.answers_total(), N_WORKERS * N_TASKS);
    let metrics = service.metrics();
    assert_eq!(metrics.total_submits() as usize, N_WORKERS * N_TASKS);
    assert!(metrics.shards.iter().all(|s| s.queue_depth == 0));
    assert_eq!(service.handle().queue_depth(), 0);
    for shard_id in 0..service.n_shards() {
        assert_shard_equals_replay(&service, shard_id);
    }

    // The router rejects tasks no shard owns before they reach any queue.
    let err = service
        .handle()
        .submit(WorkerId(0), TaskId(9999), LabelBits::zeros(4))
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::Core(CoreError::UnknownTask(TaskId(9999)))
    ));
    service.shutdown();
}

#[test]
fn concurrent_requests_never_overcharge_budget() {
    let (tasks, workers) = world();
    let budget = 150;
    let service = LabellingService::start(
        &tasks,
        &workers,
        ServeConfig {
            n_shards: 4,
            ingest_threads: 3,
            queue_capacity: 64,
            budget,
            h: 2,
            ..ServeConfig::default()
        },
    );
    // Requester threads drive full request → answer loops concurrently.
    std::thread::scope(|s| {
        for chunk in 0..4 {
            let handle = service.handle();
            s.spawn(move || {
                let ids: Vec<WorkerId> = (0..N_WORKERS)
                    .skip(chunk * 3)
                    .take(3)
                    .map(WorkerId::from_index)
                    .collect();
                request_answer_loop(&handle, &ids);
            });
        }
    });
    service.quiesce();

    // Invariant 2: per-shard charges stay within slices; slices sum to the
    // campaign budget; the campaign never overcharges in total.
    let mut slice_sum = 0;
    let mut used_sum = 0;
    for shard_id in 0..service.n_shards() {
        let shard = service.shard(shard_id);
        let slice = shard.framework().config().budget;
        let used = shard.framework().budget_used();
        assert!(
            used <= slice,
            "shard {shard_id} charged {used} of a {slice} slice"
        );
        slice_sum += slice;
        used_sum += used;
    }
    assert_eq!(slice_sum, budget);
    assert!(used_sum <= budget);
    assert_eq!(used_sum, service.budget_used());
    // Every issued assignment was answered by the loop above — exactly
    // once. Fire-and-forget submits surface duplicates shard-side as
    // rejections, so a zero rejection count proves no pair was ever
    // issued twice and the answer-count equality proves none was lost.
    assert_eq!(service.answers_total(), used_sum);
    let metrics = service.metrics();
    assert_eq!(
        metrics.shards.iter().map(|s| s.rejected).sum::<u64>(),
        0,
        "a reserved pair was re-issued and double-answered"
    );

    // The concurrent interleaving still equals its per-shard replay.
    for shard_id in 0..service.n_shards() {
        assert_shard_equals_replay(&service, shard_id);
    }
    service.shutdown();
}

#[test]
fn snapshot_restore_resume_reproduces_decisions() {
    let (tasks, workers) = world();
    let config = ServeConfig {
        n_shards: 3,
        ingest_threads: 2,
        queue_capacity: 64,
        budget: 0,
        ..ServeConfig::default()
    };
    let service = LabellingService::start(&tasks, &workers, config);

    // Phase 1: concurrent producers submit the first half of the stream.
    let streams = producer_streams();
    let (phase1, phase2): (Vec<_>, Vec<_>) = streams
        .iter()
        .flat_map(|s| s.iter().copied())
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    std::thread::scope(|s| {
        for chunk in phase1.chunks(30) {
            let handle = service.handle();
            s.spawn(move || {
                for &(_, (w, t)) in chunk {
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                }
            });
        }
    });
    service.quiesce();

    // Snapshot through the JSON wire format.
    let snapshot = service.snapshot();
    let json = snapshot.to_json();
    let parsed = ServiceSnapshot::from_json(&json).unwrap();
    assert_eq!(parsed, snapshot);
    let restored = LabellingService::restore(&tasks, &workers, &parsed).unwrap();

    // Restore reproduces the snapshotted inference exactly.
    assert_eq!(restored.decisions(), service.decisions());
    assert_eq!(restored.answers_total(), service.answers_total());

    // Phase 2 (resume): feed both services the same remaining answers from
    // one thread; they must stay in lockstep.
    let original_handle = service.handle();
    let restored_handle = restored.handle();
    for &(_, (w, t)) in &phase2 {
        original_handle.submit_wait(w, t, bits_for(w, t)).unwrap();
        restored_handle.submit_wait(w, t, bits_for(w, t)).unwrap();
    }
    service.quiesce();
    restored.quiesce();
    assert_eq!(restored.decisions(), service.decisions());
    assert_eq!(
        restored.snapshot().to_json(),
        service.snapshot().to_json(),
        "resumed services must serialise identically"
    );
    service.shutdown();
    restored.shutdown();
}

#[test]
fn gossip_racing_ingestion_loses_nothing_and_matches_event_replay() {
    // Producers hammer all shards while the per-shard gossip (every 25
    // applied answers) publishes and folds worker statistics concurrently.
    // The fold payloads depend on racy cross-shard timing, but invariant 1
    // (nothing lost) and invariant 3 (event replay equality) must still
    // hold, and the gossip-round metrics must advance.
    let (tasks, workers) = world();
    let service = LabellingService::start(
        &tasks,
        &workers,
        ServeConfig {
            n_shards: 4,
            queue_capacity: 32,
            budget: 0,
            gossip_every: Some(25),
            ..ServeConfig::default()
        },
    );
    let streams = producer_streams();
    std::thread::scope(|s| {
        for stream in &streams {
            let handle = service.handle();
            s.spawn(move || {
                for &(w, t) in stream {
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                }
            });
        }
    });
    service.quiesce();

    let total = N_PRODUCERS * SUBMITS_PER_PRODUCER;
    assert_eq!(service.answers_total(), total);
    let metrics = service.metrics();
    assert_eq!(metrics.total_submits() as usize, total);
    assert_eq!(metrics.shards.iter().map(|s| s.rejected).sum::<u64>(), 0);

    // Gossip actually ran: rounds fired on every shard that crossed the
    // cadence, deltas were folded, and the lag stays below the cadence.
    let rounds: u64 = metrics.shards.iter().map(|s| s.gossip_rounds).sum();
    let folds: u64 = metrics.shards.iter().map(|s| s.gossip_folds).sum();
    assert!(rounds > 0, "no gossip round fired");
    assert!(folds > 0, "no peer delta was ever folded");
    for s in &metrics.shards {
        assert_eq!(s.gossip_rounds, s.submits / 25, "shard {}", s.shard);
        assert!(s.gossip_lag < 25, "shard {} lag {}", s.shard, s.gossip_lag);
    }

    for shard_id in 0..service.n_shards() {
        let shard = service.shard(shard_id);
        assert!(
            !shard.framework().peer_stats().is_empty(),
            "shard {shard_id} never learned about its peers"
        );
        drop(shard);
        assert_shard_equals_replay(&service, shard_id);
    }
    service.shutdown();
}

#[test]
fn gossip_request_loops_never_overcharge_budget() {
    // Invariant 2 with gossip racing the request → answer loops.
    let (tasks, workers) = world();
    let budget = 150;
    let service = LabellingService::start(
        &tasks,
        &workers,
        ServeConfig {
            n_shards: 4,
            queue_capacity: 64,
            budget,
            h: 2,
            gossip_every: Some(10),
            ..ServeConfig::default()
        },
    );
    std::thread::scope(|s| {
        for chunk in 0..4 {
            let handle = service.handle();
            s.spawn(move || {
                let ids: Vec<WorkerId> = (0..N_WORKERS)
                    .skip(chunk * 3)
                    .take(3)
                    .map(WorkerId::from_index)
                    .collect();
                request_answer_loop(&handle, &ids);
            });
        }
    });
    service.quiesce();

    let mut slice_sum = 0;
    let mut used_sum = 0;
    for shard_id in 0..service.n_shards() {
        let shard = service.shard(shard_id);
        let slice = shard.framework().config().budget;
        let used = shard.framework().budget_used();
        assert!(
            used <= slice,
            "shard {shard_id} charged {used} of a {slice} slice"
        );
        slice_sum += slice;
        used_sum += used;
    }
    assert_eq!(slice_sum, budget);
    assert!(used_sum <= budget);
    assert_eq!(used_sum, service.budget_used());
    assert_eq!(service.answers_total(), used_sum);
    assert_eq!(
        service
            .metrics()
            .shards
            .iter()
            .map(|s| s.rejected)
            .sum::<u64>(),
        0,
        "a reserved pair was re-issued and double-answered"
    );
    for shard_id in 0..service.n_shards() {
        assert_shard_equals_replay(&service, shard_id);
    }
    service.shutdown();
}

#[test]
fn gossip_snapshot_restore_resume_stays_in_lockstep() {
    // Phase 1 runs with gossip racing concurrent producers; the snapshot
    // must capture the actual fold events and the in-flight exchange so
    // the restored service is bit-identical *and* keeps gossiping in
    // lockstep with the original under a serialised resume stream.
    let (tasks, workers) = world();
    let config = ServeConfig {
        n_shards: 3,
        queue_capacity: 64,
        budget: 0,
        gossip_every: Some(20),
        ..ServeConfig::default()
    };
    let service = LabellingService::start(&tasks, &workers, config);

    let streams = producer_streams();
    let (phase1, phase2): (Vec<_>, Vec<_>) = streams
        .iter()
        .flat_map(|s| s.iter().copied())
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    std::thread::scope(|s| {
        for chunk in phase1.chunks(30) {
            let handle = service.handle();
            s.spawn(move || {
                for &(_, (w, t)) in chunk {
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                }
            });
        }
    });
    service.quiesce();

    let snapshot = service.snapshot();
    assert!(
        snapshot.shards.iter().any(|s| !s.gossip_events.is_empty()),
        "phase 1 should have produced at least one fold to make this test meaningful"
    );
    assert!(snapshot.exchange.iter().any(Option::is_some));
    let json = snapshot.to_json();
    let parsed = ServiceSnapshot::from_json(&json).unwrap();
    assert_eq!(parsed, snapshot);
    let restored = LabellingService::restore(&tasks, &workers, &parsed).unwrap();

    assert_eq!(restored.decisions(), service.decisions());
    assert_eq!(restored.answers_total(), service.answers_total());

    // Restored gossip metrics are seeded from the replayed events: fold
    // counts match the snapshot and no shard reports a spurious
    // full-history lag.
    let restored_metrics = restored.metrics();
    for (s, shard_snapshot) in snapshot.shards.iter().enumerate() {
        let m = &restored_metrics.shards[s];
        assert_eq!(m.gossip_folds as usize, shard_snapshot.gossip_events.len());
        if let Some(last) = shard_snapshot.gossip_events.last() {
            assert!(m.gossip_rounds > 0);
            assert_eq!(m.gossip_lag, m.submits - last.position as u64);
        }
    }

    // Resume both services with the same serialised stream: gossip
    // triggers at deterministic positions and reads identical exchanges,
    // so they must stay in lockstep through further rounds.
    let original_handle = service.handle();
    let restored_handle = restored.handle();
    for &(_, (w, t)) in &phase2 {
        original_handle.submit_wait(w, t, bits_for(w, t)).unwrap();
        restored_handle.submit_wait(w, t, bits_for(w, t)).unwrap();
    }
    service.quiesce();
    restored.quiesce();
    assert_eq!(restored.decisions(), service.decisions());
    assert_eq!(
        restored.snapshot().to_json(),
        service.snapshot().to_json(),
        "resumed gossiping services must serialise identically"
    );
    for shard_id in 0..service.n_shards() {
        assert_shard_equals_replay(&service, shard_id);
        assert_shard_equals_replay(&restored, shard_id);
    }
    service.shutdown();
    restored.shutdown();
}

#[test]
fn snapshot_after_force_full_em_restores_bit_identically() {
    // force_full_em runs a final exchange cycle *and* hardening sweeps;
    // both are recorded in the event streams, so a snapshot taken after
    // hardening must still restore to bit-identical model state — and a
    // second hardening must exchange the post-sweep statistics (publish
    // versions count publishes, not answers, so the re-publish at an
    // unchanged answer count is not mistaken for a re-delivery).
    let (tasks, workers) = world();
    let service = LabellingService::start(
        &tasks,
        &workers,
        ServeConfig {
            n_shards: 3,
            budget: 0,
            gossip_every: Some(20),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    for w in 0..N_WORKERS {
        for t in 0..N_TASKS {
            let (w, t) = (WorkerId::from_index(w), TaskId::from_index(t));
            handle.submit_wait(w, t, bits_for(w, t)).unwrap();
        }
    }
    service.quiesce();
    service.force_full_em();
    let folds_after_first: u64 = service
        .metrics()
        .shards
        .iter()
        .map(|s| s.gossip_folds)
        .sum();
    // Hardening again with no new answers still exchanges the post-sweep
    // statistics: the re-publishes carry strictly newer versions.
    service.force_full_em();
    let folds_after_second: u64 = service
        .metrics()
        .shards
        .iter()
        .map(|s| s.gossip_folds)
        .sum();
    assert!(
        folds_after_second > folds_after_first,
        "second hardening exchange must fold the post-sweep statistics \
         ({folds_after_first} -> {folds_after_second})"
    );

    let snapshot = service.snapshot();
    assert!(snapshot.shards.iter().all(|s| s
        .gossip_events
        .iter()
        .any(|e| matches!(e.kind, GossipEventKind::FullSweep))));
    let parsed = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap();
    assert_eq!(parsed, snapshot);
    let restored = LabellingService::restore(&tasks, &workers, &parsed).unwrap();
    for shard_id in 0..service.n_shards() {
        assert_eq!(
            restored.shard(shard_id).framework().params(),
            service.shard(shard_id).framework().params(),
            "shard {shard_id}: hardened state must survive snapshot → restore"
        );
        assert_eq!(
            restored.shard(shard_id).publishes(),
            service.shard(shard_id).publishes()
        );
        assert_shard_equals_replay(&restored, shard_id);
    }
    assert_eq!(restored.decisions(), service.decisions());
    service.shutdown();
    restored.shutdown();
}

#[test]
fn mispositioned_gossip_event_is_rejected_on_restore() {
    let (tasks, workers) = world();
    let service = LabellingService::start(
        &tasks,
        &workers,
        ServeConfig {
            n_shards: 2,
            budget: 0,
            gossip_every: Some(5),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    for w in 0..N_WORKERS {
        for t in 0..N_TASKS / 2 {
            let (w, t) = (WorkerId::from_index(w), TaskId::from_index(t));
            handle.submit_wait(w, t, bits_for(w, t)).unwrap();
        }
    }
    let mut snapshot = service.snapshot();
    let shard_with_events = snapshot
        .shards
        .iter()
        .position(|s| !s.gossip_events.is_empty())
        .expect("gossip ran");
    snapshot.shards[shard_with_events].gossip_events[0].position = usize::MAX;
    let err = LabellingService::restore(&tasks, &workers, &snapshot).unwrap_err();
    assert!(
        matches!(err, crowd_serve::SnapshotError::Mismatch(_)),
        "{err}"
    );
    service.shutdown();
}
