//! Snapshot format v3 integration suite — the guarantees the written spec
//! (`docs/SNAPSHOT_FORMAT.md`) promises:
//!
//! 1. **Restore-from-parameters ≡ replay restore**, bit for bit, with
//!    gossip and hardening in the stream (the `--verify` path).
//! 2. **Upgrades**: v1 and v2 documents still parse and restore exactly as
//!    recorded, and re-snapshotting an upgraded service emits a v3
//!    document equivalent to the one a v3-native service would write.
//! 3. **`compact()` ≡ full snapshot**: folding a delta chain into a base
//!    yields byte-identical JSON to a one-shot full snapshot at the same
//!    point, and restores identically.
//! 4. **Mid-gossip stress**: snapshot → delta → compact → restore while
//!    gossip races ingestion, then resume the original and the restored
//!    service in lockstep.

use crowd_core::{synthetic_task, LabelBits, TaskId, TaskSet, Worker, WorkerId, WorkerPool};
use crowd_geo::Point;
use crowd_serve::{
    LabellingService, RetentionPolicy, ServeConfig, ServiceSnapshot, ServiceSnapshotDelta,
    SnapshotError,
};

const N_TASKS: usize = 40;
const N_WORKERS: usize = 12;

fn world() -> (TaskSet, WorkerPool) {
    let tasks = TaskSet::new(
        (0..N_TASKS)
            .map(|i| {
                synthetic_task(
                    format!("t{i}"),
                    Point::new((i % 8) as f64, (i / 8) as f64 * 1.7),
                    4,
                )
            })
            .collect(),
    );
    let workers = WorkerPool::from_workers(
        (0..N_WORKERS)
            .map(|i| {
                Worker::at(
                    format!("w{i}"),
                    Point::new((i % 4) as f64 * 2.0, (i / 4) as f64 * 1.5),
                )
            })
            .collect(),
    )
    .unwrap();
    (tasks, workers)
}

/// Deterministic answer content per (worker, task) — reproducible
/// regardless of interleaving.
fn bits_for(w: WorkerId, t: TaskId) -> LabelBits {
    let x = crowd_sim::rngx::pair_seed(u64::from(w.0), u64::from(t.0));
    LabelBits::from_slice(&[x & 1 == 1, x & 2 == 2, x & 4 == 4, x & 8 == 8])
}

/// All (worker, task) pairs in a deterministic shuffled-ish order.
fn stream() -> Vec<(WorkerId, TaskId)> {
    let mut pairs = Vec::with_capacity(N_WORKERS * N_TASKS);
    for w in 0..N_WORKERS {
        for t in 0..N_TASKS {
            pairs.push((WorkerId::from_index(w), TaskId::from_index(t)));
        }
    }
    // Deal by a fixed stride so consecutive submits hit different shards
    // and different workers, like a live campaign.
    pairs.sort_by_key(|&(w, t)| crowd_sim::rngx::pair_seed(u64::from(w.0), u64::from(t.0)));
    pairs
}

fn gossip_config() -> ServeConfig {
    ServeConfig {
        n_shards: 3,
        queue_capacity: 64,
        budget: 0,
        gossip_every: Some(20),
        ..ServeConfig::default()
    }
}

fn ingest(service: &LabellingService, pairs: &[(WorkerId, TaskId)]) {
    let handle = service.handle();
    for &(w, t) in pairs {
        handle.submit_wait(w, t, bits_for(w, t)).unwrap();
    }
    service.quiesce();
}

fn assert_services_bit_identical(a: &LabellingService, b: &LabellingService, context: &str) {
    assert_eq!(a.n_shards(), b.n_shards(), "{context}: shard counts");
    for i in 0..a.n_shards() {
        let sa = a.shard(i);
        let sb = b.shard(i);
        assert_eq!(
            sa.framework().params(),
            sb.framework().params(),
            "{context}: shard {i} parameters"
        );
        assert_eq!(
            sa.framework().peer_stats(),
            sb.framework().peer_stats(),
            "{context}: shard {i} peer tables"
        );
        assert_eq!(sa.publishes(), sb.publishes(), "{context}: shard {i}");
        assert_eq!(sa.checkpoint(), sb.checkpoint(), "{context}: shard {i}");
    }
    assert_eq!(a.decisions(), b.decisions(), "{context}: decisions");
}

#[test]
fn param_restore_is_bit_identical_to_replay_restore() {
    // Enough traffic for several full sweeps (full_em_every=100 per shard,
    // every 8th rebuild a full sweep) plus hardening, with gossip racing.
    let (tasks, workers) = world();
    let service = LabellingService::start(&tasks, &workers, gossip_config());
    let pairs = stream();
    ingest(&service, &pairs[..pairs.len() / 2]);
    service.force_full_em(); // harden mid-campaign: sweeps + a final exchange
    ingest(&service, &pairs[pairs.len() / 2..]);

    let snapshot = service.snapshot();
    assert!(
        snapshot.shards.iter().all(|s| s.checkpoint.is_some()),
        "every shard hardened at least once, so every shard must carry a checkpoint"
    );
    let parsed = ServiceSnapshot::from_json(&snapshot.to_json()).unwrap();
    assert_eq!(parsed, snapshot);

    let fast = LabellingService::restore(&tasks, &workers, &parsed).unwrap();
    let replay = LabellingService::restore_replay(&tasks, &workers, &parsed).unwrap();
    assert_services_bit_identical(&fast, &replay, "fast vs replay");
    assert_services_bit_identical(&fast, &service, "fast vs live");
    assert_eq!(fast.snapshot().to_json(), replay.snapshot().to_json());

    // restore_verified runs both paths itself and returns the fast one.
    let verified = LabellingService::restore_verified(&tasks, &workers, &parsed).unwrap();
    assert_eq!(verified.snapshot().to_json(), snapshot.to_json());

    // The fast path seeded the metrics consistently: submits equal the
    // answer log, rebuild counts match the deterministic schedule.
    let fast_metrics = fast.metrics();
    let replay_metrics = replay.metrics();
    for i in 0..fast.n_shards() {
        assert_eq!(
            fast_metrics.shards[i].submits,
            replay_metrics.shards[i].submits
        );
        assert_eq!(
            fast_metrics.shards[i].em_rebuilds, replay_metrics.shards[i].em_rebuilds,
            "shard {i}: bulk-load rebuild seeding must match what replay counts"
        );
        assert_eq!(
            fast_metrics.shards[i].events_len,
            snapshot.shards[i].gossip_events.len() as u64
        );
    }
    service.shutdown();
    fast.shutdown();
    replay.shutdown();
    verified.shutdown();
}

#[test]
fn v1_documents_upgrade_to_v3_on_resnapshot() {
    // A handcrafted pre-gossip v1 document (single shard, budget 10, one
    // recorded answer) restores exactly as recorded and re-snapshots as a
    // v3 document that round-trips and restores again.
    let tasks = TaskSet::new(
        (0..4)
            .map(|i| synthetic_task(format!("t{i}"), Point::new(i as f64, 0.0), 3))
            .collect(),
    );
    let workers = WorkerPool::from_workers(vec![
        Worker::at("a", Point::new(0.0, 0.5)),
        Worker::at("b", Point::new(3.0, 0.5)),
    ])
    .unwrap();
    let v1 = "{\"version\":1,\"n_tasks\":4,\"n_workers\":2,\
              \"config\":{\"n_shards\":1,\"ingest_threads\":1,\
              \"queue_capacity\":8,\"drain_batch\":4,\"budget\":10,\"h\":2,\
              \"em\":{\"alpha\":0.5,\"tolerance\":0.005,\"max_iterations\":100,\
              \"init\":\"vote_share\",\"lambdas\":[0.4,1.0,2.5]},\
              \"full_em_every\":100,\"full_sweep_every\":8},\
              \"shards\":[{\"shard\":0,\"budget\":10,\"budget_used\":1,\
              \"answers\":[{\"w\":0,\"t\":1,\"bits\":\"101\"}]}]}";
    let parsed = ServiceSnapshot::from_json(v1).unwrap();
    assert_eq!(parsed.version, 1);
    let restored = LabellingService::restore(&tasks, &workers, &parsed).unwrap();
    assert_eq!(restored.answers_total(), 1);
    assert_eq!(restored.budget_used(), 1);

    // Re-snapshot: a v3 document (no checkpoint yet — one answer never
    // triggered a full sweep) that parses, restores, and stays stable.
    let upgraded = restored.snapshot();
    assert_eq!(upgraded.version, crowd_serve::SNAPSHOT_VERSION);
    let text = upgraded.to_json();
    assert!(text.contains("\"kind\":\"base\""));
    let reparsed = ServiceSnapshot::from_json(&text).unwrap();
    assert_eq!(reparsed, upgraded);
    let again = LabellingService::restore_verified(&tasks, &workers, &reparsed).unwrap();
    assert_eq!(again.decisions(), restored.decisions());
    assert_eq!(again.snapshot().to_json(), text);
    restored.shutdown();
    again.shutdown();
}

#[test]
fn v2_documents_upgrade_to_v3_and_match_the_native_path() {
    // Run a gossiping campaign, export it as a *v2* document (inline
    // payloads, no checkpoints), restore it (replay path — v2 has no
    // parameters), and prove the upgraded service re-snapshots to exactly
    // the v3 document the original service writes natively.
    let (tasks, workers) = world();
    let service = LabellingService::start(&tasks, &workers, gossip_config());
    let pairs = stream();
    ingest(&service, &pairs[..pairs.len() / 2]);
    service.force_full_em();

    let native_v3 = service.snapshot();
    let v2_text = native_v3.to_json_versioned(2).unwrap();
    let parsed_v2 = ServiceSnapshot::from_json(&v2_text).unwrap();
    assert_eq!(parsed_v2.version, 2);
    assert!(parsed_v2.shards.iter().all(|s| s.checkpoint.is_none()));
    assert_eq!(
        parsed_v2.shards[0].gossip_events, native_v3.shards[0].gossip_events,
        "v2 inline payloads must carry the same events"
    );

    let upgraded = LabellingService::restore(&tasks, &workers, &parsed_v2).unwrap();
    assert_services_bit_identical(&upgraded, &service, "v2-upgraded vs live");
    assert_eq!(
        upgraded.snapshot().to_json(),
        native_v3.to_json(),
        "re-snapshotting a v2-restored service must emit the native v3 document \
         (checkpoints are re-recorded deterministically during replay)"
    );
    service.shutdown();
    upgraded.shutdown();
}

#[test]
fn compact_equals_full_snapshot() {
    // base → delta → delta, compacted, must be byte-identical to a full
    // snapshot taken at the end — and restore identically.
    let (tasks, workers) = world();
    let service = LabellingService::start(&tasks, &workers, gossip_config());
    let pairs = stream();
    let third = pairs.len() / 3;

    ingest(&service, &pairs[..third]);
    let base = service.snapshot();

    ingest(&service, &pairs[third..2 * third]);
    let delta1 = service.snapshot_delta(&base.cursors()).unwrap();

    ingest(&service, &pairs[2 * third..]);
    service.force_full_em();
    let delta2 = service.snapshot_delta(&delta1.cursors()).unwrap();

    let full = service.snapshot();
    let compacted = base.compact(&[delta1.clone(), delta2.clone()]).unwrap();
    assert_eq!(
        compacted.to_json(),
        full.to_json(),
        "compact() must reproduce the one-shot snapshot byte for byte"
    );

    // The deltas round-trip through their wire format and still compact
    // to the same document.
    let delta1_back = ServiceSnapshotDelta::from_json(&delta1.to_json()).unwrap();
    let delta2_back = ServiceSnapshotDelta::from_json(&delta2.to_json()).unwrap();
    assert_eq!(
        base.compact(&[delta1_back, delta2_back]).unwrap().to_json(),
        full.to_json()
    );

    // Incremental documents are (much) smaller than re-shipping the base.
    assert!(
        delta2.to_json().len() < full.to_json().len(),
        "a delta must not re-ship the whole campaign"
    );

    let restored = LabellingService::restore_verified(&tasks, &workers, &compacted).unwrap();
    assert_services_bit_identical(&restored, &service, "compacted restore vs live");
    service.shutdown();
    restored.shutdown();
}

#[test]
fn snapshot_compact_restore_mid_gossip_resumes_in_lockstep() {
    // Concurrent producers race gossip; we take a base early, a delta
    // mid-flight (quiescing each time), compact, restore — then feed the
    // original and the restored service the same remaining stream from
    // one thread and they must stay in lockstep through further gossip
    // rounds, hardening and re-snapshots.
    let (tasks, workers) = world();
    let service = LabellingService::start(&tasks, &workers, gossip_config());
    let pairs = stream();
    let (phase1, rest) = pairs.split_at(pairs.len() / 3);
    let (phase2, phase3) = rest.split_at(rest.len() / 2);

    // Phase 1: concurrent producers.
    std::thread::scope(|s| {
        for chunk in phase1.chunks(40) {
            let handle = service.handle();
            s.spawn(move || {
                for &(w, t) in chunk {
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                }
            });
        }
    });
    service.quiesce();
    let base = service.snapshot();

    // Phase 2: more concurrent traffic, then an incremental snapshot.
    std::thread::scope(|s| {
        for chunk in phase2.chunks(40) {
            let handle = service.handle();
            s.spawn(move || {
                for &(w, t) in chunk {
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                }
            });
        }
    });
    let delta = service.snapshot_delta(&base.cursors()).unwrap();
    assert!(
        delta.shards.iter().any(|s| !s.gossip_events.is_empty()),
        "phase 2 should have gossiped — otherwise this test is vacuous"
    );

    let compacted = base.compact(std::slice::from_ref(&delta)).unwrap();
    let restored = LabellingService::restore(&tasks, &workers, &compacted).unwrap();
    assert_services_bit_identical(&restored, &service, "after compact+restore");

    // Phase 3 (resume): same serialised stream into both services.
    let original_handle = service.handle();
    let restored_handle = restored.handle();
    for &(w, t) in phase3 {
        original_handle.submit_wait(w, t, bits_for(w, t)).unwrap();
        restored_handle.submit_wait(w, t, bits_for(w, t)).unwrap();
    }
    service.quiesce();
    restored.quiesce();
    service.force_full_em();
    restored.force_full_em();
    assert_services_bit_identical(&restored, &service, "after lockstep resume");
    assert_eq!(
        restored.snapshot().to_json(),
        service.snapshot().to_json(),
        "resumed services must serialise identically"
    );
    service.shutdown();
    restored.shutdown();
}

#[test]
fn pruned_campaigns_snapshot_restore_and_stream_deltas() {
    // A campaign under PruneCheckpointed: every hardening sweep drops the
    // checkpoint-covered prefix from memory. Its snapshot persists the
    // pruned pairs + frozen baseline, restores on the parameter path
    // (replay is impossible and must be rejected), and incremental
    // snapshots keep flowing across the floor — with restore_chain's
    // streaming fold byte-identical to compact-then-restore.
    let (tasks, workers) = world();
    // Delayed full EMs also checkpoint (and therefore prune) mid-stream;
    // disable them so the pruned floor only moves at the explicit
    // hardening points below and the delta chain in between stays valid.
    let config = ServeConfig {
        retention: RetentionPolicy::PruneCheckpointed { spill_dir: None },
        policy: crowd_core::UpdatePolicy {
            full_em_every: None,
            ..crowd_core::UpdatePolicy::default()
        },
        ..gossip_config()
    };
    let service = LabellingService::start(&tasks, &workers, config);
    let pairs = stream();
    let third = pairs.len() / 3;

    ingest(&service, &pairs[..third]);
    service.force_full_em(); // harden + prune: the whole prefix leaves memory
    assert_eq!(service.answers_resident(), 0, "prune must empty the log");
    assert_eq!(service.answers_total(), third, "the stream total survives");
    let base = service.snapshot();
    assert!(
        base.shards.iter().any(|s| !s.pruned_pairs.is_empty()),
        "the base snapshot must record the pruned tier"
    );

    // The document round-trips and carries the frozen baselines.
    let parsed = ServiceSnapshot::from_json(&base.to_json()).unwrap();
    assert_eq!(parsed, base);

    // Replay restore is impossible without the payloads; the fast path
    // restores bit-identically (restore_verified proves it by
    // re-snapshotting) and keeps duplicate detection for pruned pairs.
    assert!(matches!(
        LabellingService::restore_replay(&tasks, &workers, &parsed),
        Err(SnapshotError::Mismatch(_))
    ));
    let restored = LabellingService::restore_verified(&tasks, &workers, &parsed).unwrap();
    assert_services_bit_identical(&restored, &service, "pruned restore vs live");
    assert_eq!(restored.answers_resident(), 0);
    assert_eq!(restored.answers_total(), third);
    let (w, t) = pairs[0];
    assert!(
        matches!(
            restored.handle().submit_wait(w, t, bits_for(w, t)),
            Err(crowd_serve::ServeError::Core(
                crowd_core::CoreError::DuplicateAnswer { .. }
            ))
        ),
        "a pruned pair must still be rejected as a duplicate"
    );

    // Deltas on top of the pruned floor: ship only the live suffix, and
    // the streaming restore equals compact-then-restore byte for byte.
    ingest(&service, &pairs[third..2 * third]);
    let delta1 = service.snapshot_delta(&base.cursors()).unwrap();
    ingest(&service, &pairs[2 * third..]);
    let delta2 = service.snapshot_delta(&delta1.cursors()).unwrap();

    let full = service.snapshot();
    let compacted = base.compact(&[delta1.clone(), delta2.clone()]).unwrap();
    assert_eq!(compacted.to_json(), full.to_json());
    let chained =
        LabellingService::restore_chain(&tasks, &workers, &base, [Ok(delta1), Ok(delta2)]).unwrap();
    let via_compact = LabellingService::restore(&tasks, &workers, &compacted).unwrap();
    assert_eq!(
        chained.snapshot().to_json(),
        via_compact.snapshot().to_json(),
        "streaming (base, chain) restore must be byte-identical to compact-then-restore"
    );
    assert_services_bit_identical(&chained, &service, "chained restore vs live");

    // A further prune truncates past every outstanding cursor: extending
    // the old chain is refused with a pointer to take a new base.
    service.force_full_em();
    assert_eq!(service.answers_resident(), 0);
    match service.snapshot_delta(&base.cursors()) {
        Err(SnapshotError::Mismatch(msg)) => {
            assert!(msg.contains("pruned"), "unhelpful error: {msg}");
        }
        other => panic!("a pre-floor cursor must be rejected, got {other:?}"),
    }

    service.shutdown();
    restored.shutdown();
    chained.shutdown();
    via_compact.shutdown();
}

#[test]
fn corrupt_checkpoints_and_cursors_are_rejected() {
    let (tasks, workers) = world();
    let service = LabellingService::start(&tasks, &workers, gossip_config());
    ingest(&service, &stream());
    service.force_full_em();
    let snapshot = service.snapshot();

    // A checkpoint pointing beyond the recorded stream.
    let mut beyond = snapshot.clone();
    beyond.shards[0].checkpoint.as_mut().unwrap().position = usize::MAX;
    assert!(matches!(
        LabellingService::restore(&tasks, &workers, &beyond),
        Err(SnapshotError::Mismatch(_))
    ));

    // A checkpoint whose event split disagrees with the event positions.
    let shard_with_events = snapshot
        .shards
        .iter()
        .position(|s| s.checkpoint.as_ref().is_some_and(|c| c.events_applied > 0))
        .expect("hardening recorded events before the checkpoint");
    let mut split = snapshot.clone();
    split.shards[shard_with_events]
        .checkpoint
        .as_mut()
        .unwrap()
        .events_applied = 0;
    assert!(matches!(
        LabellingService::restore(&tasks, &workers, &split),
        Err(SnapshotError::Mismatch(_))
    ));

    // Checkpoint parameters that do not match the shard's shapes.
    let mut shapes = snapshot.clone();
    let cp = shapes.shards[0].checkpoint.as_mut().unwrap();
    cp.params = crowd_core::ModelParams::from_parts(
        3,
        vec![0.5; 2],
        vec![0.5; 2],
        vec![1.0 / 3.0; 6],
        vec![1.0 / 3.0; 6],
    )
    .unwrap();
    assert!(matches!(
        LabellingService::restore(&tasks, &workers, &shapes),
        Err(SnapshotError::Mismatch(_))
    ));

    // A publish counter lagging behind a version already on the wire
    // (recorded folds / exchange) would let the resumed shard re-stamp a
    // seen (source, version) with a different payload — rejected.
    let republisher = snapshot
        .exchange
        .iter()
        .flatten()
        .map(|d| d.source as usize)
        .next()
        .expect("gossip published");
    let mut lagging = snapshot.clone();
    lagging.shards[republisher].publishes = 0;
    assert!(matches!(
        LabellingService::restore(&tasks, &workers, &lagging),
        Err(SnapshotError::Mismatch(_))
    ));

    // A recorded payload from a source no shard could have published.
    let mut ghost = snapshot.clone();
    ghost.exchange[0].as_mut().unwrap().source = 99;
    assert!(matches!(
        LabellingService::restore(&tasks, &workers, &ghost),
        Err(SnapshotError::Mismatch(_))
    ));

    // Delta cursors beyond the recorded stream.
    let mut cursors = snapshot.cursors();
    cursors[0].answers = usize::MAX;
    assert!(matches!(
        service.snapshot_delta(&cursors),
        Err(SnapshotError::Mismatch(_))
    ));
    assert!(matches!(
        service.snapshot_delta(&snapshot.cursors()[..1]),
        Err(SnapshotError::Mismatch(_))
    ));
    service.shutdown();
}
