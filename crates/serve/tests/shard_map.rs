//! Property tests over the versioned shard map and the elastic handoff:
//!
//! 1. **Version monotonicity** — every successful `reassign_cell` bumps
//!    the map version by exactly one; refusals leave it untouched.
//! 2. **Routing determinism** — under any split/merge sequence, every
//!    task is owned by exactly one shard, cell and task routing agree,
//!    and the persisted `cells()` vector rebuilds the identical map.
//! 3. **Bit-identity** — a campaign that splits a hot cell away and
//!    merges it back mid-stream ends bit-identical (per-shard parameters,
//!    decisions, answer order) to a never-split reference fed the same
//!    answer stream. The handoff rebuild is a pure replay, so elasticity
//!    must be invisible to the model.
//! 4. **Mid-handoff persistence** — a snapshot taken after a split (map
//!    version > 1, materialized seqs) restores into a service that
//!    resumes in lockstep with the original.
//!
//! Bit-identity runs with gossip off: gossip folds depend on racy
//! cross-shard timing and are exactly what the recorded event stream (not
//! this test) pins down.

use crowd_core::{synthetic_task, LabelBits, TaskId, TaskSet, Worker, WorkerId, WorkerPool};
use crowd_geo::Point;
use crowd_serve::{LabellingService, ServeConfig, ServeError, ShardMap};
use proptest::prelude::*;

fn world(n_tasks: usize, n_workers: usize) -> (TaskSet, WorkerPool) {
    let side = (n_tasks as f64).sqrt().ceil() as usize;
    let tasks = TaskSet::new(
        (0..n_tasks)
            .map(|i| {
                synthetic_task(
                    format!("t{i}"),
                    Point::new((i % side) as f64, (i / side) as f64 * 1.3),
                    3,
                )
            })
            .collect(),
    );
    let workers = WorkerPool::from_workers(
        (0..n_workers)
            .map(|i| {
                Worker::at(
                    format!("w{i}"),
                    Point::new((i % 3) as f64 * 1.7, (i / 3) as f64 * 1.1),
                )
            })
            .collect(),
    )
    .unwrap();
    (tasks, workers)
}

/// Deterministic answer bits per (worker, task).
fn bits_for(w: WorkerId, t: TaskId) -> LabelBits {
    let x = crowd_sim::rngx::pair_seed(u64::from(w.0), u64::from(t.0));
    LabelBits::from_slice(&[x & 1 == 1, x & 2 == 2, x & 4 == 4])
}

/// The deterministic global answer stream: every (worker, task) pair in a
/// fixed interleaving that touches all shards.
fn answer_stream(n_workers: usize, n_tasks: usize) -> Vec<(WorkerId, TaskId)> {
    let mut stream = Vec::with_capacity(n_workers * n_tasks);
    for round in 0..n_tasks {
        for w in 0..n_workers {
            let t = (round + w * 7) % n_tasks;
            let pair = (WorkerId::from_index(w), TaskId::from_index(t));
            if !stream.contains(&pair) {
                stream.push(pair);
            }
        }
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Version bumps by one per accepted move and never otherwise; task
    /// and cell routing stay consistent; slices always conserve the
    /// budget.
    #[test]
    fn map_versions_are_monotone_and_routing_stays_consistent(
        n_tasks in 4usize..48,
        n_shards in 1usize..6,
        budget in 1usize..500,
        moves in prop::collection::vec((0usize..64, 0usize..8), 0..12),
    ) {
        let (tasks, _) = world(n_tasks, 3);
        let mut map = ShardMap::build(&tasks, n_shards);
        prop_assert_eq!(map.version(), 1);
        let mut expected_version = 1u64;
        for (cell_raw, to_raw) in moves {
            let cell = cell_raw % map.n_cells();
            let to = to_raw % (map.n_shards() + 1); // sometimes out of range
            match map.reassign_cell(cell, to) {
                Ok(next) => {
                    expected_version += 1;
                    prop_assert_eq!(next.version(), expected_version);
                    prop_assert_eq!(next.shard_of_cell(cell), to);
                    map = next;
                }
                Err(_) => {
                    // Refused moves must not perturb the published map.
                    prop_assert_eq!(map.version(), expected_version);
                }
            }
            // Every task is owned by exactly one shard, and that shard is
            // the owner of the task's cell.
            let mut seen = vec![false; map.n_tasks()];
            for s in 0..map.n_shards() {
                for t in map.tasks_of(s) {
                    prop_assert!(!seen[t.index()], "task {t:?} owned twice");
                    seen[t.index()] = true;
                    prop_assert_eq!(map.shard_of_task(t), s);
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "task with no owner");
            // Budget slices conserve the campaign budget exactly.
            let slices = map.budget_slices(budget);
            prop_assert_eq!(slices.iter().sum::<usize>(), budget);
        }
    }

    /// The persisted `cells()` vector plus the task set rebuild a map
    /// with identical routing — what snapshot v4 relies on.
    #[test]
    fn cells_vector_rebuilds_identical_routing(
        n_tasks in 4usize..48,
        n_shards in 1usize..6,
        moves in prop::collection::vec((0usize..64, 0usize..6), 0..8),
    ) {
        let (tasks, _) = world(n_tasks, 3);
        let mut map = ShardMap::build(&tasks, n_shards);
        for (cell_raw, to_raw) in moves {
            let cell = cell_raw % map.n_cells();
            let to = to_raw % map.n_shards();
            if let Ok(next) = map.reassign_cell(cell, to) {
                map = next;
            }
        }
        let rebuilt = ShardMap::with_cells(&tasks, map.n_shards(), map.cells(), map.version())
            .expect("a published map always round-trips");
        prop_assert_eq!(rebuilt.version(), map.version());
        prop_assert_eq!(rebuilt.n_shards(), map.n_shards());
        prop_assert_eq!(rebuilt.cells(), map.cells());
        for t in 0..n_tasks {
            let t = TaskId::from_index(t);
            prop_assert_eq!(rebuilt.shard_of_task(t), map.shard_of_task(t));
        }
    }
}

fn quiet_config(n_shards: usize, budget: usize) -> ServeConfig {
    ServeConfig {
        n_shards,
        budget,
        gossip_every: None, // bit-identity tests pin the gossip-free stream
        ..ServeConfig::default()
    }
}

/// Per-shard model state must match between two services shard by shard.
fn assert_bit_identical(a: &LabellingService, b: &LabellingService) {
    assert_eq!(a.n_shards(), b.n_shards());
    for s in 0..a.n_shards() {
        let sa = a.shard(s);
        let sb = b.shard(s);
        let answers_a: Vec<_> = sa.answers_global().collect();
        let answers_b: Vec<_> = sb.answers_global().collect();
        assert_eq!(answers_a, answers_b, "shard {s}: answer streams differ");
        assert_eq!(
            sa.framework().params(),
            sb.framework().params(),
            "shard {s}: parameters differ"
        );
    }
    assert_eq!(a.decisions(), b.decisions(), "decisions differ");
}

/// PINNED: a split + merge-back round trip mid-stream is bit-identical
/// to a never-split reference on the same answer stream. This is the
/// handoff acceptance gate from the elastic-serving issue — if the
/// two-phase handoff loses an answer, reorders a shard's stream, or
/// perturbs a model parameter by one bit, this test fails.
#[test]
fn split_then_merge_back_is_bit_identical_to_never_split() {
    const N_TASKS: usize = 24;
    const N_WORKERS: usize = 6;
    let (tasks, workers) = world(N_TASKS, N_WORKERS);
    let stream = answer_stream(N_WORKERS, N_TASKS);
    let budget = stream.len();

    let elastic = LabellingService::start(&tasks, &workers, quiet_config(3, budget));
    let reference = LabellingService::start(&tasks, &workers, quiet_config(3, budget));
    let eh = elastic.handle();
    let rh = reference.handle();

    let third = stream.len() / 3;
    for &(w, t) in &stream[..third] {
        eh.submit_wait(w, t, bits_for(w, t)).unwrap();
        rh.submit_wait(w, t, bits_for(w, t)).unwrap();
    }

    // Move some cell off its owner, feed another third, move it back.
    let map = elastic.map();
    let (cell, from, to) = (0..map.n_cells())
        .filter_map(|c| {
            let from = map.shard_of_cell(c);
            let to = (from + 1) % map.n_shards();
            // The source must keep at least one task, or the move refuses.
            (map.tasks_of(from).len() > map.cell_tasks(c).len() && !map.cell_tasks(c).is_empty())
                .then_some((c, from, to))
        })
        .next()
        .expect("a 3-shard map over 24 tasks has a movable cell");
    let report = elastic.reassign_cell(cell, to).unwrap();
    assert_eq!(report.map_version, 2);
    assert_eq!((report.from, report.to), (from, to));
    assert_eq!(elastic.map().shard_of_cell(cell), to);

    for &(w, t) in &stream[third..2 * third] {
        eh.submit_wait(w, t, bits_for(w, t)).unwrap();
        rh.submit_wait(w, t, bits_for(w, t)).unwrap();
    }

    let back = elastic.reassign_cell(cell, from).unwrap();
    assert_eq!(back.map_version, 3);
    assert_eq!(elastic.map().shard_of_cell(cell), from);

    for &(w, t) in &stream[2 * third..] {
        eh.submit_wait(w, t, bits_for(w, t)).unwrap();
        rh.submit_wait(w, t, bits_for(w, t)).unwrap();
    }
    elastic.quiesce();
    reference.quiesce();

    assert_bit_identical(&elastic, &reference);
    assert_eq!(elastic.answers_total(), stream.len());
    assert_eq!(
        elastic.budget_used(),
        reference.budget_used(),
        "budget accounting must survive the round trip"
    );

    elastic.shutdown();
    reference.shutdown();
}

/// A snapshot taken mid-handoff (map version > 1, materialized seqs)
/// restores into a service that resumes in lockstep with the original:
/// same routing, same model state, same continued stream.
#[test]
fn mid_handoff_snapshot_restores_in_lockstep() {
    const N_TASKS: usize = 20;
    const N_WORKERS: usize = 5;
    let (tasks, workers) = world(N_TASKS, N_WORKERS);
    let stream = answer_stream(N_WORKERS, N_TASKS);
    let budget = stream.len();

    let original = LabellingService::start(&tasks, &workers, quiet_config(2, budget));
    let oh = original.handle();
    let half = stream.len() / 2;
    for &(w, t) in &stream[..half] {
        oh.submit_wait(w, t, bits_for(w, t)).unwrap();
    }
    original.split_hot().unwrap();
    assert!(original.map().version() > 1, "split must bump the map");

    let snapshot = original.snapshot();
    assert!(
        snapshot.to_json().contains("\"map\""),
        "a moved map must be recorded in the v4 document"
    );
    let restored = LabellingService::restore(&tasks, &workers, &snapshot).unwrap();

    // The restored service routes under the adopted (post-split) map.
    assert_eq!(restored.map().version(), original.map().version());
    assert_eq!(restored.map().cells(), original.map().cells());
    assert_bit_identical(&original, &restored);

    // Both resume on the same continuation and stay in lockstep.
    let rh = restored.handle();
    for &(w, t) in &stream[half..] {
        oh.submit_wait(w, t, bits_for(w, t)).unwrap();
        rh.submit_wait(w, t, bits_for(w, t)).unwrap();
    }
    original.quiesce();
    restored.quiesce();
    assert_bit_identical(&original, &restored);

    // And the resumed states re-snapshot identically.
    assert_eq!(original.snapshot_json(), restored.snapshot_json());

    original.shutdown();
    restored.shutdown();
}

/// A mid-campaign registration survives snapshot → restore: the recorded
/// `register` event re-grows the pool at the right stream position, and
/// the registered worker keeps answering in lockstep.
#[test]
fn registered_worker_survives_snapshot_restore() {
    const N_TASKS: usize = 12;
    const N_WORKERS: usize = 3;
    let (tasks, workers) = world(N_TASKS, N_WORKERS);
    let stream = answer_stream(N_WORKERS, N_TASKS);

    let original = LabellingService::start(&tasks, &workers, quiet_config(2, 200));
    let oh = original.handle();
    for &(w, t) in &stream[..stream.len() / 2] {
        oh.submit_wait(w, t, bits_for(w, t)).unwrap();
    }
    let newcomer = original
        .register_worker(Worker::at("late-joiner", Point::new(0.4, 0.6)))
        .unwrap();
    assert_eq!(newcomer.index(), N_WORKERS);
    assert_eq!(original.n_workers(), N_WORKERS + 1);
    // The newcomer answers a few tasks before the snapshot.
    for t in [0, 3, 5] {
        oh.submit_wait(
            newcomer,
            TaskId::from_index(t),
            bits_for(newcomer, TaskId::from_index(t)),
        )
        .unwrap();
    }
    original.quiesce();

    let snapshot = original.snapshot();
    let restored = LabellingService::restore(&tasks, &workers, &snapshot).unwrap();
    assert_eq!(restored.n_workers(), N_WORKERS + 1);
    assert_eq!(
        restored.worker_name(newcomer).as_deref(),
        Some("late-joiner")
    );
    assert_bit_identical(&original, &restored);

    // Both services keep serving the registered worker in lockstep.
    let rh = restored.handle();
    for t in [7, 9] {
        let t = TaskId::from_index(t);
        oh.submit_wait(newcomer, t, bits_for(newcomer, t)).unwrap();
        rh.submit_wait(newcomer, t, bits_for(newcomer, t)).unwrap();
    }
    original.quiesce();
    restored.quiesce();
    assert_bit_identical(&original, &restored);

    original.shutdown();
    restored.shutdown();
}

/// Budget rebalance conserves the campaign budget, never strands used
/// budget above a slice, and the rebalanced service snapshot-restores
/// (slices are adopted, not assumed equal to the startup split).
#[test]
fn rebalance_conserves_budget_and_round_trips_through_snapshot() {
    const N_TASKS: usize = 16;
    const N_WORKERS: usize = 4;
    let (tasks, workers) = world(N_TASKS, N_WORKERS);
    let stream = answer_stream(N_WORKERS, N_TASKS);
    let budget = 60;

    let service = LabellingService::start(&tasks, &workers, quiet_config(2, budget));
    let handle = service.handle();
    // Skew the spend towards shard of task 0's region.
    for &(w, t) in stream.iter().take(20) {
        handle.submit_wait(w, t, bits_for(w, t)).unwrap();
    }
    let slices = service.rebalance_budget();
    assert_eq!(
        slices.iter().sum::<usize>(),
        budget,
        "slices must conserve the budget"
    );
    for (s, &slice) in slices.iter().enumerate() {
        let used = service.shard(s).framework().budget_used();
        assert!(
            used <= slice,
            "shard {s}: rebalance stranded {used} used above slice {slice}"
        );
    }

    // The moved slices survive a snapshot round trip byte-for-byte.
    let snapshot = service.snapshot();
    let restored = LabellingService::restore(&tasks, &workers, &snapshot).unwrap();
    for (s, &slice) in slices.iter().enumerate() {
        assert_eq!(
            restored.shard(s).framework().config().budget,
            slice,
            "shard {s}: restored slice differs"
        );
    }
    assert_eq!(service.snapshot_json(), restored.snapshot_json());

    service.shutdown();
    restored.shutdown();
}

/// Elastic refusals are clean: a single-shard service refuses splits, an
/// out-of-range cell refuses reassignment, and nothing changes.
#[test]
fn refused_handoffs_leave_the_service_untouched() {
    let (tasks, workers) = world(6, 2);
    let service = LabellingService::start(&tasks, &workers, quiet_config(1, 20));
    assert!(matches!(service.split_hot(), Err(ServeError::Rejected(_))));
    assert!(matches!(service.merge_cold(), Err(ServeError::Rejected(_))));
    assert!(matches!(
        service.reassign_cell(usize::MAX, 0),
        Err(ServeError::Rejected(_))
    ));
    assert_eq!(service.map().version(), 1);
    assert_eq!(service.metrics().map_version, 1);
    service.shutdown();
}
