//! Chaos stress: a split/merge storm plus mid-flight worker registration
//! racing ingestion across two concurrent campaigns multiplexed over one
//! shard pool. The service invariants must hold through all of it:
//!
//! 1. no accepted answer is lost,
//! 2. neither campaign ever charges beyond its own budget (slices always
//!    sum to the campaign budget, even mid-rebalance),
//! 3. no (worker, task) pair is ever re-issued (surfaced shard-side as a
//!    rejected duplicate — the count must be zero),
//! 4. every shard's final state equals a deterministic single-threaded
//!    replay of its recorded event stream — answers in arrival order with
//!    registrations applied at their recorded positions — and the whole
//!    service survives a snapshot → restore round trip.
//!
//! Gossip stays off here: the storm already republishes the map under
//! racing traffic, and the gossip × ingestion race has its own suite in
//! `stress.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};

use crowd_core::{
    synthetic_task, Framework, LabelBits, TaskId, TaskSet, Worker, WorkerId, WorkerPool,
};
use crowd_geo::Point;
use crowd_serve::{CampaignPool, GossipEventKind, LabellingService, ServeConfig};

const N_TASKS: usize = 40;
const N_WORKERS: usize = 12;

fn world() -> (TaskSet, WorkerPool) {
    let tasks = TaskSet::new(
        (0..N_TASKS)
            .map(|i| {
                synthetic_task(
                    format!("t{i}"),
                    Point::new((i % 8) as f64, (i / 8) as f64 * 1.7),
                    4,
                )
            })
            .collect(),
    );
    let workers = WorkerPool::from_workers(
        (0..N_WORKERS)
            .map(|i| {
                Worker::at(
                    format!("w{i}"),
                    Point::new((i % 4) as f64 * 2.0, (i / 4) as f64 * 1.5),
                )
            })
            .collect(),
    )
    .unwrap();
    (tasks, workers)
}

fn bits_for(w: WorkerId, t: TaskId) -> LabelBits {
    let x = crowd_sim::rngx::pair_seed(u64::from(w.0), u64::from(t.0));
    LabelBits::from_slice(&[x & 1 == 1, x & 2 == 2, x & 4 == 4, x & 8 == 8])
}

/// Request → answer loop over a fixed worker-id chunk, backing off on
/// empty assignments (a pending pair may be reserved behind the queue)
/// and stopping on budget exhaustion.
fn request_answer_loop(handle: &crowd_serve::ServiceHandle, ids: &[WorkerId]) {
    let mut empties = 0u32;
    loop {
        match handle.request_tasks(ids) {
            Ok(a) if a.is_empty() => {
                empties += 1;
                if empties > 50 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Ok(a) => {
                empties = 0;
                for (w, t) in a.pairs() {
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                }
            }
            Err(_) => break,
        }
    }
}

/// Replays one shard's recorded event stream — answers in arrival order
/// with `register` events applied at their recorded positions — starting
/// from the campaign's **base** worker pool, and asserts the live state
/// is bit-identical. This is the elastic extension of the replay oracle
/// in `stress.rs`: handoffs rebuild shards by exactly this replay, so a
/// storm of them must leave nothing the replay cannot reproduce.
fn assert_shard_equals_replay(
    service: &LabellingService,
    shard_id: usize,
    base_workers: &WorkerPool,
) {
    let shard = service.shard(shard_id);
    let live = shard.framework();
    let events = shard.gossip_events();
    let mut replay = Framework::with_distances(
        live.tasks().clone(),
        base_workers.clone(),
        live.config().clone(),
        *live.distances(),
    );
    let mut next_event = 0usize;
    let apply_events_at = |replay: &mut Framework, position: usize, next_event: &mut usize| {
        while *next_event < events.len() && events[*next_event].position == position {
            match &events[*next_event].kind {
                GossipEventKind::Register { name, x, y } => {
                    replay
                        .register_worker(Worker::at(name.clone(), Point::new(*x, *y)))
                        .expect("replaying a recorded registration");
                }
                other => {
                    panic!("shard {shard_id}: unexpected event {other:?} in a gossip-free run")
                }
            }
            *next_event += 1;
        }
    };
    for (position, answer) in live.log().answers().iter().enumerate() {
        apply_events_at(&mut replay, position, &mut next_event);
        replay
            .submit(answer.worker, answer.task, answer.bits)
            .expect("replaying a valid log");
    }
    apply_events_at(&mut replay, live.log().len(), &mut next_event);
    assert_eq!(next_event, events.len(), "shard {shard_id}: stray events");
    assert_eq!(
        replay.params(),
        live.params(),
        "shard {shard_id}: storm state must equal its deterministic replay"
    );
    assert_eq!(
        replay.inference().decisions(),
        live.inference().decisions(),
        "shard {shard_id}: decisions must match"
    );
}

/// Full post-storm audit of one campaign: budget conservation, zero
/// re-issues, answer accounting, replay equality, restore round trip.
fn audit_campaign(
    service: &LabellingService,
    base_workers: &WorkerPool,
    tasks: &TaskSet,
    budget: usize,
    direct_submits: usize,
) {
    let mut slice_sum = 0;
    let mut used_sum = 0;
    for shard_id in 0..service.n_shards() {
        let shard = service.shard(shard_id);
        let slice = shard.framework().config().budget;
        let used = shard.framework().budget_used();
        assert!(
            used <= slice,
            "campaign {}: shard {shard_id} charged {used} of a {slice} slice",
            service.campaign_id()
        );
        slice_sum += slice;
        used_sum += used;
    }
    assert_eq!(slice_sum, budget, "slices must sum to the campaign budget");
    assert!(used_sum <= budget, "campaign overcharged");
    assert_eq!(used_sum, service.budget_used());
    // Every answer is either an answered assignment (budget-charged) or
    // one of the counted direct submits from a registered worker.
    assert_eq!(service.answers_total(), used_sum + direct_submits);
    let metrics = service.metrics();
    assert_eq!(
        metrics.shards.iter().map(|s| s.rejected).sum::<u64>(),
        0,
        "a reserved pair was re-issued and double-answered"
    );
    assert_eq!(metrics.enqueued, metrics.processed, "lost queued commands");
    assert_eq!(metrics.map_version, service.map().version());

    for shard_id in 0..service.n_shards() {
        assert_shard_equals_replay(service, shard_id, base_workers);
    }

    // The stormed state survives persistence: the restored service makes
    // the same decisions and serialises identically.
    let snapshot = service.snapshot();
    let restored = LabellingService::restore(tasks, base_workers, &snapshot).unwrap();
    assert_eq!(restored.decisions(), service.decisions());
    assert_eq!(restored.snapshot_json(), service.snapshot_json());
    restored.shutdown();
}

#[test]
fn split_merge_storm_with_registration_across_two_campaigns() {
    let (tasks, workers) = world();
    let pool = CampaignPool::new(4, 64, 32);
    let budget_a = 160;
    let budget_b = 120;
    let campaign_a = pool.attach(
        &tasks,
        &workers,
        ServeConfig {
            n_shards: 4,
            queue_capacity: 64,
            budget: budget_a,
            h: 2,
            ..ServeConfig::default()
        },
    );
    let campaign_b = pool.attach(
        &tasks,
        &workers,
        ServeConfig {
            n_shards: 4,
            queue_capacity: 64,
            budget: budget_b,
            h: 2,
            ..ServeConfig::default()
        },
    );
    assert_eq!(campaign_a.campaign_id(), 0);
    assert_eq!(campaign_b.campaign_id(), 1);
    assert_eq!(pool.campaign_ids(), vec![0, 1]);

    // Handoff successes and direct submits, tallied by the racing threads.
    let handoffs_a = AtomicUsize::new(0);
    let handoffs_b = AtomicUsize::new(0);
    let direct_a = AtomicUsize::new(0);
    let direct_b = AtomicUsize::new(0);

    std::thread::scope(|s| {
        // Requesters: campaign A owns worker ids 0..6, campaign B 6..12,
        // two threads each so assignments race within a campaign too.
        for chunk in 0..2 {
            let handle = campaign_a.handle();
            s.spawn(move || {
                let ids: Vec<WorkerId> = (chunk * 3..chunk * 3 + 3)
                    .map(WorkerId::from_index)
                    .collect();
                request_answer_loop(&handle, &ids);
            });
            let handle = campaign_b.handle();
            s.spawn(move || {
                let ids: Vec<WorkerId> = (6 + chunk * 3..6 + chunk * 3 + 3)
                    .map(WorkerId::from_index)
                    .collect();
                request_answer_loop(&handle, &ids);
            });
        }

        // The storm: alternating hot-splits and cold-merges on campaign A
        // (with periodic demand-driven rebalances), a lighter storm on B.
        // Refusals (nothing hot, nothing cold, would empty a shard) are
        // part of normal operation and ignored.
        s.spawn(|| {
            for i in 0..24 {
                let outcome = if i % 2 == 0 {
                    campaign_a.split_hot()
                } else {
                    campaign_a.merge_cold()
                };
                if outcome.is_ok() {
                    handoffs_a.fetch_add(1, Ordering::Relaxed);
                }
                if i % 6 == 5 {
                    let slices = campaign_a.rebalance_budget();
                    assert_eq!(slices.iter().sum::<usize>(), budget_a);
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        s.spawn(|| {
            for i in 0..8 {
                let outcome = if i % 2 == 0 {
                    campaign_b.split_hot()
                } else {
                    campaign_b.merge_cold()
                };
                if outcome.is_ok() {
                    handoffs_b.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });

        // Mid-flight registrations: each campaign grows its pool while the
        // storm and the requesters are both running; every newcomer then
        // submits a few direct answers (distinct pairs by construction).
        s.spawn(|| {
            let handle = campaign_a.handle();
            for n in 0..3 {
                std::thread::sleep(std::time::Duration::from_millis(3));
                let w = campaign_a
                    .register_worker(Worker::at(
                        format!("late-a{n}"),
                        Point::new(1.0 + n as f64, 2.0),
                    ))
                    .unwrap();
                for t in [n, n + 8, n + 16] {
                    let t = TaskId::from_index(t);
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                    direct_a.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        s.spawn(|| {
            let handle = campaign_b.handle();
            for n in 0..2 {
                std::thread::sleep(std::time::Duration::from_millis(4));
                let w = campaign_b
                    .register_worker(Worker::at(
                        format!("late-b{n}"),
                        Point::new(3.0, 1.0 + n as f64),
                    ))
                    .unwrap();
                for t in [n + 4, n + 24] {
                    let t = TaskId::from_index(t);
                    handle.submit(w, t, bits_for(w, t)).unwrap();
                    direct_b.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    });
    campaign_a.quiesce();
    campaign_b.quiesce();

    // Registrations landed on both campaigns, independently.
    assert_eq!(campaign_a.n_workers(), N_WORKERS + 3);
    assert_eq!(campaign_b.n_workers(), N_WORKERS + 2);
    assert_eq!(
        campaign_a
            .worker_name(WorkerId::from_index(N_WORKERS))
            .as_deref(),
        Some("late-a0")
    );
    assert_eq!(
        campaign_b
            .worker_name(WorkerId::from_index(N_WORKERS))
            .as_deref(),
        Some("late-b0")
    );

    // Each successful handoff published exactly one map version; the
    // storms were sequential per campaign, so the versions pin the counts.
    assert_eq!(
        campaign_a.map().version(),
        1 + handoffs_a.load(Ordering::Relaxed) as u64
    );
    assert_eq!(
        campaign_b.map().version(),
        1 + handoffs_b.load(Ordering::Relaxed) as u64
    );
    assert!(
        handoffs_a.load(Ordering::Relaxed) > 0,
        "the storm never landed a handoff — the test exercised nothing"
    );

    audit_campaign(
        &campaign_a,
        &workers,
        &tasks,
        budget_a,
        direct_a.load(Ordering::Relaxed),
    );
    audit_campaign(
        &campaign_b,
        &workers,
        &tasks,
        budget_b,
        direct_b.load(Ordering::Relaxed),
    );

    // Shutting one campaign down leaves the other (and the pool) serving.
    campaign_b.shutdown();
    assert!(pool.is_open());
    assert_eq!(pool.campaign_ids(), vec![0]);
    let handle = campaign_a.handle();
    let w = WorkerId::from_index(0);
    let t = TaskId::from_index(39);
    // A fresh pair still flows end to end after the sibling closed.
    if !campaign_a
        .shard(campaign_a.map().shard_of_task(t))
        .framework()
        .log()
        .answers()
        .iter()
        .any(|a| a.worker == w && a.task == t)
    {
        handle.submit(w, t, bits_for(w, t)).unwrap();
        campaign_a.quiesce();
    }
    campaign_a.shutdown();
    assert!(!pool.is_open(), "last campaign closed the pool");
}
