//! Retention-pruning integration suite:
//!
//! 1. **Post-checkpoint inference is bit-identical** to an unpruned
//!    reference service fed the same stream — pruning changes *residency*,
//!    never results, as long as both campaigns checkpoint at the same
//!    stream positions.
//! 2. **Memory stays flat over an unbounded stream**: a campaign that
//!    prunes after every chunk holds O(chunk) answers resident no matter
//!    how long it runs, and its RSS growth is bounded by the pruned-pair
//!    floor, not the stream length. The CI run is a smoke-sized stream;
//!    set `PRUNE_STRESS_FULL=1` for the ≥1M-answer tier.

use crowd_core::{
    synthetic_task, LabelBits, TaskId, TaskSet, UpdatePolicy, Worker, WorkerId, WorkerPool,
};
use crowd_geo::Point;
use crowd_serve::{spill_path, LabellingService, RetentionPolicy, ServeConfig, SpillReader};

fn world(n_tasks: usize, n_workers: usize) -> (TaskSet, WorkerPool) {
    let side = (n_tasks as f64).sqrt().ceil() as usize;
    let tasks = TaskSet::new(
        (0..n_tasks)
            .map(|i| {
                synthetic_task(
                    format!("t{i}"),
                    Point::new((i % side) as f64, (i / side) as f64),
                    3,
                )
            })
            .collect(),
    );
    let workers = WorkerPool::from_workers(
        (0..n_workers)
            .map(|i| {
                Worker::at(
                    format!("w{i}"),
                    Point::new((i % side) as f64 + 0.3, (i / side) as f64 + 0.6),
                )
            })
            .collect(),
    )
    .unwrap();
    (tasks, workers)
}

fn bits_for(w: WorkerId, t: TaskId) -> LabelBits {
    let x = crowd_sim::rngx::pair_seed(u64::from(w.0), u64::from(t.0));
    LabelBits::from_slice(&[x & 1 == 1, x & 2 == 2, x & 4 == 4])
}

/// All (worker, task) pairs in a deterministic shuffled order — a long
/// stream of *unique* answers (duplicates would be rejected).
fn stream(n_tasks: usize, n_workers: usize) -> Vec<(WorkerId, TaskId)> {
    let mut pairs = Vec::with_capacity(n_tasks * n_workers);
    for w in 0..n_workers {
        for t in 0..n_tasks {
            pairs.push((WorkerId::from_index(w), TaskId::from_index(t)));
        }
    }
    pairs.sort_by_key(|&(w, t)| crowd_sim::rngx::pair_seed(u64::from(w.0), u64::from(t.0)));
    pairs
}

/// Pure-incremental config: no delayed full EMs, so the only checkpoints
/// (and therefore the only prunes) are the explicit hardening calls the
/// tests make — keeping both services' checkpoint schedules aligned.
fn incremental_config(retention: RetentionPolicy) -> ServeConfig {
    ServeConfig {
        n_shards: 3,
        budget: 0,
        queue_capacity: 256,
        policy: UpdatePolicy {
            full_em_every: None,
            ..UpdatePolicy::default()
        },
        gossip_every: Some(25),
        retention,
        ..ServeConfig::default()
    }
}

fn ingest(service: &LabellingService, pairs: &[(WorkerId, TaskId)]) {
    let handle = service.handle();
    for &(w, t) in pairs {
        handle.submit(w, t, bits_for(w, t)).unwrap();
    }
    service.quiesce();
}

/// One answer in flight at a time. Gossip folds read whatever the *other*
/// shards have published so far, so free-running ingest is timing-dependent
/// (two identical services drift apart); lockstep makes the exchange
/// contents — and therefore the model — a pure function of the stream.
fn ingest_lockstep(service: &LabellingService, pairs: &[(WorkerId, TaskId)]) {
    let handle = service.handle();
    for &(w, t) in pairs {
        handle.submit(w, t, bits_for(w, t)).unwrap();
        service.quiesce();
    }
}

#[test]
fn pruned_inference_is_bit_identical_to_the_unpruned_reference() {
    let (tasks, workers) = world(40, 12);
    let pairs = stream(40, 12);
    let half = pairs.len() / 2;
    let keep = LabellingService::start(
        &tasks,
        &workers,
        incremental_config(RetentionPolicy::KeepAll),
    );
    let prune = LabellingService::start(
        &tasks,
        &workers,
        incremental_config(RetentionPolicy::PruneCheckpointed { spill_dir: None }),
    );

    // Same prefix, then a hardening sweep at the same stream position in
    // both campaigns. The sweep itself runs over the full log in both;
    // only afterwards does the pruning service drop the covered prefix.
    ingest_lockstep(&keep, &pairs[..half]);
    ingest_lockstep(&prune, &pairs[..half]);
    keep.force_full_em();
    prune.force_full_em();
    assert_eq!(prune.answers_resident(), 0, "the prefix must leave memory");
    assert_eq!(keep.answers_resident(), half);
    assert_eq!(prune.answers_total(), keep.answers_total());

    // The suffix feeds pure incremental updates (and gossip, whose
    // cadence is stream-based so pruning never shifts it): the frozen
    // baseline stands in for the dropped payloads exactly.
    ingest_lockstep(&keep, &pairs[half..]);
    ingest_lockstep(&prune, &pairs[half..]);
    for s in 0..keep.n_shards() {
        assert_eq!(
            keep.shard(s).framework().params(),
            prune.shard(s).framework().params(),
            "shard {s}: post-checkpoint inference must be bit-identical"
        );
    }
    assert_eq!(keep.decisions(), prune.decisions());
    keep.shutdown();
    prune.shutdown();
}

/// `VmRSS` of this process in bytes, from `/proc/self/status`.
fn rss_bytes() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: usize = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[test]
fn pruned_campaign_memory_stays_flat_over_a_long_stream() {
    let full_tier = std::env::var("PRUNE_STRESS_FULL").is_ok_and(|v| v == "1");
    // The full tier streams > 1M unique answers; the smoke tier keeps CI
    // fast while exercising the same chunk → harden → prune cycle.
    let (n_tasks, n_workers) = if full_tier { (2048, 520) } else { (256, 100) };
    let (tasks, workers) = world(n_tasks, n_workers);
    let pairs = stream(n_tasks, n_workers);
    assert!(!full_tier || pairs.len() >= 1_000_000);
    let service = LabellingService::start(
        &tasks,
        &workers,
        ServeConfig {
            n_shards: 4,
            budget: 0,
            queue_capacity: 1024,
            policy: UpdatePolicy {
                full_em_every: None,
                ..UpdatePolicy::default()
            },
            retention: RetentionPolicy::PruneCheckpointed { spill_dir: None },
            ..ServeConfig::default()
        },
    );

    let chunk = 8192;
    let mut baseline = None;
    for batch in pairs.chunks(chunk) {
        ingest(&service, batch);
        let pruned = service.prune().expect("retention is enabled");
        assert_eq!(pruned, batch.len(), "every chunk prunes completely");
        assert_eq!(service.answers_resident(), 0);
        // Measure after the first cycle so one-time allocations (shard
        // state, queues, EM scratch) are inside the baseline.
        if baseline.is_none() {
            baseline = rss_bytes();
        }
    }
    assert_eq!(service.answers_total(), pairs.len());
    assert_eq!(service.answers_resident(), 0);
    assert_eq!(service.decisions().len(), n_tasks);

    if let (Some(first), Some(last)) = (baseline, rss_bytes()) {
        let growth = last.saturating_sub(first);
        // The resident floor per pruned answer is one packed u64 pair
        // (8 bytes); everything else is O(tasks + workers). Allow a wide
        // allocator/fragmentation margin — the point is that growth does
        // not track the answer *payloads* the stream carried.
        let cap = 64 * 1024 * 1024 + pairs.len() * 64;
        assert!(
            growth < cap,
            "RSS grew {growth} bytes over {} answers (cap {cap}) — pruning is not \
             bounding memory",
            pairs.len()
        );
    }
    service.shutdown();
}

#[test]
fn prune_every_timer_prunes_without_an_admin_call() {
    // `prune_every` arms the campaign's maintenance thread: resident
    // answers must drop on their own, with no `prune()` admin call and no
    // checkpoint-triggering policy.
    let (tasks, workers) = world(24, 8);
    let pairs = stream(24, 8);
    let service = LabellingService::start(
        &tasks,
        &workers,
        ServeConfig {
            prune_every: Some(50),
            gossip_every: None,
            ..incremental_config(RetentionPolicy::PruneCheckpointed { spill_dir: None })
        },
    );
    ingest(&service, &pairs);
    assert_eq!(service.answers_total(), pairs.len());

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while service.answers_resident() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert_eq!(
        service.answers_resident(),
        0,
        "the self-scheduled prune never fired"
    );
    // Pruning residency never loses accounting or inference.
    assert_eq!(service.answers_total(), pairs.len());
    assert_eq!(service.decisions().len(), 24);
    service.shutdown();
}

#[test]
fn spill_tier_reads_back_into_the_audit_floor() {
    // The cold archive round-trips: everything the shards pruned must be
    // recoverable from the spill files, pair-for-pair against each shard's
    // identity floor and bit-for-bit against the original payloads — the
    // offline audit path for a campaign whose hot tier dropped history.
    let spill_dir = std::env::temp_dir().join(format!("crowd-spill-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let (tasks, workers) = world(30, 9);
    let pairs = stream(30, 9);
    let half = pairs.len() / 2;
    let service = LabellingService::start(
        &tasks,
        &workers,
        ServeConfig {
            gossip_every: None,
            ..incremental_config(RetentionPolicy::PruneCheckpointed {
                spill_dir: Some(spill_dir.to_string_lossy().into_owned()),
            })
        },
    );
    // Two prune cycles so the spill files carry appended segments, not
    // one monolithic write.
    ingest(&service, &pairs[..half]);
    let first = service.prune().expect("retention is enabled");
    assert_eq!(first, half);
    ingest(&service, &pairs[half..]);
    let second = service.prune().expect("retention is enabled");
    assert_eq!(first + second, pairs.len());
    assert_eq!(service.answers_resident(), 0);

    let mut audited = 0usize;
    for s in 0..service.n_shards() {
        let shard = service.shard(s);
        let floor: Vec<(WorkerId, TaskId)> = shard.pruned_pairs_global().collect();
        let records: Vec<(WorkerId, TaskId, LabelBits)> =
            SpillReader::open(&spill_path(&spill_dir, s))
                .expect("spill file exists for every pruning shard")
                .collect::<Result<_, _>>()
                .expect("no torn records");
        // The archive holds exactly the pruned stream: the spill file is
        // in arrival order, the identity floor is a sorted set — the same
        // pairs either way.
        let mut archived: Vec<(WorkerId, TaskId)> =
            records.iter().map(|&(w, t, _)| (w, t)).collect();
        archived.sort_unstable();
        assert_eq!(
            archived, floor,
            "shard {s}: spill records must match the identity floor"
        );
        // Replay cross-check: every archived payload is the original
        // answer for its pair, so an auditor can rebuild the shard's
        // pre-prune stream from the archive alone.
        for &(w, t, ref bits) in &records {
            assert_eq!(
                *bits,
                bits_for(w, t),
                "shard {s}: archived payload for ({w}, {t}) differs from the submitted answer"
            );
        }
        audited += records.len();
    }
    assert_eq!(audited, pairs.len(), "the archive covers the full stream");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&spill_dir);
}
