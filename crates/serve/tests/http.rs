//! End-to-end tests of the HTTP/1.1 front-end over real sockets:
//! route round-trips, malformed-request rejection, concurrent keep-alive
//! clients driving full request → answer loops, and snapshot → restore
//! through the admin endpoints.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crowd_core::{synthetic_task, TaskSet, UpdatePolicy, Worker, WorkerPool};
use crowd_geo::Point;
use crowd_obs::validate_exposition;
use crowd_serve::{
    spill_path, HttpConfig, HttpServer, Json, LabellingService, RetentionPolicy, ServeConfig,
    SpillReader,
};

fn world(n_tasks: usize, n_workers: usize) -> (TaskSet, WorkerPool) {
    let side = (n_tasks as f64).sqrt().ceil() as usize;
    let tasks = TaskSet::new(
        (0..n_tasks)
            .map(|i| {
                synthetic_task(
                    format!("t{i}"),
                    Point::new((i % side) as f64, (i / side) as f64),
                    3,
                )
            })
            .collect(),
    );
    let workers = WorkerPool::from_workers(
        (0..n_workers)
            .map(|i| {
                Worker::at(
                    format!("w{i}"),
                    Point::new((i % side) as f64 + 0.25, (i / side) as f64 + 0.4),
                )
            })
            .collect(),
    )
    .unwrap();
    (tasks, workers)
}

fn start_server(n_tasks: usize, n_workers: usize, config: ServeConfig) -> HttpServer {
    let (tasks, workers) = world(n_tasks, n_workers);
    let service = LabellingService::start(&tasks, &workers, config);
    HttpServer::start(service, tasks, workers, HttpConfig::default()).unwrap()
}

/// A minimal blocking HTTP/1.1 client that keeps its connection alive
/// between requests.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(server: &HttpServer) -> Self {
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Self { stream }
    }

    /// Sends one request and reads the full response.
    fn send(&mut self, method: &str, path: &str, body: &str) -> (u16, Json) {
        let (status, text) = self.send_raw(&format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ));
        let json = Json::parse(&text).unwrap_or_else(|e| panic!("bad JSON ({e}): {text}"));
        (status, json)
    }

    /// Writes raw bytes and parses the response head + framed body.
    fn send_raw(&mut self, raw: &str) -> (u16, String) {
        self.stream.write_all(raw.as_bytes()).unwrap();
        self.stream.flush().unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            let n = self.stream.read(&mut chunk).expect("response head");
            assert!(n > 0, "connection closed mid-head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line: {head}"));
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().unwrap())
            })
            .expect("content-length header");
        while buf.len() < head_end + content_length {
            let n = self.stream.read(&mut chunk).expect("response body");
            assert!(n > 0, "connection closed mid-body");
            buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(buf[head_end..head_end + content_length].to_vec()).unwrap();
        (status, body)
    }
}

fn as_usize(json: &Json, key: &str) -> usize {
    json.get(key)
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("missing numeric {key:?} in {}", json.render()))
}

#[test]
fn routes_round_trip_over_a_real_socket() {
    let server = start_server(
        16,
        4,
        ServeConfig {
            n_shards: 2,
            budget: 24,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(&server);

    let (status, health) = client.send("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));

    // Request tasks for two workers, answer every issued pair, and watch
    // the progress counters converge — all over one keep-alive connection.
    let (status, assigned) = client.send("POST", "/tasks/request", r#"{"workers": [0, 1]}"#);
    assert_eq!(status, 200);
    let issued = as_usize(&assigned, "issued");
    assert!(issued > 0, "no tasks issued: {}", assigned.render());

    let mut labels = Vec::new();
    for entry in assigned.get("assignments").and_then(Json::as_arr).unwrap() {
        let w = as_usize(entry, "worker");
        for t in entry.get("tasks").and_then(Json::as_arr).unwrap() {
            let t = t.as_usize().unwrap();
            labels.push(format!(r#"{{"worker": {w}, "task": {t}, "bits": "101"}}"#));
        }
    }
    let (status, accepted) = client.send("POST", "/labels", &format!("[{}]", labels.join(",")));
    assert_eq!(status, 202);
    assert_eq!(as_usize(&accepted, "accepted"), issued);

    // Fire-and-forget answers may still be in flight; poll progress.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (status, progress) = client.send("GET", "/campaign/progress", "");
        assert_eq!(status, 200);
        assert_eq!(as_usize(&progress, "budget"), 24);
        assert_eq!(as_usize(&progress, "budget_used"), issued);
        if as_usize(&progress, "answers_total") == issued {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "answers never drained: {}",
            progress.render()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let (status, stats) = client.send("GET", "/workers/0/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stats.get("name"), Some(&Json::Str("w0".to_string())));
    assert!(stats.get("locations").and_then(Json::as_arr).is_some());
    assert!(as_usize(&stats, "answers_total") > 0);

    let (status, metrics) = client.send("GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(
        metrics
            .get("shards")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(2)
    );
    let http = metrics.get("http").expect("http counter block");
    assert!(as_usize(http, "requests_total") > 0);
    assert_eq!(as_usize(http, "active_connections"), 1);

    let service = server.shutdown().unwrap();
    assert_eq!(service.answers_total(), issued);
    service.shutdown();
}

/// Requests tasks for `workers` and answers the *first* issued pair in
/// synchronous mode, returning that pair and the total issued.
fn issue_and_answer_first(client: &mut Client, workers: &str) -> ((usize, usize), usize) {
    let (status, assigned) = client.send(
        "POST",
        "/tasks/request",
        &format!(r#"{{"workers": {workers}}}"#),
    );
    assert_eq!(status, 200);
    let issued = as_usize(&assigned, "issued");
    assert!(issued > 0);
    let entry = &assigned.get("assignments").and_then(Json::as_arr).unwrap()[0];
    let w = as_usize(entry, "worker");
    let t = entry.get("tasks").and_then(Json::as_arr).unwrap()[0]
        .as_usize()
        .unwrap();
    let (status, accepted) = client.send(
        "POST",
        "/labels?wait=1",
        &format!(r#"{{"worker": {w}, "task": {t}, "bits": "101"}}"#),
    );
    assert_eq!(status, 200, "{}", accepted.render());
    assert_eq!(as_usize(&accepted, "accepted"), 1);
    ((w, t), issued)
}

#[test]
fn restore_drops_reservations_and_duplicate_resubmit_gets_409() {
    let server = start_server(
        16,
        4,
        ServeConfig {
            n_shards: 2,
            budget: 30,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(&server);
    let ((w, t), _issued) = issue_and_answer_first(&mut client, "[0, 1]");

    // Synchronous mode surfaces the duplicate as a 409, where
    // fire-and-forget would only bump the shard's rejection counter.
    let dup = format!(r#"{{"worker": {w}, "task": {t}, "bits": "101"}}"#);
    let (status, body) = client.send("POST", "/labels?wait=1", &dup);
    assert_eq!(status, 409, "{}", body.render());

    // Snapshot with one answer in and the other pairs still reserved,
    // then restore: the swap deliberately drops those reservations.
    let (status, snapshot) = client.send("POST", "/admin/snapshot", "");
    assert_eq!(status, 200);
    let (status, restored) = client.send("POST", "/admin/restore", &snapshot.render());
    assert_eq!(status, 200, "{}", restored.render());
    assert_eq!(as_usize(&restored, "answers_total"), 1);

    // A client that outlived the swap and re-submits the already-applied
    // answer races the re-issue below; it gets a clean 409, not a crash.
    let (status, body) = client.send("POST", "/labels?wait=1", &dup);
    assert_eq!(status, 409, "{}", body.render());

    // The dropped reservations make the unanswered pairs assignable again.
    let (status, again) = client.send("POST", "/tasks/request", r#"{"workers": [0, 1]}"#);
    assert_eq!(status, 200);
    assert!(
        as_usize(&again, "issued") > 0,
        "restore must free the in-flight pairs for re-issue: {}",
        again.render()
    );

    server.shutdown().unwrap().shutdown();
}

#[test]
fn admin_prune_rejects_keep_all() {
    let server = start_server(9, 3, ServeConfig::default());
    let mut client = Client::connect(&server);
    let (status, body) = client.send("POST", "/admin/prune", "");
    assert_eq!(status, 409, "{}", body.render());
    server.shutdown().unwrap().shutdown();
}

#[test]
fn admin_prune_bounds_memory_and_spills_to_disk() {
    let spill_dir = std::env::temp_dir().join(format!("crowd-spill-http-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let server = start_server(
        16,
        4,
        ServeConfig {
            n_shards: 2,
            budget: 30,
            retention: RetentionPolicy::PruneCheckpointed {
                spill_dir: Some(spill_dir.to_string_lossy().into_owned()),
            },
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(&server);
    let ((w, t), _) = issue_and_answer_first(&mut client, "[0, 1, 2]");

    let (status, pruned) = client.send("POST", "/admin/prune", "");
    assert_eq!(status, 200, "{}", pruned.render());
    assert_eq!(as_usize(&pruned, "pruned"), 1);
    assert_eq!(as_usize(&pruned, "resident"), 0);

    // The stream-wide total is unchanged; only residency moved tiers.
    let (status, progress) = client.send("GET", "/campaign/progress", "");
    assert_eq!(status, 200);
    assert_eq!(as_usize(&progress, "answers_total"), 1);

    // Duplicate detection survives the prune: the dropped payload's
    // (worker, task) pair is still remembered.
    let (status, body) = client.send(
        "POST",
        "/labels?wait=1",
        &format!(r#"{{"worker": {w}, "task": {t}, "bits": "101"}}"#),
    );
    assert_eq!(status, 409, "{}", body.render());

    // The tier gauges expose the split, JSON and Prometheus alike.
    let (status, metrics) = client.send("GET", "/metrics", "");
    assert_eq!(status, 200);
    let shards = metrics.get("shards").and_then(Json::as_arr).unwrap();
    let sum = |key: &str| shards.iter().map(|s| as_usize(s, key)).sum::<usize>();
    assert_eq!(sum("pruned_answers"), 1);
    assert_eq!(sum("resident_answers"), 0);
    let (status, text) = client.send_raw(
        "GET /metrics?format=prometheus HTTP/1.1\r\nhost: test\r\ncontent-length: 0\r\n\r\n",
    );
    assert_eq!(status, 200);
    validate_exposition(&text).unwrap();
    assert!(text.contains("crowd_shard_pruned_answers"));
    assert!(text.contains("crowd_shard_resident_answers"));

    // The pruned payload landed in the owning shard's spill file.
    let spilled: usize = (0..2)
        .filter_map(|s| SpillReader::open(&spill_path(&spill_dir, s)).ok())
        .map(|r| r.map(Result::unwrap).count())
        .sum();
    assert_eq!(spilled, 1, "the pruned answer must be on disk");

    server.shutdown().unwrap().shutdown();
    let _ = std::fs::remove_dir_all(&spill_dir);
}

#[test]
fn malformed_requests_are_rejected_without_killing_the_server() {
    let server = start_server(9, 3, ServeConfig::default());

    // Protocol-level garbage: each case gets its status and a close.
    for (raw, want) in [
        ("NONSENSE\r\n\r\n", 400),
        ("GET / HTTP/2\r\n\r\n", 505),
        (
            "POST /labels HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            501,
        ),
    ] {
        let mut c = Client::connect(&server);
        let (status, _) = c.send_raw(raw);
        assert_eq!(status, want, "{raw:?}");
    }

    // Application-level garbage: the keep-alive connection survives.
    let mut c = Client::connect(&server);
    for (method, path, body, want) in [
        ("GET", "/nope", "", 404),
        ("DELETE", "/labels", "", 405),
        ("POST", "/tasks/request", "not json", 400),
        ("POST", "/tasks/request", r#"{"workers": "zero"}"#, 400),
        ("POST", "/tasks/request", r#"{"workers": [99]}"#, 404),
        ("POST", "/labels", "[]", 400),
        ("POST", "/labels", r#"{"worker": 0, "task": 0}"#, 400),
        (
            "POST",
            "/labels",
            r#"{"worker": 0, "task": 0, "bits": "10"}"#,
            400,
        ),
        (
            "POST",
            "/labels",
            r#"{"worker": 0, "task": 777, "bits": "101"}"#,
            404,
        ),
        (
            "POST",
            "/labels",
            r#"{"worker": 0, "task": 0, "bits": "1x1"}"#,
            400,
        ),
        ("GET", "/workers/abc/stats", "", 400),
        ("GET", "/workers/99/stats", "", 404),
        ("POST", "/admin/restore", r#"{"version": 99}"#, 400),
    ] {
        let (status, body) = c.send(method, path, body);
        assert_eq!(status, want, "{method} {path} {body:?}");
        assert!(body.get("error").is_some(), "{method} {path}");
    }
    // A batch with one invalid entry is rejected atomically.
    let (status, _) = c.send(
        "POST",
        "/labels",
        r#"[{"worker": 0, "task": 0, "bits": "101"}, {"worker": 0, "task": 777, "bits": "101"}]"#,
    );
    assert_eq!(status, 404);

    // The server still answers normal traffic on the same connection, and
    // the rejected batch enqueued nothing.
    let (status, progress) = c.send("GET", "/campaign/progress", "");
    assert_eq!(status, 200);
    assert_eq!(as_usize(&progress, "answers_total"), 0);

    server.shutdown().unwrap().shutdown();
}

#[test]
fn concurrent_keep_alive_clients_drive_full_loops() {
    let server = start_server(
        36,
        8,
        ServeConfig {
            n_shards: 4,
            budget: 120,
            h: 2,
            ..ServeConfig::default()
        },
    );
    let n_clients = 8usize;
    std::thread::scope(|s| {
        for worker in 0..n_clients {
            let server = &server;
            s.spawn(move || {
                let mut client = Client::connect(server);
                let mut empties = 0u32;
                loop {
                    let (status, assigned) = client.send(
                        "POST",
                        "/tasks/request",
                        &format!(r#"{{"workers": [{worker}]}}"#),
                    );
                    if status == 409 {
                        break; // budget exhausted
                    }
                    assert_eq!(status, 200);
                    if as_usize(&assigned, "issued") == 0 {
                        // Remaining pairs may be reserved behind queued
                        // answers; back off briefly before giving up.
                        empties += 1;
                        if empties > 50 {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                    empties = 0;
                    let mut labels = Vec::new();
                    for entry in assigned.get("assignments").and_then(Json::as_arr).unwrap() {
                        let w = as_usize(entry, "worker");
                        for t in entry.get("tasks").and_then(Json::as_arr).unwrap() {
                            let t = t.as_usize().unwrap();
                            labels
                                .push(format!(r#"{{"worker": {w}, "task": {t}, "bits": "110"}}"#));
                        }
                    }
                    let (status, _) =
                        client.send("POST", "/labels", &format!("[{}]", labels.join(",")));
                    assert_eq!(status, 202);
                }
            });
        }
    });

    let service = server.shutdown().unwrap();
    service.quiesce();
    // Every issued pair was answered exactly once: fire-and-forget
    // duplicates would show up as shard-side rejections.
    assert_eq!(service.answers_total(), service.budget_used());
    assert!(service.budget_used() > 0);
    let metrics = service.metrics();
    assert_eq!(
        metrics.shards.iter().map(|m| m.rejected).sum::<u64>(),
        0,
        "a reserved pair was re-issued over HTTP"
    );
    service.shutdown();
}

/// A config that makes every applied answer trigger a delayed full EM
/// *and* a gossip round, so one `POST /labels` walks the entire span
/// taxonomy.
fn eager_config() -> ServeConfig {
    ServeConfig {
        n_shards: 2,
        budget: 24,
        policy: UpdatePolicy {
            full_em_every: Some(1),
            ..UpdatePolicy::default()
        },
        gossip_every: Some(1),
        ..ServeConfig::default()
    }
}

/// Polls `/campaign/progress` until `answers_total` reaches `want`.
fn await_answers(client: &mut Client, want: usize) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (status, progress) = client.send("GET", "/campaign/progress", "");
        assert_eq!(status, 200);
        if as_usize(&progress, "answers_total") == want {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "answers never drained: {}",
            progress.render()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn one_labels_request_traces_end_to_end() {
    let server = start_server(16, 4, eager_config());
    let mut client = Client::connect(&server);

    // One assignment, one answer.
    let (status, assigned) = client.send("POST", "/tasks/request", r#"{"workers": [0]}"#);
    assert_eq!(status, 200);
    let entry = &assigned.get("assignments").and_then(Json::as_arr).unwrap()[0];
    let task = entry.get("tasks").and_then(Json::as_arr).unwrap()[0]
        .as_usize()
        .unwrap();
    let (status, _) = client.send(
        "POST",
        "/labels",
        &format!(r#"{{"worker": 0, "task": {task}, "bits": "101"}}"#),
    );
    assert_eq!(status, 202);
    await_answers(&mut client, 1);

    let (status, trace) = client.send("GET", "/debug/trace", "");
    assert_eq!(status, 200);
    let events = trace.get("events").and_then(Json::as_arr).unwrap();
    assert!(!events.is_empty());

    // The labels request is the one span whose command reached a shard's
    // apply path; everything it did shares that span id.
    let span_of = |e: &Json| as_usize(e, "span");
    let stage_of = |e: &Json| match e.get("stage") {
        Some(Json::Str(s)) => s.clone(),
        other => panic!("bad stage: {other:?}"),
    };
    let apply_spans: Vec<usize> = events
        .iter()
        .filter(|e| stage_of(e) == "apply")
        .map(span_of)
        .collect();
    assert_eq!(apply_spans.len(), 1, "exactly one answer was applied");
    let span = apply_spans[0];
    assert_ne!(span, 0, "the applied answer was traced");

    let mut mine: Vec<(usize, String)> = events
        .iter()
        .filter(|e| span_of(e) == span)
        .map(|e| (as_usize(e, "seq"), stage_of(e)))
        .collect();
    mine.sort_unstable();
    let stages: Vec<&str> = mine.iter().map(|(_, s)| s.as_str()).collect();
    assert_eq!(
        stages,
        [
            "http_parse",
            "route",
            "enqueue",
            "drain",
            "apply",
            "em",
            "gossip_fold"
        ],
        "span {span} did not walk the pipeline in order"
    );
    // Global sequence numbers prove the ordering even under ties in at_ns.
    assert!(mine.windows(2).all(|w| w[0].0 < w[1].0));

    // The shard-side stages all name the same shard; the HTTP-side ones
    // name none.
    for e in events.iter().filter(|e| span_of(e) == span) {
        let shard = e.get("shard");
        match stage_of(e).as_str() {
            "http_parse" | "route" => assert_eq!(shard, Some(&Json::Null)),
            _ => assert!(shard.and_then(Json::as_usize).is_some()),
        }
    }

    server.shutdown().unwrap().shutdown();
}

#[test]
fn prometheus_exposition_is_well_formed() {
    let server = start_server(16, 4, eager_config());
    let mut client = Client::connect(&server);

    // Drive enough traffic that EM, gossip and the per-route histograms
    // all have samples, plus one 404 for the error counters.
    let (status, assigned) = client.send("POST", "/tasks/request", r#"{"workers": [0, 1]}"#);
    assert_eq!(status, 200);
    let mut labels = Vec::new();
    for entry in assigned.get("assignments").and_then(Json::as_arr).unwrap() {
        let w = as_usize(entry, "worker");
        for t in entry.get("tasks").and_then(Json::as_arr).unwrap() {
            labels.push(format!(
                r#"{{"worker": {w}, "task": {}, "bits": "011"}}"#,
                t.as_usize().unwrap()
            ));
        }
    }
    let issued = labels.len();
    assert!(issued > 0);
    let (status, _) = client.send("POST", "/labels", &format!("[{}]", labels.join(",")));
    assert_eq!(status, 202);
    let (status, _) = client.send("GET", "/nope", "");
    assert_eq!(status, 404);
    await_answers(&mut client, issued);

    let (status, body) = client.send_raw(
        "GET /metrics?format=prometheus HTTP/1.1\r\nhost: test\r\ncontent-length: 0\r\n\r\n",
    );
    assert_eq!(status, 200);
    validate_exposition(&body).unwrap_or_else(|e| panic!("invalid exposition ({e}):\n{body}"));

    // The acceptance-critical families are present with real samples.
    for needle in [
        "crowd_http_request_seconds_bucket{route=\"labels\",",
        "crowd_http_request_seconds_count{route=\"tasks_request\"}",
        "crowd_http_responses_total{class=\"4xx\"} 1",
        "crowd_http_responses_408_total 0",
        "crowd_queue_wait_seconds_count",
        "crowd_apply_seconds_bucket",
        "crowd_em_rebuild_seconds_count{sweep=\"full\",threads=\"1\"}",
        "crowd_em_rebuild_seconds_count{sweep=\"dirty\",threads=\"1\"}",
        "crowd_shard_em_threads{shard=\"0\"}",
        "crowd_gossip_round_seconds_count",
        "crowd_shard_queue_hwm{shard=\"0\"}",
        "crowd_enqueued_total",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }
    // EM and gossip actually fired under the eager config.
    let count_of = |family: &str| -> f64 {
        body.lines()
            .find(|l| l.starts_with(family))
            .and_then(|l| l.rsplit_once(' '))
            .map(|(_, v)| v.parse().unwrap())
            .unwrap_or_else(|| panic!("no sample for {family}"))
    };
    assert!(count_of("crowd_em_rebuild_seconds_count{sweep=\"full\",threads=\"1\"}") >= 1.0);
    assert!(count_of("crowd_gossip_round_seconds_count") >= 1.0);
    assert!(count_of("crowd_queue_wait_seconds_count") >= issued as f64);

    server.shutdown().unwrap().shutdown();
}

#[test]
fn admin_snapshot_restore_round_trips_over_http() {
    let server = start_server(
        16,
        4,
        ServeConfig {
            n_shards: 2,
            budget: 30,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(&server);

    // Drive some traffic so the snapshot has real state.
    let (status, assigned) = client.send("POST", "/tasks/request", r#"{"workers": [0, 1, 2]}"#);
    assert_eq!(status, 200);
    let issued = as_usize(&assigned, "issued");
    assert!(issued > 0);
    let mut labels = Vec::new();
    for entry in assigned.get("assignments").and_then(Json::as_arr).unwrap() {
        let w = as_usize(entry, "worker");
        for t in entry.get("tasks").and_then(Json::as_arr).unwrap() {
            labels.push(format!(
                r#"{{"worker": {w}, "task": {}, "bits": "011"}}"#,
                t.as_usize().unwrap()
            ));
        }
    }
    let (status, _) = client.send("POST", "/labels", &format!("[{}]", labels.join(",")));
    assert_eq!(status, 202);

    // Snapshot (quiesces the queues first, so the answers above are in).
    let (status, snapshot) = client.send("POST", "/admin/snapshot", "");
    assert_eq!(status, 200);
    assert!(as_usize(&snapshot, "version") >= 3);
    let document = snapshot.render();

    // Restore swaps in a fresh service rebuilt from the document.
    let (status, restored) = client.send("POST", "/admin/restore", &document);
    assert_eq!(status, 200, "{}", restored.render());
    assert_eq!(restored.get("restored"), Some(&Json::Bool(true)));
    assert_eq!(as_usize(&restored, "answers_total"), issued);

    // The swapped-in service answers traffic with the restored state.
    let (status, progress) = client.send("GET", "/campaign/progress", "");
    assert_eq!(status, 200);
    assert_eq!(as_usize(&progress, "answers_total"), issued);
    assert_eq!(as_usize(&progress, "budget_used"), issued);

    let service = server.shutdown().unwrap();
    assert_eq!(service.answers_total(), issued);
    service.shutdown();
}
