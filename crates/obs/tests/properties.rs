//! Property and concurrency tests for the `crowd_obs` histogram.
//!
//! Two claims are proven here, per the histogram's contract:
//!
//! 1. **Percentiles match a sorted-vector oracle.** For any data set and
//!    quantile `q`, `Histogram::quantile(q)` returns exactly the upper
//!    bound of the bucket holding the rank-`⌈q·n⌉` smallest value of the
//!    sorted data — no off-by-one drift, any data shape.
//! 2. **Concurrent record-then-merge ≡ sequential.** Recording a data
//!    set from many threads (into per-thread histograms that are then
//!    merged, and into one shared histogram directly) yields exactly
//!    the same counts, sums, and per-bucket contents as recording it
//!    sequentially — the relaxed atomics lose nothing.

use std::thread;

use crowd_obs::{bucket_of, bucket_upper, Histogram};
use proptest::prelude::*;

/// The oracle: what `quantile(q)` must return for `data`.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let target =
        (((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1)).min(sorted.len());
    bucket_upper(bucket_of(sorted[target - 1]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_match_sorted_vector_oracle(
        // (shift, mantissa) pairs spread values across ~16 orders of
        // magnitude, exercising both the linear and the log regions.
        raw in prop::collection::vec((0u32..54, 0u64..1024), 1..400),
        q_raw in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let data: Vec<u64> = raw.iter().map(|&(shift, m)| m << shift).collect();
        let h = Histogram::new();
        for &v in &data {
            h.record(v);
        }
        let mut sorted = data.clone();
        sorted.sort_unstable();

        prop_assert_eq!(h.count(), data.len() as u64);
        prop_assert_eq!(h.sum(), data.iter().copied().fold(0u64, u64::wrapping_add));
        prop_assert_eq!(h.max(), *sorted.last().unwrap());

        for q in q_raw.iter().copied().chain([0.0, 0.5, 0.99, 1.0]) {
            let got = h.quantile(q);
            let want = oracle_quantile(&sorted, q);
            prop_assert_eq!(got, want, "q={} data_len={}", q, data.len());
            // And the reported value never undershoots the true rank
            // statistic (it is a bucket *upper* bound).
            #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
            let target = (((q * sorted.len() as f64).ceil() as usize).max(1)).min(sorted.len());
            prop_assert!(got >= sorted[target - 1]);
        }
    }
}

#[test]
fn concurrent_record_then_merge_equals_sequential() {
    // A fixed pseudo-random data set spread across magnitudes.
    let data: Vec<u64> = (0u64..8_000)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
            x >> (x % 50) // 0 .. 2^64 >> 49, wide spread
        })
        .collect();

    // Sequential reference.
    let sequential = Histogram::new();
    for &v in &data {
        sequential.record(v);
    }

    // Concurrent: 8 threads, each records its chunk both into a private
    // histogram (merged afterwards) and into one shared histogram.
    let shared = Histogram::new();
    let chunks: Vec<&[u64]> = data.chunks(data.len() / 8 + 1).collect();
    let privates: Vec<Histogram> = thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let shared = &shared;
                s.spawn(move || {
                    let private = Histogram::new();
                    for &v in *chunk {
                        private.record(v);
                        shared.record(v);
                    }
                    private
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let merged = Histogram::new();
    for p in &privates {
        merged.merge_from(p);
    }

    for (name, h) in [("shared", &shared), ("merged", &merged)] {
        assert_eq!(h.count(), sequential.count(), "{name} count");
        assert_eq!(h.sum(), sequential.sum(), "{name} sum");
        assert_eq!(h.max(), sequential.max(), "{name} max");
        assert_eq!(
            h.nonzero_buckets(),
            sequential.nonzero_buckets(),
            "{name} per-bucket contents"
        );
    }
    // Identical buckets ⇒ identical quantiles, but check a few anyway.
    for q in [0.5, 0.9, 0.99, 1.0] {
        assert_eq!(shared.quantile(q), sequential.quantile(q));
        assert_eq!(merged.quantile(q), sequential.quantile(q));
    }
}
