//! A structured trace-event ring buffer with span ids.
//!
//! A *span* follows one logical request across threads: the HTTP layer
//! begins a span when it parses a request, and every later stage —
//! route dispatch, shard enqueue, drain, model update, gossip fold —
//! records an event stamped with the same span id. Events carry a
//! global sequence number, so a reader can prove stage ordering even
//! when wall-clock timestamps tie.
//!
//! The buffer is a bounded ring: when full, the oldest events are
//! dropped and counted, never blocking a recorder. Setting the
//! `CROWD_OBS_STDERR` environment variable (checked once, at
//! construction) additionally mirrors every event to stderr as one text
//! line — the test/debug sink.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The span this event belongs to (from [`TraceBuf::begin_span`]).
    pub span: u64,
    /// Pipeline stage name (static, from a small fixed taxonomy).
    pub stage: &'static str,
    /// The shard that recorded the event, when stage runs shard-side.
    pub shard: Option<usize>,
    /// Nanoseconds since the buffer's construction.
    pub at_ns: u64,
    /// Global record order — strictly increasing across all spans.
    pub seq: u64,
}

/// The bounded trace ring buffer (see the module docs).
#[derive(Debug)]
pub struct TraceBuf {
    cap: usize,
    next_span: AtomicU64,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
    stderr: bool,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl TraceBuf {
    /// A buffer holding at most `cap` events (oldest dropped first).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            next_span: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            stderr: std::env::var_os("CROWD_OBS_STDERR").is_some(),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Allocates a fresh span id (never 0 — callers use 0 for "no
    /// span" plumbing).
    #[must_use]
    pub fn begin_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one event. A `span` of 0 (untraced work) is dropped.
    pub fn record(&self, span: u64, stage: &'static str, shard: Option<usize>) {
        if span == 0 {
            return;
        }
        let event = TraceEvent {
            span,
            stage,
            shard,
            at_ns: u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
        };
        if self.stderr {
            eprintln!(
                "crowd_obs: span={} stage={} shard={} at_ns={} seq={}",
                event.span,
                event.stage,
                event.shard.map_or(-1i64, |s| s as i64),
                event.at_ns,
                event.seq
            );
        }
        let mut q = self.events.lock().expect("trace buffer poisoned");
        if q.len() == self.cap {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event);
    }

    /// Takes every buffered event out, in record order.
    #[must_use]
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut q = self.events.lock().expect("trace buffer poisoned");
        q.drain(..).collect()
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace buffer poisoned").len()
    }

    /// Whether the buffer is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_unique_and_events_ordered() {
        let buf = TraceBuf::new(16);
        let a = buf.begin_span();
        let b = buf.begin_span();
        assert_ne!(a, b);
        assert_ne!(a, 0);
        buf.record(a, "http_parse", None);
        buf.record(b, "http_parse", None);
        buf.record(a, "enqueue", Some(2));
        let events = buf.drain();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(events[2].shard, Some(2));
        assert!(buf.is_empty());
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let buf = TraceBuf::new(2);
        let s = buf.begin_span();
        buf.record(s, "a", None);
        buf.record(s, "b", None);
        buf.record(s, "c", None);
        assert_eq!(buf.dropped(), 1);
        let events = buf.drain();
        assert_eq!(
            events.iter().map(|e| e.stage).collect::<Vec<_>>(),
            vec!["b", "c"]
        );
    }

    #[test]
    fn span_zero_is_discarded() {
        let buf = TraceBuf::new(4);
        buf.record(0, "untraced", None);
        assert!(buf.is_empty());
    }
}
