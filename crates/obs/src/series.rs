//! A bounded time series of gauge samples.
//!
//! The self-sampler thread in the serve layer appends one point per
//! tick (queue depth, event-log length); readers get the whole window
//! for rendering, and the latest point backs the instantaneous gauge in
//! the Prometheus exposition. Like the trace ring, the series is
//! bounded: the oldest points fall off first.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One gauge sample: nanoseconds since the series' construction, value.
pub type GaugePoint = (u64, u64);

/// A bounded ring of gauge samples over time.
#[derive(Debug)]
pub struct GaugeSeries {
    cap: usize,
    epoch: Instant,
    points: Mutex<VecDeque<GaugePoint>>,
}

impl GaugeSeries {
    /// A series holding at most `cap` points (oldest dropped first).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            epoch: Instant::now(),
            points: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends one sample stamped with the current time.
    pub fn record(&self, value: u64) {
        let at_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut q = self.points.lock().expect("gauge series poisoned");
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back((at_ns, value));
    }

    /// A copy of the buffered window, oldest first.
    #[must_use]
    pub fn points(&self) -> Vec<GaugePoint> {
        self.points
            .lock()
            .expect("gauge series poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// The most recent sample, if any.
    #[must_use]
    pub fn last(&self) -> Option<GaugePoint> {
        self.points
            .lock()
            .expect("gauge series poisoned")
            .back()
            .copied()
    }

    /// Number of buffered samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.lock().expect("gauge series poisoned").len()
    }

    /// Whether no sample has been recorded yet (or all fell off).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_accumulate_in_order_and_bound() {
        let s = GaugeSeries::new(3);
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
        for v in 1..=5u64 {
            s.record(v * 10);
        }
        let pts = s.points();
        assert_eq!(pts.len(), 3, "capped at 3");
        assert_eq!(
            pts.iter().map(|p| p.1).collect::<Vec<_>>(),
            vec![30, 40, 50]
        );
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(s.last().unwrap().1, 50);
    }
}
