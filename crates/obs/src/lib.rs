//! `crowd_obs` — dependency-free observability primitives.
//!
//! This crate is the leaf of the workspace's observability stack: it
//! has **zero dependencies** (std only) and knows nothing about POI
//! labelling. It provides four small building blocks that the serving
//! layer composes into end-to-end request visibility:
//!
//! - [`hist::Histogram`] — a fixed-layout, lock-free, mergeable
//!   log-linear latency histogram (≤ 12.5 % relative error) with
//!   `p50/p90/p99/max` queries via [`hist::Summary`].
//! - [`trace::TraceBuf`] — a bounded structured trace-event ring with
//!   span ids, following one request across HTTP parse → route →
//!   enqueue → drain → model update → gossip fold. An env-gated
//!   (`CROWD_OBS_STDERR`) text sink mirrors events to stderr.
//! - [`series::GaugeSeries`] — a bounded time series of gauge samples
//!   for the periodic self-sampler (queue depth, event-log length).
//! - [`prom`] — Prometheus text-exposition rendering
//!   ([`prom::PromText`]) and structural validation
//!   ([`prom::validate_exposition`]) used by CI and smoke gates.
//!
//! Everything here is wait-free or bounded-lock, safe to call from hot
//! paths, and deliberately **not** serialized into snapshots: metrics
//! describe a process, not a campaign (see `docs/OBSERVABILITY.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod prom;
pub mod series;
pub mod trace;

pub use hist::{bucket_of, bucket_upper, Histogram, Summary, N_BUCKETS};
pub use prom::{validate_exposition, PromText};
pub use series::{GaugePoint, GaugeSeries};
pub use trace::{TraceBuf, TraceEvent};
