//! A lock-free log-linear latency histogram over atomic buckets.
//!
//! The bucket layout is the HDR scheme: values below `2·SUB` get one
//! bucket each (exact), and every octave above is split into `SUB`
//! sub-buckets, so the relative quantization error is bounded by
//! `1/SUB` (12.5 % with `SUB = 8`) across the whole `u64` range. The
//! layout is *fixed* — every histogram has the same [`N_BUCKETS`]
//! buckets — which is what makes two histograms mergeable by bucket-wise
//! addition with no rebinning.
//!
//! Recording is wait-free: one relaxed `fetch_add` on the bucket, the
//! count and the sum, plus a `fetch_max` for the maximum. Readers walk
//! the buckets without any lock; a snapshot read concurrent with writers
//! is a consistent-enough view for monitoring (each bucket is exact,
//! the set may straddle in-flight records).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per octave as a power of two: `SUB = 2^SUB_BITS`.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (8 → ≤ 12.5 % relative error).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`: the linear region holds
/// `2·SUB` buckets and each of the `63 − SUB_BITS` remaining octaves
/// holds `SUB`.
pub const N_BUCKETS: usize = (2 * SUB + (63 - SUB_BITS as u64) * SUB) as usize;

/// Bucket index for a value (see the module docs for the layout).
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    if v < 2 * SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // ≥ SUB_BITS + 1 here
    let shift = exp - SUB_BITS;
    let offset = (v >> shift) - SUB; // 0..SUB within the octave
    ((u64::from(exp - SUB_BITS) + 1) * SUB + offset) as usize
}

/// Largest value falling into bucket `index` — what quantile queries
/// report for any value recorded into that bucket.
#[must_use]
pub fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUB {
        return index;
    }
    let octave = index / SUB; // = exp − SUB_BITS + 1
    let offset = index % SUB;
    let shift = octave - 1;
    // The top bucket's upper bound saturates at u64::MAX.
    ((SUB + offset + 1) << shift)
        .wrapping_sub(1)
        .max(1 << shift)
}

/// A fixed-layout, mergeable, lock-free latency histogram.
///
/// Values are dimensionless `u64`s; the serve layer records
/// nanoseconds. Use [`Histogram::record_duration`] for `Duration`s.
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Wait-free; safe from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow, like Prometheus
    /// counters).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean of recorded values (0.0 when empty).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), reported as the upper bound of
    /// the bucket holding the rank-`⌈q·count⌉` smallest value — an
    /// overestimate by at most one bucket width (≤ 12.5 % relative).
    /// Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_upper(i);
            }
        }
        // Writers raced `count` past the buckets; the max is the honest
        // answer for "the largest thing we saw".
        self.max()
    }

    /// Adds every bucket (and the count / sum / max) of `other` into
    /// `self`. The fixed layout makes this exact: no rebinning.
    pub fn merge_from(&self, other: &Self) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs in
    /// ascending bucket order — the input for Prometheus `_bucket`
    /// rendering and for the merge/oracle tests.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper(i), n))
            })
            .collect()
    }

    /// A plain-struct summary for rendering (count, sum, max, common
    /// percentiles).
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every value maps into range, indices never decrease with the
        // value, and each bucket's upper bound belongs to that bucket.
        let mut last = 0usize;
        let mut v = 0u64;
        while v < 1 << 20 {
            let i = bucket_of(v);
            assert!(i < N_BUCKETS, "v={v} → {i}");
            assert!(i >= last, "index regressed at v={v}");
            if i > last {
                assert_eq!(i, last + 1, "gap in indices at v={v}");
            }
            last = i;
            assert!(bucket_upper(i) >= v, "upper({i}) < {v}");
            assert_eq!(bucket_of(bucket_upper(i)), i, "upper bound escapes {i}");
            v += 1 + v / 64; // dense early, sparse later
        }
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_upper(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17u64, 100, 999, 12_345, 1 << 30, u64::MAX / 3] {
            let upper = bucket_upper(bucket_of(v));
            assert!(upper >= v);
            // Bucket width is at most value/SUB for v ≥ 2·SUB.
            assert!(upper - v <= v / SUB + 1, "v={v} upper={upper}");
        }
    }

    #[test]
    fn record_and_summary() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 251.5).abs() < 1e-9);
        assert_eq!(h.quantile(0.25), 1);
        assert_eq!(h.quantile(0.5), 2);
        // 1000 lands in a log bucket: the answer is its upper bound.
        assert_eq!(h.quantile(1.0), bucket_upper(bucket_of(1000)));
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, 2);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v * 7);
            b.record(v * 13 + 5);
        }
        let merged = Histogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.max(), a.max().max(b.max()));
        let expect: std::collections::BTreeMap<u64, u64> = a
            .nonzero_buckets()
            .into_iter()
            .chain(b.nonzero_buckets())
            .fold(std::collections::BTreeMap::new(), |mut m, (u, n)| {
                *m.entry(u).or_default() += n;
                m
            });
        assert_eq!(
            merged.nonzero_buckets(),
            expect.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn record_duration_uses_nanos() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.sum(), 3_000);
    }
}
