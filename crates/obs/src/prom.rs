//! Prometheus text-exposition rendering and well-formedness validation.
//!
//! [`PromText`] accumulates metric families in the text format
//! (`# TYPE` declared once per family, histograms rendered as
//! cumulative `_bucket{le=…}` series plus `_sum`/`_count`). Histogram
//! values recorded in nanoseconds are exposed in **seconds**, the
//! Prometheus base unit for time.
//!
//! [`validate_exposition`] is the other half: a structural checker used
//! by CI and the `http_campaign --smoke` gate to prove an exposition is
//! well-formed — every line parses, every histogram family carries
//! `_sum` and `_count`, and its `le` buckets are strictly increasing,
//! cumulative, and terminated by `+Inf` with the family count.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::hist::Histogram;

const NS_PER_SEC: f64 = 1e9;

/// An accumulating Prometheus text-exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    declared: BTreeSet<String>,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

impl PromText {
    /// An empty document.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn declare(&mut self, name: &str, kind: &str, help: &str) {
        if self.declared.insert(name.to_string()) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    /// Appends one counter sample (declaring the family on first use).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.declare(name, "counter", help);
        let _ = writeln!(self.out, "{name}{} {value}", render_labels(labels));
    }

    /// Appends one gauge sample (declaring the family on first use).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.declare(name, "gauge", help);
        let _ = writeln!(self.out, "{name}{} {value}", render_labels(labels));
    }

    /// Appends one histogram series from a nanosecond-valued
    /// [`Histogram`], exposed in seconds: cumulative `_bucket{le=…}`
    /// lines over the non-empty buckets, a terminal `le="+Inf"`, then
    /// `_sum` and `_count`. Empty histograms still render (with a lone
    /// `+Inf` bucket), so the metric set is stable from startup.
    #[allow(clippy::cast_precision_loss)]
    pub fn histogram_ns(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.declare(name, "histogram", help);
        let base = render_labels(labels);
        let mut cum = 0u64;
        for (upper_ns, count) in h.nonzero_buckets() {
            cum += count;
            let le = upper_ns as f64 / NS_PER_SEC;
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            let le_text = format!("{le}");
            with_le.push(("le", &le_text));
            let _ = writeln!(self.out, "{name}_bucket{} {cum}", render_labels(&with_le));
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        let _ = writeln!(
            self.out,
            "{name}_bucket{} {}",
            render_labels(&with_inf),
            h.count()
        );
        let _ = writeln!(self.out, "{name}_sum{base} {}", h.sum() as f64 / NS_PER_SEC);
        let _ = writeln!(self.out, "{name}_count{base} {}", h.count());
    }

    /// The finished exposition text.
    #[must_use]
    pub fn render(self) -> String {
        self.out
    }
}

/// One parsed sample line: name, labels, value.
fn parse_sample(line: &str) -> Result<(String, BTreeMap<String, String>, f64), String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value on line {line:?}"))?;
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v
            .parse()
            .map_err(|_| format!("unparseable value on line {line:?}"))?,
    };
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels.to_string(), BTreeMap::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated labels on line {line:?}"))?;
            let mut labels = BTreeMap::new();
            for pair in split_label_pairs(body) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad label pair {pair:?} on line {line:?}"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value on line {line:?}"))?;
                labels.insert(k.to_string(), v.replace("\\\"", "\"").replace("\\\\", "\\"));
            }
            (name.to_string(), labels)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name on line {line:?}"));
    }
    Ok((name, labels, value))
}

/// Splits a label body on the commas *between* pairs (commas inside
/// quoted values stay put).
fn split_label_pairs(body: &str) -> Vec<String> {
    let mut pairs = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in body.chars() {
        if escaped {
            current.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                current.push(c);
                escaped = true;
            }
            '"' => {
                current.push(c);
                in_quotes = !in_quotes;
            }
            ',' if !in_quotes => {
                if !current.is_empty() {
                    pairs.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(c),
        }
    }
    if !current.is_empty() {
        pairs.push(current);
    }
    pairs
}

/// Structurally validates a text exposition (see the module docs).
///
/// # Errors
/// The first violation found, as a human-readable message.
#[allow(clippy::too_many_lines)]
pub fn validate_exposition(text: &str) -> Result<(), String> {
    // Per (family, non-le labels): the bucket series in appearance order.
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut sums: BTreeSet<(String, String)> = BTreeSet::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut histogram_families: BTreeSet<String> = BTreeSet::new();

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return Err(format!("malformed TYPE line {line:?}"));
                };
                if kind == "histogram" {
                    histogram_families.insert(name.to_string());
                }
            }
            continue;
        }
        let (name, mut labels, value) = parse_sample(line)?;
        if let Some(family) = name.strip_suffix("_bucket") {
            if histogram_families.contains(family) {
                let Some(le) = labels.remove("le") else {
                    return Err(format!("bucket without le label: {line:?}"));
                };
                let le: f64 = match le.as_str() {
                    "+Inf" => f64::INFINITY,
                    other => other
                        .parse()
                        .map_err(|_| format!("unparseable le {other:?} on {line:?}"))?,
                };
                let key = (family.to_string(), format!("{labels:?}"));
                buckets.entry(key).or_default().push((le, value));
                continue;
            }
        }
        if let Some(family) = name.strip_suffix("_sum") {
            if histogram_families.contains(family) {
                sums.insert((family.to_string(), format!("{labels:?}")));
                continue;
            }
        }
        if let Some(family) = name.strip_suffix("_count") {
            if histogram_families.contains(family) {
                counts.insert((family.to_string(), format!("{labels:?}")), value);
            }
        }
    }

    for family in &histogram_families {
        if !buckets.keys().any(|(f, _)| f == family) {
            return Err(format!("histogram {family} declared but has no buckets"));
        }
    }
    for ((family, labels), series) in &buckets {
        let mut last_le = f64::NEG_INFINITY;
        let mut last_count = f64::NEG_INFINITY;
        for &(le, count) in series {
            if le <= last_le {
                return Err(format!(
                    "histogram {family}{labels}: le buckets not strictly increasing"
                ));
            }
            if count < last_count {
                return Err(format!(
                    "histogram {family}{labels}: bucket counts not cumulative"
                ));
            }
            last_le = le;
            last_count = count;
        }
        if last_le.is_finite() {
            return Err(format!(
                "histogram {family}{labels}: bucket series does not end at +Inf"
            ));
        }
        let key = (family.clone(), labels.clone());
        if !sums.contains(&key) {
            return Err(format!("histogram {family}{labels}: missing _sum"));
        }
        let Some(&count) = counts.get(&key) else {
            return Err(format!("histogram {family}{labels}: missing _count"));
        };
        if (count - last_count).abs() > f64::EPSILON * count.max(1.0) {
            return Err(format!(
                "histogram {family}{labels}: _count {count} != +Inf bucket {last_count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_validates_a_full_document() {
        let h = Histogram::new();
        for v in [1_000u64, 2_000, 1_000_000, 50_000_000] {
            h.record(v);
        }
        let empty = Histogram::new();
        let mut doc = PromText::new();
        doc.counter(
            "http_requests_total",
            "Requests.",
            &[("route", "labels")],
            7,
        );
        doc.counter(
            "http_requests_total",
            "Requests.",
            &[("route", "metrics")],
            3,
        );
        doc.gauge("queue_depth", "Queued commands.", &[], 4.0);
        doc.histogram_ns("request_seconds", "Latency.", &[("route", "labels")], &h);
        doc.histogram_ns("request_seconds", "Latency.", &[("route", "empty")], &empty);
        let text = doc.render();
        assert_eq!(
            text.matches("# TYPE http_requests_total counter").count(),
            1,
            "family declared once:\n{text}"
        );
        assert!(text.contains("request_seconds_count{route=\"labels\"} 4"));
        assert!(text.contains("request_seconds_bucket{route=\"empty\",le=\"+Inf\"} 0"));
        validate_exposition(&text).expect("well-formed");
    }

    #[test]
    fn validator_rejects_structural_breakage() {
        for (bad, why) in [
            (
                "# TYPE h histogram\nh_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
                "missing _sum",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"0.1\"} 2\nh_sum 1\nh_count 2\n",
                "end at +Inf",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"0.2\"} 2\nh_bucket{le=\"0.1\"} 3\n\
                 h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
                "strictly increasing",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 3\n\
                 h_sum 1\nh_count 3\n",
                "cumulative",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
                "_count",
            ),
            ("oops no value\nx", "value"),
        ] {
            let err = validate_exposition(bad).expect_err(bad);
            assert!(err.contains(why), "{why:?} not in {err:?}");
        }
    }

    #[test]
    fn labels_with_commas_and_quotes_survive() {
        let text = "m{a=\"x,y\",b=\"q\\\"uote\"} 1\n";
        validate_exposition(text).expect("parses");
    }
}
