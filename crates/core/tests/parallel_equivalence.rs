//! Bit-for-bit equivalence of the data-parallel EM sweeps and the
//! geometry-cache-backed ACCOPT scoring with their sequential paths.
//!
//! Parallelism here is a pure throughput knob: the E-step only computes
//! per-bit posteriors in the parallel phase (pure in the frozen
//! parameters), and the accumulation into sufficient statistics stays
//! sequential in answer-index order with exactly the operands of the
//! single-threaded sweep. These tests pin that contract — every thread
//! count must reproduce the sequential path (and the naive oracle) bit
//! for bit, including the log-likelihood series, and geometry-backed
//! ACCOPT scoring must reproduce the re-evaluating scorer exactly.

use crowd_core::accuracy::AccuracyEstimator;
use crowd_core::model::{
    run_em, run_em_geometry_threads, run_em_naive, AnswerGeometry, EmConfig, EmParallelism,
    EmReport, OnlineModel, UpdatePolicy,
};
use crowd_core::{
    synthetic_task, AccOptAssigner, Answer, AnswerLog, AssignContext, Assigner,
    DistanceFunctionSet, Distances, InitStrategy, LabelBits, ModelParams, ReservationSet, TaskId,
    TaskSet, Worker, WorkerId, WorkerPool,
};
use crowd_geo::Point;
use proptest::prelude::*;

/// Thread counts the equivalence gate sweeps: sequential, even split,
/// uneven split, and more threads than most test logs have answers.
const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn build_world(
    n_tasks: usize,
    n_workers: usize,
    n_labels: usize,
    answers: &[(u32, u32, u16, f64)],
) -> (TaskSet, WorkerPool, AnswerLog, Vec<Answer>) {
    let tasks = TaskSet::new(
        (0..n_tasks)
            .map(|i| {
                synthetic_task(
                    format!("t{i}"),
                    Point::new((i % 5) as f64, (i / 5) as f64),
                    n_labels,
                )
            })
            .collect(),
    );
    let workers = WorkerPool::from_workers(
        (0..n_workers)
            .map(|i| Worker::at(format!("w{i}"), Point::new(i as f64 * 0.7, 2.0)))
            .collect(),
    )
    .expect("workers have locations");
    let mut log = AnswerLog::new(tasks.len(), n_workers);
    let mut stream = Vec::new();
    for &(w, t, bit_seed, dist) in answers {
        let w = w % n_workers as u32;
        let t = t % n_tasks as u32;
        if log.has_answered(WorkerId(w), TaskId(t)) {
            continue;
        }
        let bits = LabelBits::from_slice(
            &(0..n_labels)
                .map(|k| (bit_seed >> (k % 16)) & 1 == 1)
                .collect::<Vec<_>>(),
        );
        let answer = Answer {
            worker: WorkerId(w),
            task: TaskId(t),
            bits,
            distance: dist,
        };
        log.push(&tasks, answer).expect("valid answer");
        stream.push(answer);
    }
    (tasks, workers, log, stream)
}

/// Asserts two EM runs are the same run: identical parameters and an
/// identical per-iteration log-likelihood series, bit for bit.
fn assert_same_run(a: &ModelParams, ra: &EmReport, b: &ModelParams, rb: &EmReport) {
    assert_eq!(a.max_abs_diff(b), 0.0, "parameters diverged");
    assert_eq!(ra.iterations, rb.iterations);
    assert_eq!(ra.converged, rb.converged);
    assert_eq!(ra.answers_swept, rb.answers_swept);
    assert_eq!(
        ra.log_likelihood_history.len(),
        rb.log_likelihood_history.len()
    );
    for (x, y) in ra
        .log_likelihood_history
        .iter()
        .zip(&rb.log_likelihood_history)
    {
        assert_eq!(x.to_bits(), y.to_bits(), "log-likelihood series diverged");
    }
    for (x, y) in ra.max_delta_history.iter().zip(&rb.max_delta_history) {
        assert_eq!(x.to_bits(), y.to_bits(), "delta series diverged");
    }
}

/// Runs batch EM at `threads` from a fresh VoteShare init.
fn run_at(
    tasks: &TaskSet,
    log: &AnswerLog,
    config: &EmConfig,
    threads: usize,
) -> (ModelParams, EmReport) {
    let mut params = ModelParams::init(tasks, log.n_workers(), config.fset.len(), config.init, log);
    let geometry = AnswerGeometry::build(tasks, log, &config.fset);
    let report = run_em_geometry_threads(tasks, log, &geometry, config, &mut params, threads);
    (params, report)
}

#[test]
fn parallel_em_handles_degenerate_logs() {
    // Empty log, one answer, and chunk counts exceeding the answer count
    // (some chunks empty) — the boundary cases of the fixed
    // `c*n/threads` chunking.
    let cases: &[&[(u32, u32, u16, f64)]] = &[
        &[],
        &[(0, 0, 0b101, 0.3)],
        &[(0, 0, 1, 0.1), (1, 1, 2, 0.5), (2, 2, 3, 0.9)],
        &[
            (0, 0, 1, 0.1),
            (1, 1, 2, 0.2),
            (2, 2, 3, 0.3),
            (0, 1, 4, 0.4),
            (1, 2, 5, 0.5),
            (2, 0, 6, 0.6),
            (0, 2, 7, 0.7),
        ],
    ];
    let config = EmConfig {
        max_iterations: 8,
        ..EmConfig::default()
    };
    for answers in cases {
        let (tasks, _, log, _) = build_world(3, 3, 3, answers);
        let (seq, seq_report) = run_at(&tasks, &log, &config, 1);
        for threads in THREAD_COUNTS {
            let (par, par_report) = run_at(&tasks, &log, &config, threads);
            assert_same_run(&seq, &seq_report, &par, &par_report);
        }
    }
}

#[test]
fn effective_parallelism_floors_small_logs_and_caps_at_answers() {
    assert_eq!(EmParallelism::Fixed(8).effective(10), 1, "below the floor");
    assert_eq!(EmParallelism::Fixed(8).effective(0), 1);
    assert_eq!(EmParallelism::Fixed(8).effective(64), 8);
    assert_eq!(
        EmParallelism::Fixed(200).effective(100),
        100,
        "never more threads than answers"
    );
    assert_eq!(EmParallelism::Fixed(0).resolve(), 1, "zero means one");
    assert!(EmParallelism::Auto.resolve() >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Acceptance gate: data-parallel batch EM is the *same run* as the
    /// sequential path and the naive oracle for every thread count.
    #[test]
    fn parallel_em_is_bit_identical_for_every_thread_count(
        n_tasks in 1usize..6,
        n_workers in 1usize..5,
        n_labels in 1usize..5,
        answers in prop::collection::vec(
            (0u32..8, 0u32..12, 0u16..u16::MAX, 0.0f64..1.0),
            1..40,
        ),
    ) {
        let (tasks, _, log, _) = build_world(n_tasks, n_workers, n_labels, &answers);
        let config = EmConfig { max_iterations: 12, ..EmConfig::default() };
        let (seq, seq_report) = run_em(&tasks, &log, &config);
        for threads in THREAD_COUNTS {
            let (par, par_report) = run_at(&tasks, &log, &config, threads);
            assert_same_run(&seq, &seq_report, &par, &par_report);
        }
        // And both equal the straightforward per-bit oracle.
        let (naive, naive_report) = run_em_naive(&tasks, &log, &config);
        prop_assert!(seq.max_abs_diff(&naive) <= 1e-12);
        prop_assert_eq!(seq_report.iterations, naive_report.iterations);
    }

    /// The online estimator — delayed full sweeps, dirty-set sweeps, and
    /// stat rebuilds — produces bit-identical parameters under any fixed
    /// parallelism. Streams are long enough (≥ 64-answer log) to clear
    /// the small-log floor so the parallel machinery actually engages.
    #[test]
    fn online_model_is_bit_identical_across_parallelism(
        every in 10usize..30,
        full_sweep_every in 1usize..4,
        seed_answers in prop::collection::vec(
            (0u32..40, 0u32..60, 0u16..u16::MAX, 0.0f64..1.0),
            100..140,
        ),
    ) {
        let (tasks, _, full_log, stream) = build_world(30, 24, 3, &seed_answers);
        // Dedup in `build_world` can shrink the stream; only streams long
        // enough to clear the 64-answer small-log floor exercise the
        // parallel machinery, so skip the rare degenerate draw.
        if stream.len() < 80 {
            return Ok(());
        }
        let config = EmConfig { max_iterations: 6, ..EmConfig::default() };
        let policy = |parallelism| UpdatePolicy {
            full_em_every: Some(every),
            full_sweep_every,
            parallelism,
            ..UpdatePolicy::default()
        };
        let empty = AnswerLog::new(tasks.len(), full_log.n_workers());
        let mut sequential = OnlineModel::new(
            &tasks, &empty, config.clone(), policy(EmParallelism::Fixed(1)),
        );
        let mut parallel = OnlineModel::new(
            &tasks, &empty, config.clone(), policy(EmParallelism::Fixed(3)),
        );
        let mut replay = AnswerLog::new(tasks.len(), full_log.n_workers());
        for answer in &stream {
            replay.push(&tasks, *answer).expect("replaying a valid stream");
            let a = sequential.on_submit(&tasks, &replay, answer);
            let b = parallel.on_submit(&tasks, &replay, answer);
            prop_assert_eq!(a, b, "rebuild triggers diverged");
            prop_assert_eq!(
                sequential.params().max_abs_diff(parallel.params()), 0.0,
                "online parameters diverged"
            );
        }
        // The hardening full sweep too.
        sequential.full_sweep(&tasks, &replay);
        parallel.full_sweep(&tasks, &replay);
        prop_assert_eq!(sequential.params().max_abs_diff(parallel.params()), 0.0);
    }

    /// The cached-fvals accuracy estimator equals the re-evaluating one
    /// bit for bit on arbitrary distances.
    #[test]
    fn accuracy_from_cached_values_matches_reevaluation(
        n_tasks in 1usize..6,
        n_workers in 1usize..5,
        d in 0.0f64..3.0,
        answers in prop::collection::vec(
            (0u32..8, 0u32..12, 0u16..u16::MAX, 0.0f64..1.0),
            1..30,
        ),
    ) {
        let (tasks, _, log, _) = build_world(n_tasks, n_workers, 4, &answers);
        let fset = DistanceFunctionSet::paper_default();
        let params = ModelParams::init(&tasks, n_workers, fset.len(), InitStrategy::VoteShare, &log);
        let estimator = AccuracyEstimator::new(&params, &fset, &log, 0.5);
        let fvals = fset.values(d);
        for w in 0..n_workers as u32 {
            for t in tasks.ids() {
                let task = tasks.get(t).expect("id from the set");
                let direct = estimator.answer_accuracy(WorkerId(w), task, d);
                let cached = estimator.answer_accuracy_from_values(WorkerId(w), task, &fvals);
                prop_assert_eq!(direct.to_bits(), cached.to_bits());
            }
        }
    }

    /// ACCOPT with the geometry-backed memo and parallel candidate
    /// scoring picks the identical assignment for every thread count —
    /// cold memo, warm memo, and a fresh assigner all agree.
    #[test]
    fn accopt_assignment_is_identical_across_threads_and_memo_state(
        n_tasks in 2usize..10,
        n_workers in 1usize..6,
        h in 1usize..4,
        answers in prop::collection::vec(
            (0u32..8, 0u32..12, 0u16..u16::MAX, 0.0f64..1.0),
            0..24,
        ),
    ) {
        let (tasks, workers, log, _) = build_world(n_tasks, n_workers, 4, &answers);
        let fset = DistanceFunctionSet::paper_default();
        let params = ModelParams::init(&tasks, n_workers, fset.len(), InitStrategy::VoteShare, &log);
        let distances = Distances::from_tasks(&tasks);
        let reserved = ReservationSet::new();
        let ctx = |threads| AssignContext {
            tasks: &tasks,
            workers: &workers,
            log: &log,
            params: &params,
            fset: &fset,
            alpha: 0.5,
            distances: &distances,
            reserved: &reserved,
            threads,
        };
        let batch: Vec<WorkerId> = workers.ids().collect();
        let mut baseline = AccOptAssigner::new();
        let expected = baseline.assign(&ctx(1), &batch, h);
        for threads in THREAD_COUNTS {
            let mut fresh = AccOptAssigner::new();
            let cold = fresh.assign(&ctx(threads), &batch, h);
            prop_assert_eq!(&cold, &expected, "cold-memo run diverged");
            // Second round reuses the now-warm fvals memo.
            let warm = fresh.assign(&ctx(threads), &batch, h);
            prop_assert_eq!(&warm, &expected, "warm-memo run diverged");
        }
    }
}
