//! Equivalence of the optimized inference hot path with the naive
//! reference path.
//!
//! The optimized path is the answer-geometry cache + prepared posterior
//! terms ([`run_em`]) and, online, the dirty-set estimator with its
//! exact-equivalence escape hatch (`UpdatePolicy::exact`: every delayed
//! rebuild is a full sweep). Both must reproduce the naive per-bit
//! implementation within `1e-12` on arbitrary logs — in fact bit for bit,
//! since the hoisted expressions are the same arithmetic.

use crowd_core::model::{
    factored, run_em, run_em_from_naive, run_em_naive, EmConfig, InitStrategy, ModelParams,
    OnlineModel, Posterior, PosteriorInputs, SufficientStats, UpdatePolicy,
};
use crowd_core::{
    synthetic_task, Answer, AnswerLog, LabelBits, TaskId, TaskSet, Worker, WorkerId, WorkerPool,
};
use crowd_geo::Point;
use proptest::prelude::*;

fn build_world(
    n_tasks: usize,
    n_workers: usize,
    n_labels: usize,
    answers: &[(u32, u32, u16, f64)],
) -> (TaskSet, AnswerLog, Vec<Answer>) {
    let tasks = TaskSet::new(
        (0..n_tasks)
            .map(|i| {
                synthetic_task(
                    format!("t{i}"),
                    Point::new((i % 5) as f64, (i / 5) as f64),
                    n_labels,
                )
            })
            .collect(),
    );
    let _workers = WorkerPool::from_workers(
        (0..n_workers)
            .map(|i| Worker::at(format!("w{i}"), Point::new(i as f64 * 0.7, 2.0)))
            .collect(),
    )
    .expect("workers have locations");
    let mut log = AnswerLog::new(tasks.len(), n_workers);
    let mut stream = Vec::new();
    for &(w, t, bit_seed, dist) in answers {
        let w = w % n_workers as u32;
        let t = t % n_tasks as u32;
        if log.has_answered(WorkerId(w), TaskId(t)) {
            continue;
        }
        let bits = LabelBits::from_slice(
            &(0..n_labels)
                .map(|k| (bit_seed >> (k % 16)) & 1 == 1)
                .collect::<Vec<_>>(),
        );
        let answer = Answer {
            worker: WorkerId(w),
            task: TaskId(t),
            bits,
            distance: dist,
        };
        log.push(&tasks, answer).expect("valid answer");
        stream.push(answer);
    }
    (tasks, log, stream)
}

/// A line-for-line replica of the pre-optimization online estimator,
/// built from the public naive primitives: per-bit [`factored`] absorption
/// and a warm-started [`run_em_from_naive`] rebuild with a stats rebuild
/// under the final parameters.
struct NaiveMirror {
    config: EmConfig,
    every: usize,
    params: ModelParams,
    stats: SufficientStats,
    scratch: Posterior,
    absorbed: usize,
}

impl NaiveMirror {
    fn new(tasks: &TaskSet, log: &AnswerLog, config: EmConfig, every: usize) -> Self {
        let n_funcs = config.fset.len();
        Self {
            every,
            params: ModelParams::init(tasks, log.n_workers(), n_funcs, config.init, log),
            stats: SufficientStats::new(tasks, log.n_workers(), n_funcs),
            scratch: Posterior::zeros(n_funcs),
            config,
            absorbed: 0,
        }
    }

    fn accumulate(&mut self, tasks: &TaskSet, answer: &Answer) {
        let fvals = self.config.fset.values(answer.distance);
        let base = tasks.label_offset(answer.task);
        self.stats
            .add_answer(answer.task, answer.worker, answer.bits.len());
        for (k, r) in answer.bits.iter().enumerate() {
            let inputs = PosteriorInputs {
                pz1: self.params.z_slot(base + k),
                pi1: self.params.inherent(answer.worker),
                pdw: self.params.dw(answer.worker),
                pdt: self.params.dt(answer.task),
                fvals: &fvals,
                alpha: self.config.alpha,
                r,
            };
            factored(&inputs, &mut self.scratch);
            self.stats
                .add_label_bit(base + k, answer.task, answer.worker, &self.scratch);
        }
    }

    fn on_submit(&mut self, tasks: &TaskSet, log: &AnswerLog, answer: &Answer) {
        self.params.ensure_workers(answer.worker.index() + 1);
        self.stats.ensure_workers(answer.worker.index() + 1);
        self.accumulate(tasks, answer);
        self.stats.apply_task(&mut self.params, tasks, answer.task);
        self.stats.apply_worker(&mut self.params, answer.worker);
        self.absorbed += 1;
        if self.absorbed >= self.every {
            self.params.ensure_workers(log.n_workers());
            run_em_from_naive(tasks, log, &self.config, &mut self.params);
            // Rebuild the statistics under the final parameters, exactly
            // like the estimator does after a full sweep.
            self.stats.ensure_workers(log.n_workers());
            self.stats.clear();
            for a in log.answers().to_vec() {
                self.accumulate(tasks, &a);
            }
            self.absorbed = 0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance gate: the geometry-cached batch EM equals the naive
    /// batch EM within 1e-12 on random logs (it is in fact bit-identical).
    #[test]
    fn optimized_batch_em_matches_naive_within_1e12(
        n_tasks in 1usize..6,
        n_workers in 1usize..5,
        n_labels in 1usize..5,
        vote_share in any::<bool>(),
        answers in prop::collection::vec(
            (0u32..8, 0u32..12, 0u16..u16::MAX, 0.0f64..1.0),
            1..40,
        ),
    ) {
        let (tasks, log, _) = build_world(n_tasks, n_workers, n_labels, &answers);
        let config = EmConfig {
            max_iterations: 12,
            init: if vote_share { InitStrategy::VoteShare } else { InitStrategy::Uniform },
            ..EmConfig::default()
        };
        let (fast, fast_report) = run_em(&tasks, &log, &config);
        let (naive_params, naive_report) = run_em_naive(&tasks, &log, &config);
        prop_assert!(fast.max_abs_diff(&naive_params) <= 1e-12,
            "optimized batch EM drifted from the naive path");
        prop_assert_eq!(fast_report.iterations, naive_report.iterations);
        prop_assert_eq!(fast_report.converged, naive_report.converged);
    }

    /// Acceptance gate: the online estimator under the exact escape hatch
    /// (geometry cache + dirty-set machinery with `full_sweep_every = 1`)
    /// equals a naive-primitive mirror of the original estimator within
    /// 1e-12 across random streams and rebuild cadences.
    #[test]
    fn online_exact_policy_matches_naive_mirror_within_1e12(
        n_tasks in 1usize..6,
        n_workers in 1usize..5,
        n_labels in 1usize..4,
        every in 2usize..9,
        answers in prop::collection::vec(
            (0u32..8, 0u32..12, 0u16..u16::MAX, 0.0f64..1.0),
            1..40,
        ),
    ) {
        let (tasks, full_log, stream) = build_world(n_tasks, n_workers, n_labels, &answers);
        let config = EmConfig { max_iterations: 12, ..EmConfig::default() };
        let empty = AnswerLog::new(tasks.len(), full_log.n_workers());
        let mut optimized = OnlineModel::new(
            &tasks,
            &empty,
            config.clone(),
            UpdatePolicy::exact(Some(every)),
        );
        let mut mirror = NaiveMirror::new(&tasks, &empty, config, every);

        let mut replay = AnswerLog::new(tasks.len(), full_log.n_workers());
        for answer in &stream {
            replay.push(&tasks, *answer).expect("replaying a valid stream");
            optimized.on_submit(&tasks, &replay, answer);
            mirror.on_submit(&tasks, &replay, answer);
            prop_assert!(
                optimized.params().max_abs_diff(&mirror.params) <= 1e-12,
                "optimized online path drifted from the naive mirror"
            );
        }
        // The hardening full sweep stays equivalent too.
        optimized.full_sweep(&tasks, &replay);
        run_em_from_naive(&tasks, &replay, &mirror.config, &mut mirror.params);
        prop_assert!(optimized.params().max_abs_diff(&mirror.params) <= 1e-12);
    }
}
