//! Property-based tests over the core model invariants:
//! distance functions, E-step posteriors, M-step simplexes, the Lemma 1/2
//! accuracy recursion, and the equivalence of the two greedy inner loops.

use crowd_core::accuracy::{expected_accuracy_brute, GainSemantics, LabelAccuracy};
use crowd_core::model::{factored, naive, run_em, EmConfig, Posterior, PosteriorInputs};
use crowd_core::{
    synthetic_task, AccOptAssigner, Answer, AnswerLog, AssignContext, Assigner, BellShaped,
    DistanceFunctionSet, Distances, InitStrategy, InnerLoop, LabelBits, ModelParams,
    ReservationSet, TaskId, TaskSet, Worker, WorkerId, WorkerPool,
};
use crowd_geo::Point;
use proptest::prelude::*;

fn arb_prob() -> impl Strategy<Value = f64> {
    0.001f64..0.999
}

fn arb_simplex(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, n).prop_map(|mut v| {
        let sum: f64 = v.iter().sum();
        for x in &mut v {
            *x /= sum;
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bell_function_stays_in_half_one(lambda in 0.0f64..500.0, d in -0.5f64..1.5) {
        let v = BellShaped::new(lambda).eval(d);
        prop_assert!((0.5..=1.0).contains(&v));
    }

    #[test]
    fn bell_function_monotone_in_lambda_and_distance(
        l1 in 0.0f64..200.0,
        l2 in 0.0f64..200.0,
        d1 in 0.0f64..1.0,
        d2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        // Steeper decay → lower quality at any fixed distance.
        prop_assert!(BellShaped::new(hi).eval(near) <= BellShaped::new(lo).eval(near) + 1e-12);
        // Farther → lower quality for any fixed λ.
        prop_assert!(BellShaped::new(l1).eval(far) <= BellShaped::new(l1).eval(near) + 1e-12);
    }

    #[test]
    fn mixture_is_convex_combination(weights in arb_simplex(3), d in 0.0f64..1.0) {
        let fset = DistanceFunctionSet::paper_default();
        let vals = fset.values(d);
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mix = fset.mixture(&weights, d);
        prop_assert!(mix >= lo - 1e-12 && mix <= hi + 1e-12);
    }

    #[test]
    fn factored_posterior_equals_naive_enumeration(
        pz1 in arb_prob(),
        pi1 in arb_prob(),
        pdw in arb_simplex(3),
        pdt in arb_simplex(3),
        d in 0.0f64..1.0,
        alpha in 0.0f64..1.0,
        r in any::<bool>(),
    ) {
        let fset = DistanceFunctionSet::paper_default();
        let fvals = fset.values(d);
        let inputs = PosteriorInputs {
            pz1, pi1, pdw: &pdw, pdt: &pdt, fvals: &fvals, alpha, r,
        };
        let expected = naive(&inputs);
        let mut got = Posterior::zeros(3);
        factored(&inputs, &mut got);
        prop_assert!((got.z1 - expected.z1).abs() < 1e-10);
        prop_assert!((got.i1 - expected.i1).abs() < 1e-10);
        prop_assert!((got.likelihood - expected.likelihood).abs() < 1e-10);
        for j in 0..3 {
            prop_assert!((got.dw[j] - expected.dw[j]).abs() < 1e-10);
            prop_assert!((got.dt[j] - expected.dt[j]).abs() < 1e-10);
        }
    }

    #[test]
    fn posterior_marginals_are_normalised(
        pz1 in arb_prob(),
        pi1 in arb_prob(),
        pdw in arb_simplex(4),
        pdt in arb_simplex(4),
        d in 0.0f64..1.0,
        r in any::<bool>(),
    ) {
        let fset = DistanceFunctionSet::new(&[0.1, 1.0, 10.0, 100.0]);
        let fvals = fset.values(d);
        let inputs = PosteriorInputs {
            pz1, pi1, pdw: &pdw, pdt: &pdt, fvals: &fvals, alpha: 0.5, r,
        };
        let mut p = Posterior::zeros(4);
        factored(&inputs, &mut p);
        prop_assert!((0.0..=1.0).contains(&p.z1));
        prop_assert!((0.0..=1.0).contains(&p.i1));
        prop_assert!((p.dw.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((p.dt.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.likelihood > 0.0 && p.likelihood <= 1.0 + 1e-12);
    }

    #[test]
    fn lemma2_recursion_equals_brute_force(
        start in arb_prob(),
        ps in prop::collection::vec(0.5f64..1.0, 0..6),
        n0 in 0usize..5,
    ) {
        let mut pair = LabelAccuracy { acc1: start, acc0: start };
        for (j, &p) in ps.iter().enumerate() {
            pair = pair.step(p, n0 + j);
        }
        let brute = expected_accuracy_brute(start, &ps, n0);
        prop_assert!((pair.acc1 - brute).abs() < 1e-9, "{} vs {}", pair.acc1, brute);
    }

    #[test]
    fn lemma1_order_invariance(
        pz1 in arb_prob(),
        p1 in 0.5f64..1.0,
        p2 in 0.5f64..1.0,
        n0 in 0usize..6,
    ) {
        let pair = LabelAccuracy::from_prior(pz1);
        let ab = pair.step(p1, n0).step(p2, n0 + 1);
        let ba = pair.step(p2, n0).step(p1, n0 + 1);
        prop_assert!((ab.acc1 - ba.acc1).abs() < 1e-12);
        prop_assert!((ab.acc0 - ba.acc0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_tracks_stay_probabilities(
        pz1 in arb_prob(),
        ps in prop::collection::vec(0.5f64..1.0, 1..8),
        n0 in 0usize..4,
    ) {
        let mut pair = LabelAccuracy::from_prior(pz1);
        for (j, &p) in ps.iter().enumerate() {
            pair = pair.step(p, n0 + j);
            prop_assert!((0.0..=1.0).contains(&pair.acc1));
            prop_assert!((0.0..=1.0).contains(&pair.acc0));
        }
    }

    #[test]
    fn informative_workers_never_hurt_uncertain_labels(p in 0.5f64..1.0, n0 in 0usize..5) {
        // On a maximally uncertain label, any worker with p ≥ 0.5 has
        // non-negative expected improvement.
        let pair = LabelAccuracy::from_prior(0.5);
        let after = pair.step(p, n0);
        prop_assert!(after.improvement_over_prior(0.5) >= -1e-12);
    }
}

/// Builds a random-but-valid world for assignment equivalence tests.
fn build_world(
    n_tasks: usize,
    n_workers: usize,
    n_labels: usize,
    answers: &[(u32, u32, u16, f64)],
) -> (TaskSet, WorkerPool, AnswerLog, ModelParams, Distances) {
    let tasks = TaskSet::new(
        (0..n_tasks)
            .map(|i| {
                synthetic_task(
                    format!("t{i}"),
                    Point::new((i % 5) as f64, (i / 5) as f64),
                    n_labels,
                )
            })
            .collect(),
    );
    let workers = WorkerPool::from_workers(
        (0..n_workers)
            .map(|i| Worker::at(format!("w{i}"), Point::new(i as f64 * 0.7, 2.0)))
            .collect(),
    )
    .expect("workers have locations");
    let mut log = AnswerLog::new(tasks.len(), workers.len());
    for &(w, t, bit_seed, dist) in answers {
        let w = w % n_workers as u32;
        let t = t % n_tasks as u32;
        if log.has_answered(WorkerId(w), TaskId(t)) {
            continue;
        }
        let bits = LabelBits::from_slice(
            &(0..n_labels)
                .map(|k| (bit_seed >> (k % 16)) & 1 == 1)
                .collect::<Vec<_>>(),
        );
        log.push(
            &tasks,
            Answer {
                worker: WorkerId(w),
                task: TaskId(t),
                bits,
                distance: dist,
            },
        )
        .expect("validated above");
    }
    let params = ModelParams::init(&tasks, n_workers, 3, InitStrategy::VoteShare, &log);
    let distances = Distances::from_tasks(&tasks);
    (tasks, workers, log, params, distances)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn greedy_scan_and_heap_always_agree(
        n_tasks in 2usize..10,
        n_workers in 1usize..6,
        h in 1usize..4,
        answers in prop::collection::vec(
            (0u32..8, 0u32..12, 0u16..u16::MAX, 0.0f64..1.0),
            0..24,
        ),
    ) {
        let (tasks, workers, log, params, distances) =
            build_world(n_tasks, n_workers, 4, &answers);
        let fset = DistanceFunctionSet::paper_default();
        let reserved = ReservationSet::new();
        let ctx = AssignContext {
            tasks: &tasks,
            workers: &workers,
            log: &log,
            params: &params,
            fset: &fset,
            alpha: 0.5,
            distances: &distances,
            reserved: &reserved,
            threads: 1,
        };
        let batch: Vec<WorkerId> = workers.ids().collect();
        for gain in [GainSemantics::Marginal, GainSemantics::TotalSet] {
            let mut scan = AccOptAssigner {
                gain, inner: InnerLoop::Scan, z_shrinkage: 1.0, ..AccOptAssigner::default()
            };
            let mut heap = AccOptAssigner {
                gain, inner: InnerLoop::LazyHeap, z_shrinkage: 1.0, ..AccOptAssigner::default()
            };
            let a = scan.assign(&ctx, &batch, h);
            let b = heap.assign(&ctx, &batch, h);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn assignments_respect_history_and_arity(
        n_tasks in 2usize..10,
        n_workers in 1usize..5,
        h in 1usize..4,
        answers in prop::collection::vec(
            (0u32..8, 0u32..12, 0u16..u16::MAX, 0.0f64..1.0),
            0..20,
        ),
    ) {
        let (tasks, workers, log, params, distances) =
            build_world(n_tasks, n_workers, 4, &answers);
        let fset = DistanceFunctionSet::paper_default();
        let reserved = ReservationSet::new();
        let ctx = AssignContext {
            tasks: &tasks,
            workers: &workers,
            log: &log,
            params: &params,
            fset: &fset,
            alpha: 0.5,
            distances: &distances,
            reserved: &reserved,
            threads: 1,
        };
        let batch: Vec<WorkerId> = workers.ids().collect();
        let mut assigner = AccOptAssigner::new();
        let assignment = assigner.assign(&ctx, &batch, h);
        for (w, ts) in assignment.per_worker() {
            // At most h tasks, all distinct, none already answered.
            prop_assert!(ts.len() <= h);
            let mut sorted = ts.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), ts.len());
            for &t in ts {
                prop_assert!(!log.has_answered(*w, t));
            }
            // A worker only gets fewer than h tasks when they exhausted
            // the task set.
            let unanswered = tasks.ids().filter(|&t| !log.has_answered(*w, t)).count();
            prop_assert_eq!(ts.len(), h.min(unanswered));
        }
    }

    #[test]
    fn em_parameters_remain_valid_on_arbitrary_logs(
        n_tasks in 1usize..6,
        n_workers in 1usize..5,
        answers in prop::collection::vec(
            (0u32..8, 0u32..12, 0u16..u16::MAX, 0.0f64..1.0),
            1..30,
        ),
    ) {
        let (tasks, _workers, log, _params, _d) = build_world(n_tasks, n_workers, 5, &answers);
        let config = EmConfig { max_iterations: 15, ..EmConfig::default() };
        let (params, report) = run_em(&tasks, &log, &config);
        prop_assert!(params.check_invariants());
        prop_assert_eq!(report.iterations, report.max_delta_history.len());
        // Likelihood history is finite.
        prop_assert!(report.log_likelihood_history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn answer_log_prefix_is_consistent(
        n_tasks in 1usize..6,
        n_workers in 1usize..5,
        answers in prop::collection::vec(
            (0u32..8, 0u32..12, 0u16..u16::MAX, 0.0f64..1.0),
            0..30,
        ),
        cut in 0usize..40,
    ) {
        let (tasks, _w, log, _p, _d) = build_world(n_tasks, n_workers, 3, &answers);
        let prefix = log.prefix(cut);
        prop_assert_eq!(prefix.len(), cut.min(log.len()));
        // Per-task counts of the prefix never exceed the full counts.
        for t in tasks.ids() {
            prop_assert!(prefix.n_answers_on(t) <= log.n_answers_on(t));
        }
        // The prefix preserves stream order.
        for (a, b) in prefix.answers().iter().zip(log.answers()) {
            prop_assert_eq!(a.worker, b.worker);
            prop_assert_eq!(a.task, b.task);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn posterior_is_normalised_for_any_function_set_size(
        lambdas in prop::collection::vec(0.05f64..150.0, 2..8),
        raw_w in prop::collection::vec(0.01f64..1.0, 8),
        raw_t in prop::collection::vec(0.01f64..1.0, 8),
        pz1 in arb_prob(),
        pi1 in arb_prob(),
        d in 0.0f64..1.0,
        alpha in 0.0f64..1.0,
        r in any::<bool>(),
    ) {
        // Existing normalisation tests pin |F| to 3 or 4; this one sweeps
        // the set size. Truncate the fixed-size weight draws to |F| and
        // renormalise onto the simplex.
        let n = lambdas.len();
        let simplex = |raw: &[f64]| {
            let mut v = raw[..n].to_vec();
            let sum: f64 = v.iter().sum();
            for x in &mut v {
                *x /= sum;
            }
            v
        };
        let (pdw, pdt) = (simplex(&raw_w), simplex(&raw_t));
        let fset = DistanceFunctionSet::new(&lambdas);
        let fvals = fset.values(d);
        let inputs = PosteriorInputs {
            pz1, pi1, pdw: &pdw, pdt: &pdt, fvals: &fvals, alpha, r,
        };
        let mut p = Posterior::zeros(n);
        factored(&inputs, &mut p);
        prop_assert!((0.0..=1.0).contains(&p.z1));
        prop_assert!((0.0..=1.0).contains(&p.i1));
        prop_assert!((p.dw.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((p.dt.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn posterior_satisfies_total_probability(
        pz1 in arb_prob(),
        pi1 in arb_prob(),
        pdw in arb_simplex(3),
        pdt in arb_simplex(3),
        d in 0.0f64..1.0,
        alpha in 0.0f64..1.0,
    ) {
        // Law of total probability over the observed bit: the answer
        // marginals P(r=1) and P(r=0) must sum to 1, and mixing the two
        // conditional posteriors by them must reconstruct every prior
        // exactly. This subsumes "posteriors sum to 1" — any normalisation
        // leak in the E-step breaks the reconstruction.
        let fset = DistanceFunctionSet::paper_default();
        let fvals = fset.values(d);
        let mut pos = Posterior::zeros(3);
        let mut neg = Posterior::zeros(3);
        factored(
            &PosteriorInputs { pz1, pi1, pdw: &pdw, pdt: &pdt, fvals: &fvals, alpha, r: true },
            &mut pos,
        );
        factored(
            &PosteriorInputs { pz1, pi1, pdw: &pdw, pdt: &pdt, fvals: &fvals, alpha, r: false },
            &mut neg,
        );
        let (lp, ln) = (pos.likelihood, neg.likelihood);
        prop_assert!((lp + ln - 1.0).abs() < 1e-10, "P(r=1)+P(r=0) = {}", lp + ln);
        prop_assert!((lp * pos.z1 + ln * neg.z1 - pz1).abs() < 1e-10);
        prop_assert!((lp * pos.i1 + ln * neg.i1 - pi1).abs() < 1e-10);
        for j in 0..3 {
            prop_assert!((lp * pos.dw[j] + ln * neg.dw[j] - pdw[j]).abs() < 1e-10);
            prop_assert!((lp * pos.dt[j] + ln * neg.dt[j] - pdt[j]).abs() < 1e-10);
        }
    }
}
