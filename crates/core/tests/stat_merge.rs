//! The merge algebra of the worker-statistic gossip layer, proven on
//! random inputs:
//!
//! 1. **Commutativity** — absorbing the same set of deltas in any order
//!    yields the same [`PeerStats`] table and bit-identical aggregates;
//! 2. **Associativity** — `(a ⊔ b) ⊔ c = a ⊔ (b ⊔ c)` for table merges;
//! 3. **Idempotence** — re-delivering any delta (or re-merging a table)
//!    changes nothing;
//! 4. **Fold-then-EM ≡ pooled EM** — a distributed EM where each of `k`
//!    shards sweeps only its own answers but pools worker statistics
//!    through the gossip deltas every iteration reproduces a single
//!    framework's EM over the union of the answers within `1e-9` (the
//!    only divergence is floating-point summation order).
//!
//! Properties 1–3 are what make the exchange layer trivially correct:
//! deltas may be duplicated, reordered or redelivered without corrupting
//! the pooled estimate. Property 4 is the reason gossip recovers the
//! unsharded system's accuracy: the pooled worker M-step is the *same
//! arithmetic* a single instance holding all answers would perform.

use crowd_core::model::{
    factored, run_em, EmConfig, InitStrategy, ModelParams, PeerStats, Posterior, PosteriorInputs,
    SufficientStats, WorkerStatDelta,
};
use crowd_core::{synthetic_task, Answer, AnswerLog, LabelBits, TaskId, TaskSet, WorkerId};
use crowd_geo::Point;
use proptest::prelude::*;
use proptest::TestCaseError;

const N_FUNCS: usize = 3;

/// A deterministic payload for `(source, version)` — the gossip protocol
/// guarantees one payload per (source, version) pair, and the generators
/// below honour that by deriving the payload from the stamp.
fn delta_for(source: u64, version: u64) -> WorkerStatDelta {
    let n_workers = 3 + (source as usize % 3);
    let mut i_sum = Vec::with_capacity(n_workers);
    let mut worker_bits = Vec::with_capacity(n_workers);
    let mut dw_sum = Vec::with_capacity(n_workers * N_FUNCS);
    for w in 0..n_workers as u64 {
        let x = source
            .wrapping_mul(31)
            .wrapping_add(version.wrapping_mul(7))
            .wrapping_add(w);
        let bits = (x % 5) as u32 * u32::try_from(version).unwrap_or(1);
        worker_bits.push(bits);
        i_sum.push(f64::from(bits) * 0.25 + (x % 7) as f64 * 0.125);
        for j in 0..N_FUNCS as u64 {
            dw_sum.push((x.wrapping_add(j * 13) % 11) as f64 * 0.0625);
        }
    }
    WorkerStatDelta {
        source,
        version,
        n_funcs: N_FUNCS,
        i_sum,
        worker_bits,
        dw_sum,
    }
}

fn fold_all(stamps: &[(u64, u64)]) -> PeerStats {
    let mut peers = PeerStats::new();
    for &(s, v) in stamps {
        peers.absorb(&delta_for(s, v));
    }
    peers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Law 1: delivery order is irrelevant — forward, reverse and rotated
    /// delivery of the same deltas produce identical tables (and, because
    /// the aggregate is recomputed in source order, bit-identical pooled
    /// sums).
    #[test]
    fn absorb_is_commutative(
        stamps in prop::collection::vec((0u64..6, 1u64..8), 0..16),
        rotation in 0usize..16,
    ) {
        let forward = fold_all(&stamps);
        let mut reversed_stamps = stamps.clone();
        reversed_stamps.reverse();
        let reversed = fold_all(&reversed_stamps);
        prop_assert_eq!(&forward, &reversed);
        if !stamps.is_empty() {
            let mut rotated_stamps = stamps.clone();
            rotated_stamps.rotate_left(rotation % stamps.len());
            prop_assert_eq!(&forward, &fold_all(&rotated_stamps));
        }
        for w in 0..forward.n_workers() {
            prop_assert_eq!(forward.i_sum(w).to_bits(), reversed.i_sum(w).to_bits());
            prop_assert_eq!(forward.bits(w), reversed.bits(w));
        }
    }

    /// Law 2: table merges associate — `(a ⊔ b) ⊔ c = a ⊔ (b ⊔ c)` —
    /// and folding deltas one by one equals merging whole tables.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec((0u64..6, 1u64..8), 0..8),
        b in prop::collection::vec((0u64..6, 1u64..8), 0..8),
        c in prop::collection::vec((0u64..6, 1u64..8), 0..8),
    ) {
        let (ta, tb, tc) = (fold_all(&a), fold_all(&b), fold_all(&c));
        let mut left = ta.clone();
        left.merge(&tb);
        left.merge(&tc);
        let mut right_tail = tb.clone();
        right_tail.merge(&tc);
        let mut right = ta.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        // Element-wise folding is the same join.
        let all: Vec<(u64, u64)> =
            a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &fold_all(&all));
    }

    /// Law 3: re-delivery is a no-op — absorbing every delta twice (and
    /// self-merging the final table) changes nothing, and each duplicate
    /// absorb reports `false`.
    #[test]
    fn redelivery_is_idempotent(
        stamps in prop::collection::vec((0u64..6, 1u64..8), 0..16),
    ) {
        let once = fold_all(&stamps);
        let mut twice = PeerStats::new();
        for &(s, v) in &stamps {
            twice.absorb(&delta_for(s, v));
        }
        for &(s, v) in &stamps {
            // Every stamp is now ≤ the newest held version for its source,
            // so re-delivery — including of the newest delta itself — is a
            // no-op.
            prop_assert!(
                !twice.absorb(&delta_for(s, v)),
                "duplicate delivery changed the table"
            );
        }
        prop_assert_eq!(&once, &twice);
        let mut self_merged = once.clone();
        prop_assert!(!self_merged.merge(&once));
        prop_assert_eq!(&self_merged, &once);
    }
}

// ─── Fold-then-EM ≡ pooled EM ───────────────────────────────────────────

/// Builds a world and a valid answer stream from raw proptest tuples.
fn build_world(
    n_tasks: usize,
    n_workers: usize,
    raw: &[(u32, u32, u16, f64)],
) -> (TaskSet, AnswerLog) {
    let tasks = TaskSet::new(
        (0..n_tasks)
            .map(|i| {
                synthetic_task(
                    format!("t{i}"),
                    Point::new((i % 5) as f64, (i / 5) as f64),
                    3,
                )
            })
            .collect(),
    );
    let mut log = AnswerLog::new(n_tasks, n_workers);
    for &(w, t, bit_seed, dist) in raw {
        let answer = Answer {
            worker: WorkerId(w % n_workers as u32),
            task: TaskId(t % n_tasks as u32),
            bits: LabelBits::from_slice(
                &(0..3).map(|k| (bit_seed >> k) & 1 == 1).collect::<Vec<_>>(),
            ),
            distance: dist,
        };
        // Duplicates are skipped, mirroring the framework's validation.
        let _ = log.push(&tasks, answer);
    }
    (tasks, log)
}

/// One shard of the distributed EM: its own slice of the answer log plus
/// its own parameter copy and accumulators.
struct DistShard {
    answers: Vec<Answer>,
    params: ModelParams,
    stats: SufficientStats,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Law 4: splitting a log across `k` shards by task, sweeping each
    /// shard's answers locally and pooling the worker statistics through
    /// the gossip deltas every iteration reproduces the single-framework
    /// EM over the pooled log within 1e-9 — task parameters on the owning
    /// shard, worker parameters everywhere.
    #[test]
    fn fold_then_em_matches_pooled_single_framework_em(
        n_tasks in 2usize..7,
        n_workers in 2usize..6,
        k in 2usize..5,
        iterations in 3usize..12,
        raw in prop::collection::vec(
            (0u32..8, 0u32..12, 0u16..u16::MAX, 0.0f64..1.0),
            4..60,
        ),
    ) {
        let (tasks, log) = build_world(n_tasks, n_workers, &raw);
        let config = EmConfig {
            // A negative tolerance never converges early: both sides run
            // exactly `iterations` iterations so they stay comparable.
            tolerance: -1.0,
            max_iterations: iterations,
            init: InitStrategy::Uniform,
            ..EmConfig::default()
        };
        let n_funcs = config.fset.len();

        // ── The pooled reference: one framework over the union ──────────
        let (pooled, _) = run_em(&tasks, &log, &config);

        // ── The distributed run: shards own disjoint task ranges ────────
        let owner = |t: TaskId| t.index() % k;
        let mut shards: Vec<DistShard> = (0..k)
            .map(|_| DistShard {
                answers: Vec::new(),
                params: ModelParams::init(
                    &tasks, n_workers, n_funcs, InitStrategy::Uniform, &log,
                ),
                stats: SufficientStats::new(&tasks, n_workers, n_funcs),
            })
            .collect();
        for answer in log.answers() {
            shards[owner(answer.task)].answers.push(*answer);
        }
        // A zeroed accumulator: the pooled worker M-step reads *only* the
        // delta table, so every shard computes bit-identical worker
        // parameters from the identical set of deltas.
        let zero = SufficientStats::new(&tasks, n_workers, n_funcs);
        let mut scratch = Posterior::zeros(n_funcs);

        for iter in 0..iterations {
            // Local E-steps under each shard's current parameters.
            for shard in &mut shards {
                shard.stats.clear();
                for answer in &shard.answers {
                    let fvals = config.fset.values(answer.distance);
                    let base = tasks.label_offset(answer.task);
                    shard
                        .stats
                        .add_answer(answer.task, answer.worker, answer.bits.len());
                    for (kk, r) in answer.bits.iter().enumerate() {
                        let inputs = PosteriorInputs {
                            pz1: shard.params.z_slot(base + kk),
                            pi1: shard.params.inherent(answer.worker),
                            pdw: shard.params.dw(answer.worker),
                            pdt: shard.params.dt(answer.task),
                            fvals: &fvals,
                            alpha: config.alpha,
                            r,
                        };
                        factored(&inputs, &mut scratch);
                        shard.stats.add_label_bit(
                            base + kk,
                            answer.task,
                            answer.worker,
                            &scratch,
                        );
                    }
                }
            }

            // Gossip: every shard publishes, every shard folds everything
            // (rotated delivery order + a re-delivery, exercising the
            // algebra in situ).
            let deltas: Vec<WorkerStatDelta> = shards
                .iter()
                .enumerate()
                .map(|(s, shard)| shard.stats.worker_delta(s as u64, iter as u64 + 1))
                .collect();
            let pools: Vec<PeerStats> = (0..k)
                .map(|s| {
                    let mut pool = PeerStats::new();
                    for i in 0..k {
                        prop_assert!(pool.absorb(&deltas[(s + i) % k]));
                    }
                    prop_assert!(
                        !pool.absorb(&deltas[s]),
                        "re-delivered delta must be a no-op"
                    );
                    Ok(pool)
                })
                .collect::<Result<_, TestCaseError>>()?;
            prop_assert!(pools.windows(2).all(|w| w[0] == w[1]));

            // M-step: tasks from local accumulators (each task's answers
            // are complete on the owning shard), workers from the pooled
            // deltas alone.
            for (s, shard) in shards.iter_mut().enumerate() {
                for t in tasks.ids() {
                    shard.stats.apply_task(&mut shard.params, &tasks, t);
                }
                for w in 0..n_workers {
                    zero.apply_worker_pooled(
                        &mut shard.params,
                        WorkerId::from_index(w),
                        &pools[s],
                    );
                }
            }
        }

        // Task-side parameters match the pooled run on the owning shard…
        for t in tasks.ids() {
            let shard = &shards[owner(t)];
            let base = tasks.label_offset(t);
            for kk in 0..tasks.n_labels(t) {
                prop_assert!(
                    (shard.params.z_slot(base + kk) - pooled.z_slot(base + kk)).abs() <= 1e-9,
                    "z[{}] drifted: {} vs {}",
                    base + kk,
                    shard.params.z_slot(base + kk),
                    pooled.z_slot(base + kk)
                );
            }
            for (j, (&d, &p)) in shard.params.dt(t).iter().zip(pooled.dt(t)).enumerate() {
                prop_assert!((d - p).abs() <= 1e-9, "dt[{t:?}][{j}] drifted: {d} vs {p}");
            }
        }
        // …and worker-side parameters match on every shard.
        for shard in &shards {
            for w in 0..n_workers {
                let id = WorkerId::from_index(w);
                prop_assert!(
                    (shard.params.inherent(id) - pooled.inherent(id)).abs() <= 1e-9,
                    "P(i_{w}) drifted: {} vs {}",
                    shard.params.inherent(id),
                    pooled.inherent(id)
                );
                for (j, (&d, &p)) in shard.params.dw(id).iter().zip(pooled.dw(id)).enumerate() {
                    prop_assert!((d - p).abs() <= 1e-9, "dw[{w}][{j}] drifted: {d} vs {p}");
                }
            }
        }
    }
}
