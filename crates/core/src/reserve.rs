//! Issued-but-unanswered assignment reservations.
//!
//! [`Framework::request`](crate::Framework::request) charges the budget the
//! moment it issues a (worker, task) pair, but the answer arrives later —
//! over a network front-end, *much* later, and through a fire-and-forget
//! ingestion path the requester never waits on. Between issue and answer
//! the pair is *in flight*: it must not be issued again (the duplicate
//! would burn a second budget unit and its answer would be rejected), yet
//! it is not in the answer log, which is all assigners used to consult.
//!
//! [`ReservationSet`] closes that window. The framework reserves every
//! issued pair, threads the set through
//! [`AssignContext`](crate::AssignContext) so assigners skip in-flight
//! pairs exactly like answered ones, and releases the reservation when the
//! answer is applied. Reservations are *not* persisted: a snapshot restore
//! starts with an empty set, deliberately re-opening pairs whose clients
//! vanished with the process that issued them.

use std::collections::HashSet;

use crate::{TaskId, WorkerId};

/// The set of (worker, task) pairs that have been issued by
/// [`Framework::request`](crate::Framework::request) but whose answers have
/// not yet been applied.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReservationSet {
    pairs: HashSet<(WorkerId, TaskId)>,
}

impl ReservationSet {
    /// An empty reservation set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `(worker, task)` is currently in flight.
    #[must_use]
    pub fn contains(&self, worker: WorkerId, task: TaskId) -> bool {
        self.pairs.contains(&(worker, task))
    }

    /// Reserves `(worker, task)`. Returns `false` if it was already
    /// reserved (the caller is about to double-issue).
    pub fn reserve(&mut self, worker: WorkerId, task: TaskId) -> bool {
        self.pairs.insert((worker, task))
    }

    /// Releases `(worker, task)`. Returns `false` if it was not reserved
    /// (e.g. an unsolicited answer, or a pair re-opened by a restore).
    pub fn release(&mut self, worker: WorkerId, task: TaskId) -> bool {
        self.pairs.remove(&(worker, task))
    }

    /// Drops every reservation (operator escape hatch for abandoned
    /// clients; the budget they consumed stays spent).
    pub fn clear(&mut self) {
        self.pairs.clear();
    }

    /// Number of in-flight pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the in-flight pairs (arbitrary order — the set is
    /// never part of deterministic model state).
    pub fn iter(&self) -> impl Iterator<Item = (WorkerId, TaskId)> + '_ {
        self.pairs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_roundtrip() {
        let mut r = ReservationSet::new();
        assert!(r.is_empty());
        assert!(r.reserve(WorkerId(1), TaskId(2)));
        assert!(!r.reserve(WorkerId(1), TaskId(2)), "double reserve");
        assert!(r.contains(WorkerId(1), TaskId(2)));
        assert!(!r.contains(WorkerId(2), TaskId(1)), "pair order matters");
        assert_eq!(r.len(), 1);
        assert!(r.release(WorkerId(1), TaskId(2)));
        assert!(!r.release(WorkerId(1), TaskId(2)), "double release");
        assert!(r.is_empty());
    }

    #[test]
    fn clear_drops_everything() {
        let mut r = ReservationSet::new();
        r.reserve(WorkerId(0), TaskId(0));
        r.reserve(WorkerId(0), TaskId(1));
        assert_eq!(r.iter().count(), 2);
        r.clear();
        assert!(r.is_empty());
    }
}
