//! Compact per-task label answer vectors.

use std::fmt;

/// A fixed-length vector of binary label verdicts, bit-packed into a `u64`.
///
/// Each POI labelling task presents `|L_t|` candidate labels; a worker's
/// answer (and the ground truth, and the inferred result) is one bit per
/// label — `1` = "this label applies to the POI". The paper uses
/// `|L_t| = 10`; we support up to [`LabelBits::MAX_LABELS`].
///
/// Bit `k` corresponds to label `l_{t,k}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LabelBits {
    bits: u64,
    len: u8,
}

impl LabelBits {
    /// Maximum number of labels a single task may carry.
    pub const MAX_LABELS: usize = 64;

    /// An all-zero ("no label applies") vector of length `len`.
    ///
    /// # Panics
    /// Panics if `len > MAX_LABELS`.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        assert!(
            len <= Self::MAX_LABELS,
            "at most {} labels per task, got {len}",
            Self::MAX_LABELS
        );
        Self {
            bits: 0,
            len: len as u8,
        }
    }

    /// Builds a vector from a slice of booleans.
    ///
    /// # Panics
    /// Panics if the slice is longer than `MAX_LABELS`.
    #[must_use]
    pub fn from_slice(values: &[bool]) -> Self {
        let mut out = Self::zeros(values.len());
        for (k, &v) in values.iter().enumerate() {
            out.set(k, v);
        }
        out
    }

    /// Builds a vector of length `len` with the listed positions set.
    ///
    /// # Panics
    /// Panics if any position is out of range.
    #[must_use]
    pub fn from_positions(len: usize, positions: &[usize]) -> Self {
        let mut out = Self::zeros(len);
        for &k in positions {
            out.set(k, true);
        }
        out
    }

    /// Number of labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when the task carries no labels (degenerate but permitted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The verdict for label `k`.
    ///
    /// # Panics
    /// Panics if `k >= len()`.
    #[must_use]
    pub fn get(&self, k: usize) -> bool {
        assert!(
            k < self.len(),
            "label index {k} out of range 0..{}",
            self.len()
        );
        (self.bits >> k) & 1 == 1
    }

    /// Sets the verdict for label `k`.
    ///
    /// # Panics
    /// Panics if `k >= len()`.
    pub fn set(&mut self, k: usize, value: bool) {
        assert!(
            k < self.len(),
            "label index {k} out of range 0..{}",
            self.len()
        );
        if value {
            self.bits |= 1 << k;
        } else {
            self.bits &= !(1 << k);
        }
    }

    /// Number of positive verdicts.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Number of positions where `self` and `other` agree.
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[must_use]
    pub fn agreement(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "cannot compare different label counts");
        let mask = if self.len == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        };
        (!(self.bits ^ other.bits) & mask).count_ones() as usize
    }

    /// Iterates over the verdicts in label order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len()).map(move |k| (self.bits >> k) & 1 == 1)
    }

    /// Collects into a `Vec<bool>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<bool> {
        self.iter().collect()
    }
}

impl fmt::Display for LabelBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, b) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", u8::from(b))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_ones() {
        let b = LabelBits::zeros(10);
        assert_eq!(b.len(), 10);
        assert_eq!(b.count_ones(), 0);
        assert!(b.iter().all(|v| !v));
    }

    #[test]
    fn set_get_round_trip() {
        let mut b = LabelBits::zeros(10);
        b.set(0, true);
        b.set(9, true);
        b.set(0, false);
        assert!(!b.get(0));
        assert!(b.get(9));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn from_slice_and_to_vec_round_trip() {
        let v = vec![true, false, true, true, false];
        let b = LabelBits::from_slice(&v);
        assert_eq!(b.to_vec(), v);
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn from_positions_sets_exactly_those() {
        let b = LabelBits::from_positions(10, &[1, 2, 5]);
        assert_eq!(b.count_ones(), 3);
        assert!(b.get(1) && b.get(2) && b.get(5));
        assert!(!b.get(0) && !b.get(9));
    }

    #[test]
    fn agreement_counts_matching_positions() {
        let a = LabelBits::from_slice(&[true, true, false, false]);
        let b = LabelBits::from_slice(&[true, false, false, true]);
        // positions 0 and 2 agree.
        assert_eq!(a.agreement(&b), 2);
        assert_eq!(a.agreement(&a), 4);
    }

    #[test]
    fn agreement_full_width_mask() {
        let a = LabelBits::zeros(64);
        let mut b = LabelBits::zeros(64);
        b.set(63, true);
        assert_eq!(a.agreement(&b), 63);
    }

    #[test]
    fn empty_vector_is_permitted() {
        let b = LabelBits::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.agreement(&b), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 labels")]
    fn too_many_labels_rejected() {
        let _ = LabelBits::zeros(65);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = LabelBits::zeros(3).get(3);
    }

    #[test]
    #[should_panic(expected = "different label counts")]
    fn agreement_length_mismatch_panics() {
        let _ = LabelBits::zeros(3).agreement(&LabelBits::zeros(4));
    }

    #[test]
    fn display_matches_paper_notation() {
        let b = LabelBits::from_slice(&[true, true, false]);
        assert_eq!(b.to_string(), "[1,1,0]");
    }
}
