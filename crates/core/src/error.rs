//! Error type for the core library.

use std::fmt;

use crate::{TaskId, WorkerId};

/// Errors surfaced by the core inference / assignment API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A worker submitted a second answer for a task they already answered.
    /// The paper's model assumes at most one answer per (worker, task) pair.
    DuplicateAnswer {
        /// Offending worker.
        worker: WorkerId,
        /// Task already answered by the worker.
        task: TaskId,
    },
    /// A task id outside the task set was referenced.
    UnknownTask(TaskId),
    /// A worker id outside the worker pool was referenced.
    UnknownWorker(WorkerId),
    /// An answer's label count does not match the task's label count.
    LabelCountMismatch {
        /// The task whose labels were answered.
        task: TaskId,
        /// Number of labels the task carries.
        expected: usize,
        /// Number of labels in the submitted answer.
        got: usize,
    },
    /// The campaign budget is exhausted; no further assignments are allowed.
    BudgetExhausted,
    /// A worker was registered without any location; the model requires at
    /// least one to compute `d(w, t)`.
    WorkerWithoutLocation(WorkerId),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateAnswer { worker, task } => {
                write!(f, "worker {worker} already answered task {task}")
            }
            Self::UnknownTask(t) => write!(f, "unknown task {t}"),
            Self::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            Self::LabelCountMismatch {
                task,
                expected,
                got,
            } => write!(
                f,
                "task {task} has {expected} labels but the answer carries {got}"
            ),
            Self::BudgetExhausted => write!(f, "assignment budget exhausted"),
            Self::WorkerWithoutLocation(w) => {
                write!(f, "worker {w} has no location; cannot compute d(w, t)")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience result alias for core operations.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::DuplicateAnswer {
            worker: WorkerId(3),
            task: TaskId(8),
        };
        assert_eq!(e.to_string(), "worker w3 already answered task t8");
        assert_eq!(
            CoreError::LabelCountMismatch {
                task: TaskId(1),
                expected: 10,
                got: 9
            }
            .to_string(),
            "task t1 has 10 labels but the answer carries 9"
        );
        assert!(CoreError::BudgetExhausted.to_string().contains("budget"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<CoreError>();
    }
}
