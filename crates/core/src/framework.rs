//! The POI-Labelling Framework (Figure 1 of the paper): the inference model
//! and the task assigner working alternately under a budget.
//!
//! Campaign loop:
//! 1. a batch of workers requests tasks → [`Framework::request`] consults a
//!    pluggable [`Assigner`] and charges the budget;
//! 2. answers come back → [`Framework::submit`] logs them and lets the
//!    online model absorb them (incremental EM, delayed full EM);
//! 3. at any point [`Framework::inference`] hardens the current `P(z)` into
//!    label decisions.

use crate::assign::{AssignContext, Assigner, Assignment};
use crate::model::{
    EmConfig, InferenceResult, ModelParams, OnlineModel, PeerStats, UpdatePolicy, WorkerStatDelta,
};
use crate::obs::RecorderHandle;
use crate::{
    AnswerLog, CoreError, Distances, LabelBits, ReservationSet, Result, TaskId, TaskSet, Worker,
    WorkerId, WorkerPool,
};

/// Campaign-level configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FrameworkConfig {
    /// Inference model configuration.
    pub em: EmConfig,
    /// Delayed full-EM policy.
    pub policy: UpdatePolicy,
    /// Total number of task assignments the campaign may issue (the paper's
    /// budget `B`).
    pub budget: usize,
    /// Tasks per HIT — how many tasks each requesting worker receives.
    pub h: usize,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        Self {
            em: EmConfig::default(),
            policy: UpdatePolicy::default(),
            budget: 1000,
            h: 2,
        }
    }
}

/// The assembled POI-labelling system.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Framework {
    tasks: TaskSet,
    workers: WorkerPool,
    distances: Distances,
    log: AnswerLog,
    model: OnlineModel,
    config: FrameworkConfig,
    budget_used: usize,
    /// Pairs issued by [`Framework::request`] whose answers have not been
    /// applied yet. Not part of the deterministic model state and not
    /// persisted by snapshots (a restore deliberately re-opens in-flight
    /// pairs — their clients died with the process that issued them).
    #[cfg_attr(feature = "serde", serde(skip, default))]
    reserved: ReservationSet,
    /// Optional timing sink for assignment rounds. Process-local, never
    /// persisted (see [`RecorderHandle`]).
    #[cfg_attr(feature = "serde", serde(skip, default))]
    recorder: RecorderHandle,
}

impl Framework {
    /// Builds a framework over `tasks` with an initial worker pool (which
    /// may be empty — workers can register later).
    #[must_use]
    pub fn new(tasks: TaskSet, workers: WorkerPool, config: FrameworkConfig) -> Self {
        let distances = Distances::from_tasks(&tasks);
        Self::with_distances(tasks, workers, config, distances)
    }

    /// Builds a framework with an explicit distance normaliser instead of
    /// the task set's own diameter. A service that shards one campaign
    /// across several frameworks passes the *global* normaliser here so
    /// every shard measures `d(w, t)` on the same scale as the unsharded
    /// system.
    #[must_use]
    pub fn with_distances(
        tasks: TaskSet,
        workers: WorkerPool,
        config: FrameworkConfig,
        distances: Distances,
    ) -> Self {
        let log = AnswerLog::new(tasks.len(), workers.len());
        let model = OnlineModel::new(&tasks, &log, config.em.clone(), config.policy);
        Self {
            tasks,
            workers,
            distances,
            log,
            model,
            config,
            budget_used: 0,
            reserved: ReservationSet::new(),
            recorder: RecorderHandle::none(),
        }
    }

    /// Attaches (or clears) the timing sink notified after every
    /// assignment round and model rebuild. The handle is shared with the
    /// inference model, so one call instruments both hot paths.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.model.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Registers a newly arrived worker.
    ///
    /// # Errors
    /// Fails if the worker carries no location.
    pub fn register_worker(&mut self, worker: Worker) -> Result<WorkerId> {
        let id = self.workers.register(worker)?;
        self.log.ensure_workers(self.workers.len());
        Ok(id)
    }

    /// Remaining assignment budget. Saturates at zero: a budget lowered
    /// after construction (or a shard rebalance shrinking a slice below
    /// what is already spent) reads as exhausted, not as an underflow.
    #[must_use]
    pub fn budget_remaining(&self) -> usize {
        self.config.budget.saturating_sub(self.budget_used)
    }

    /// Budget consumed so far (number of issued assignments).
    #[must_use]
    pub fn budget_used(&self) -> usize {
        self.budget_used
    }

    /// Charges up to `n` budget units without issuing assignments, returning
    /// how many were actually charged (clamped to the remaining budget).
    ///
    /// This is a service-layer hook: snapshot restore re-applies budget that
    /// the snapshotted campaign had charged for assignments whose answers
    /// never arrived, and shard rebalancing moves spent budget between
    /// slices. Campaign code should let [`Framework::request`] do the
    /// charging.
    pub fn charge(&mut self, n: usize) -> usize {
        let charged = n.min(self.budget_remaining());
        self.budget_used += charged;
        charged
    }

    /// Replaces the total budget. Lowering it below `budget_used` is legal
    /// and simply reads as exhausted (see [`Framework::budget_remaining`]).
    pub fn set_budget(&mut self, budget: usize) {
        self.config.budget = budget;
    }

    /// Handles a batch of workers requesting tasks: consults `assigner`,
    /// truncates to the remaining budget and charges it.
    ///
    /// Every issued pair is **reserved** until its answer is applied: a
    /// follow-up request for the same worker skips in-flight pairs instead
    /// of re-issuing them, so a requester does not have to wait for its
    /// own answers to land before asking for more work.
    ///
    /// # Errors
    /// * [`CoreError::BudgetExhausted`] when no budget remains;
    /// * [`CoreError::UnknownWorker`] for unregistered ids.
    pub fn request(
        &mut self,
        assigner: &mut dyn Assigner,
        worker_ids: &[WorkerId],
    ) -> Result<Assignment> {
        if self.budget_remaining() == 0 {
            return Err(CoreError::BudgetExhausted);
        }
        for &w in worker_ids {
            if self.workers.get(w).is_none() {
                return Err(CoreError::UnknownWorker(w));
            }
        }
        let ctx = AssignContext {
            tasks: &self.tasks,
            workers: &self.workers,
            log: &self.log,
            params: self.model.params(),
            fset: &self.model.config().fset,
            alpha: self.model.config().alpha,
            distances: &self.distances,
            reserved: &self.reserved,
            threads: self.config.policy.parallelism.resolve(),
        };
        let started = self.recorder.is_enabled().then(std::time::Instant::now);
        let mut assignment = assigner.assign(&ctx, worker_ids, self.config.h);
        if let Some(t0) = started {
            self.recorder.assignment(t0.elapsed(), assignment.total());
        }
        assignment.truncate(self.budget_remaining());
        self.budget_used += assignment.total();
        for (w, t) in assignment.pairs() {
            debug_assert!(
                !self.reserved.contains(w, t),
                "assigner issued a reserved pair ({w:?}, {t:?})"
            );
            self.reserved.reserve(w, t);
        }
        Ok(assignment)
    }

    /// Accepts a worker's answer to a task: validates, logs, and updates the
    /// model online. Returns `true` when the submission triggered a delayed
    /// full EM.
    ///
    /// # Errors
    /// Propagates validation failures from [`AnswerLog::submit`].
    pub fn submit(&mut self, worker: WorkerId, task: TaskId, bits: LabelBits) -> Result<bool> {
        self.log.submit(
            &self.tasks,
            &self.workers,
            &self.distances,
            worker,
            task,
            bits,
        )?;
        self.reserved.release(worker, task);
        let answer = *self.log.answers().last().expect("just pushed");
        Ok(self.model.on_submit(&self.tasks, &self.log, &answer))
    }

    /// Forces a full-sweep batch EM over everything collected so far —
    /// end-of-campaign hardening that bypasses the dirty-set policy.
    pub fn force_full_em(&mut self) {
        self.model.full_sweep(&self.tasks, &self.log);
    }

    /// Appends an answer to the log **without updating the model** —
    /// the snapshot bulk-load path. The answer is validated exactly like
    /// [`Framework::submit`] (duplicates, unknown ids, arity), but no
    /// incremental EM runs and no rebuild can trigger.
    ///
    /// After bulk-loading, the model is out of sync with the log; the
    /// caller **must** call [`Framework::restore_checkpoint`] before any
    /// [`Framework::submit`], or the per-answer caches will misalign.
    ///
    /// # Errors
    /// Propagates validation failures from [`AnswerLog::submit`].
    pub fn load_answer(&mut self, worker: WorkerId, task: TaskId, bits: LabelBits) -> Result<()> {
        self.log.submit(
            &self.tasks,
            &self.workers,
            &self.distances,
            worker,
            task,
            bits,
        )?;
        self.reserved.release(worker, task);
        Ok(())
    }

    /// Restores the model to the deterministic post-full-sweep state
    /// implied by `params` over the current answer log, with `peers` as
    /// the folded peer-statistic table at that point (see
    /// [`OnlineModel::restore_checkpoint`]). Pairs with
    /// [`Framework::load_answer`]: bulk-load the log prefix, then restore
    /// the checkpoint, then resume normal [`Framework::submit`] traffic.
    ///
    /// Returns `false` (model untouched) when `params` does not match this
    /// framework's task/worker/function shapes.
    pub fn restore_checkpoint(&mut self, params: ModelParams, peers: PeerStats) -> bool {
        self.model
            .restore_checkpoint(&self.tasks, &self.log, params, peers)
    }

    /// Installs a persisted pruned-prefix baseline on the model (snapshot
    /// restore of a pruned shard; see [`OnlineModel::restore_frozen`]).
    /// Must run before [`Framework::restore_checkpoint`]. Returns `false`
    /// on a function-count mismatch.
    pub fn restore_frozen(&mut self, baseline: crate::model::SufficientStats) -> bool {
        self.model.restore_frozen(baseline)
    }

    /// Seeds the answer log's pruned prefix from persisted `(worker, task)`
    /// pairs (snapshot restore of a pruned shard; see
    /// [`AnswerLog::restore_pruned`]). Returns `false` if the log already
    /// holds answers or the pairs are invalid.
    pub fn restore_pruned(&mut self, pairs: &[(WorkerId, TaskId)]) -> bool {
        self.log.restore_pruned(pairs)
    }

    /// This framework's own worker-side sufficient statistics, packaged
    /// for a gossip exchange, stamped with the current answer count as the
    /// version. Sufficient when publishes only ever follow new answers;
    /// a caller that may republish after [`Framework::force_full_em`]
    /// (which rebuilds the statistics without growing the log) should
    /// stamp its own strictly-increasing publish counter via
    /// [`OnlineModel::worker_stat_delta`] instead, as `crowd_serve` does.
    #[must_use]
    pub fn worker_stat_delta(&self, source: u64) -> WorkerStatDelta {
        self.model
            .worker_stat_delta(source, self.log.stream_len() as u64)
    }

    /// Truncates the in-memory answer prefix after a full-sweep boundary:
    /// freezes the model's sufficient statistics as the pruned-prefix
    /// baseline ([`OnlineModel::prune_frozen`]) and drains the retained
    /// answers from the log ([`AnswerLog::prune_retained`]), returning the
    /// drained payloads in stream order for the caller to spill to disk.
    ///
    /// Returns `None` (state untouched) unless called at an exact
    /// full-sweep boundary — right after [`Framework::force_full_em`] (or a
    /// full-sweep rebuild) with no submissions since.
    pub fn prune_checkpointed(&mut self) -> Option<Vec<crate::Answer>> {
        if !self.model.prune_frozen(&self.log) {
            return None;
        }
        Some(self.log.prune_retained())
    }

    /// Folds a peer framework's published worker statistics into the
    /// inference model (see [`OnlineModel::fold_peer_stats`]). Returns
    /// `true` when the delta was new for its source.
    pub fn fold_peer_stats(&mut self, delta: &WorkerStatDelta) -> bool {
        self.model.fold_peer_stats(&self.tasks, delta)
    }

    /// Folds a whole gossip round of peer deltas in one pass (see
    /// [`OnlineModel::fold_peer_stats_batch`]). Returns, per input delta,
    /// whether it was absorbed.
    pub fn fold_peer_stats_batch(&mut self, deltas: &[WorkerStatDelta]) -> Vec<bool> {
        self.model.fold_peer_stats_batch(&self.tasks, deltas)
    }

    /// The gossiped peer statistics folded in so far.
    #[must_use]
    pub fn peer_stats(&self) -> &PeerStats {
        self.model.peer_stats()
    }

    /// Current hardened inference for all tasks.
    #[must_use]
    pub fn inference(&self) -> InferenceResult {
        InferenceResult::from_params(&self.tasks, self.model.params())
    }

    /// The task set.
    #[must_use]
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// The registered workers.
    #[must_use]
    pub fn workers(&self) -> &WorkerPool {
        &self.workers
    }

    /// All collected answers.
    #[must_use]
    pub fn log(&self) -> &AnswerLog {
        &self.log
    }

    /// Current parameter estimates.
    #[must_use]
    pub fn params(&self) -> &ModelParams {
        self.model.params()
    }

    /// The online model (for diagnostics).
    #[must_use]
    pub fn model(&self) -> &OnlineModel {
        &self.model
    }

    /// The distance model.
    #[must_use]
    pub fn distances(&self) -> &Distances {
        &self.distances
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// The issued-but-unanswered pairs currently in flight.
    #[must_use]
    pub fn reservations(&self) -> &ReservationSet {
        &self.reserved
    }

    /// Drops every in-flight reservation — the operator escape hatch for
    /// clients that requested tasks and vanished. The budget those pairs
    /// consumed stays spent.
    pub fn clear_reservations(&mut self) {
        self.reserved.clear();
    }

    /// Inserts issued-but-unanswered pairs without charging budget.
    ///
    /// This is a service-layer hook like [`Framework::charge`]: a shard
    /// handoff moves in-flight reservations to the task's new owner so the
    /// pair is still refused a re-issue there, and snapshot restore could
    /// re-seed in-flight state the same way. Pairs already reserved are
    /// ignored. Campaign code should let [`Framework::request`] reserve.
    pub fn adopt_reservations<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (WorkerId, TaskId)>,
    {
        for (worker, task) in pairs {
            self.reserved.reserve(worker, task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::AccOptAssigner;
    use crate::task::synthetic_task;
    use crowd_geo::Point;

    fn build(budget: usize, h: usize) -> Framework {
        let tasks = TaskSet::new(
            (0..6)
                .map(|i| synthetic_task(format!("t{i}"), Point::new(i as f64, 0.0), 3))
                .collect(),
        );
        let workers = WorkerPool::from_workers(vec![
            Worker::at("a", Point::new(0.0, 0.5)),
            Worker::at("b", Point::new(5.0, 0.5)),
        ])
        .unwrap();
        Framework::new(
            tasks,
            workers,
            FrameworkConfig {
                budget,
                h,
                ..FrameworkConfig::default()
            },
        )
    }

    #[test]
    fn request_charges_budget_and_respects_h() {
        let mut fw = build(10, 2);
        let mut assigner = AccOptAssigner::new();
        let a = fw
            .request(&mut assigner, &[WorkerId(0), WorkerId(1)])
            .unwrap();
        assert_eq!(a.total(), 4);
        assert_eq!(fw.budget_used(), 4);
        assert_eq!(fw.budget_remaining(), 6);
    }

    #[test]
    fn request_truncates_to_remaining_budget() {
        let mut fw = build(3, 2);
        let mut assigner = AccOptAssigner::new();
        let a = fw
            .request(&mut assigner, &[WorkerId(0), WorkerId(1)])
            .unwrap();
        assert_eq!(a.total(), 3);
        assert_eq!(fw.budget_remaining(), 0);
        // Next request fails.
        let err = fw.request(&mut assigner, &[WorkerId(0)]).unwrap_err();
        assert_eq!(err, CoreError::BudgetExhausted);
    }

    #[test]
    fn submit_flows_into_inference() {
        let mut fw = build(100, 2);
        fw.submit(
            WorkerId(0),
            TaskId(0),
            LabelBits::from_slice(&[true, true, false]),
        )
        .unwrap();
        fw.submit(
            WorkerId(1),
            TaskId(0),
            LabelBits::from_slice(&[true, true, false]),
        )
        .unwrap();
        let inf = fw.inference();
        assert!(inf.decision(TaskId(0)).get(0));
        assert!(!inf.decision(TaskId(0)).get(2));
        assert_eq!(fw.log().len(), 2);
    }

    #[test]
    fn unknown_worker_in_request_is_rejected() {
        let mut fw = build(10, 1);
        let mut assigner = AccOptAssigner::new();
        let err = fw.request(&mut assigner, &[WorkerId(99)]).unwrap_err();
        assert_eq!(err, CoreError::UnknownWorker(WorkerId(99)));
        // Budget untouched on failure.
        assert_eq!(fw.budget_used(), 0);
    }

    #[test]
    fn register_worker_grows_everything() {
        let mut fw = build(10, 1);
        let id = fw
            .register_worker(Worker::at("newcomer", Point::new(2.0, 2.0)))
            .unwrap();
        assert_eq!(id, WorkerId(2));
        // The newcomer can submit immediately.
        fw.submit(id, TaskId(1), LabelBits::from_slice(&[true, false, true]))
            .unwrap();
        assert_eq!(fw.log().n_answers_by(id), 1);
    }

    #[test]
    fn force_full_em_updates_report() {
        let mut fw = build(10, 1);
        fw.submit(
            WorkerId(0),
            TaskId(0),
            LabelBits::from_slice(&[true, true, true]),
        )
        .unwrap();
        fw.force_full_em();
        assert!(fw.model().last_report().is_some());
    }

    #[test]
    fn budget_lowered_below_used_reads_exhausted_not_underflow() {
        let mut fw = build(10, 2);
        let mut assigner = AccOptAssigner::new();
        let a = fw
            .request(&mut assigner, &[WorkerId(0), WorkerId(1)])
            .unwrap();
        assert_eq!(a.total(), 4);
        fw.set_budget(2); // below the 4 already spent
        assert_eq!(fw.budget_remaining(), 0);
        assert_eq!(
            fw.request(&mut assigner, &[WorkerId(0)]).unwrap_err(),
            CoreError::BudgetExhausted
        );
    }

    #[test]
    fn charge_clamps_to_remaining_budget() {
        let mut fw = build(5, 2);
        assert_eq!(fw.charge(3), 3);
        assert_eq!(fw.budget_used(), 3);
        assert_eq!(fw.charge(10), 2);
        assert_eq!(fw.budget_remaining(), 0);
        assert_eq!(fw.charge(1), 0);
    }

    #[test]
    fn bulk_load_plus_checkpoint_matches_live_submit_stream() {
        // Submit a stream live, harden (a full-sweep checkpoint), then
        // rebuild a second framework by bulk-loading the same log and
        // restoring the checkpoint parameters: both must be bit-identical
        // and stay in lockstep on further submits.
        let mut live = build(100, 2);
        let stream = [
            (0u32, 0u32, [true, true, false]),
            (1, 0, [true, false, false]),
            (0, 1, [false, true, true]),
            (1, 2, [true, true, true]),
        ];
        for &(w, t, bits) in &stream {
            live.submit(WorkerId(w), TaskId(t), LabelBits::from_slice(&bits))
                .unwrap();
        }
        live.force_full_em();

        let mut restored = build(100, 2);
        for &(w, t, bits) in &stream {
            restored
                .load_answer(WorkerId(w), TaskId(t), LabelBits::from_slice(&bits))
                .unwrap();
        }
        assert!(restored.restore_checkpoint(live.params().clone(), live.peer_stats().clone()));
        assert_eq!(restored.params(), live.params());
        assert_eq!(restored.inference(), live.inference());

        let extra = (1u32, 1u32, [false, false, true]);
        live.submit(
            WorkerId(extra.0),
            TaskId(extra.1),
            LabelBits::from_slice(&extra.2),
        )
        .unwrap();
        restored
            .submit(
                WorkerId(extra.0),
                TaskId(extra.1),
                LabelBits::from_slice(&extra.2),
            )
            .unwrap();
        assert_eq!(restored.params(), live.params());

        // Bulk-load still validates: a duplicate is rejected.
        assert!(restored
            .load_answer(WorkerId(0), TaskId(0), LabelBits::from_slice(&[true; 3]))
            .is_err());
    }

    #[test]
    fn issued_pairs_are_reserved_until_answered() {
        let mut fw = build(100, 2);
        let mut assigner = AccOptAssigner::new();
        let a = fw.request(&mut assigner, &[WorkerId(0)]).unwrap();
        assert_eq!(a.total(), 2);
        assert_eq!(fw.reservations().len(), 2);
        for (w, t) in a.pairs() {
            assert!(fw.reservations().contains(w, t));
        }
        let pairs: Vec<_> = a.pairs().collect();
        fw.submit(pairs[0].0, pairs[0].1, LabelBits::from_slice(&[true; 3]))
            .unwrap();
        assert_eq!(fw.reservations().len(), 1);
        assert!(!fw.reservations().contains(pairs[0].0, pairs[0].1));
        assert!(fw.reservations().contains(pairs[1].0, pairs[1].1));
    }

    #[test]
    fn pending_pair_never_reissued_before_answer_applied() {
        // The re-issue race: request, do NOT answer, request again. The
        // second request must skip the in-flight pairs instead of
        // double-charging the budget for them.
        let mut fw = build(100, 2);
        let mut assigner = AccOptAssigner::new();
        let first = fw.request(&mut assigner, &[WorkerId(0)]).unwrap();
        let second = fw.request(&mut assigner, &[WorkerId(0)]).unwrap();
        let first_pairs: std::collections::HashSet<_> = first.pairs().collect();
        for pair in second.pairs() {
            assert!(
                !first_pairs.contains(&pair),
                "pair {pair:?} re-issued while its answer was in flight"
            );
        }
        // Answers release the reservations; the pairs become submittable
        // (once) but never assignable again (they are now answered).
        for (w, t) in first.pairs().chain(second.pairs()) {
            fw.submit(w, t, LabelBits::from_slice(&[true, false, true]))
                .unwrap();
        }
        assert!(fw.reservations().is_empty());
    }

    #[test]
    fn bulk_load_releases_reservations_too() {
        let mut fw = build(100, 2);
        let mut assigner = AccOptAssigner::new();
        let a = fw.request(&mut assigner, &[WorkerId(1)]).unwrap();
        let (w, t) = a.pairs().next().unwrap();
        fw.load_answer(w, t, LabelBits::from_slice(&[true; 3]))
            .unwrap();
        assert!(!fw.reservations().contains(w, t));
    }

    #[test]
    fn clear_reservations_reopens_pairs_without_refunding() {
        let mut fw = build(100, 2);
        let mut assigner = AccOptAssigner::new();
        let a = fw.request(&mut assigner, &[WorkerId(0)]).unwrap();
        let used = fw.budget_used();
        assert_eq!(used, a.total());
        fw.clear_reservations();
        assert!(fw.reservations().is_empty());
        assert_eq!(fw.budget_used(), used, "clearing never refunds budget");
        // The same pairs may now be issued again.
        let again = fw.request(&mut assigner, &[WorkerId(0)]).unwrap();
        assert_eq!(again.total(), 2);
    }

    #[test]
    fn prune_checkpointed_drains_log_and_keeps_serving() {
        let mut pruned = build(100, 2);
        let mut reference = build(100, 2);
        let stream = [
            (0u32, 0u32, [true, true, false]),
            (1, 0, [true, false, false]),
            (0, 1, [false, true, true]),
            (1, 2, [true, true, true]),
        ];
        for &(w, t, bits) in &stream {
            pruned
                .submit(WorkerId(w), TaskId(t), LabelBits::from_slice(&bits))
                .unwrap();
            reference
                .submit(WorkerId(w), TaskId(t), LabelBits::from_slice(&bits))
                .unwrap();
        }

        // Not at a full-sweep boundary yet: pruning is refused.
        assert!(pruned.prune_checkpointed().is_none());

        pruned.force_full_em();
        reference.force_full_em();
        let drained = pruned.prune_checkpointed().unwrap();
        assert_eq!(drained.len(), stream.len());
        assert_eq!(pruned.log().len(), 0);
        assert_eq!(pruned.log().stream_len(), stream.len());
        assert_eq!(pruned.params(), reference.params());

        // Duplicates of pruned pairs are still rejected; fresh submissions
        // keep flowing and the counts stay stream-wide.
        assert!(pruned
            .submit(WorkerId(0), TaskId(0), LabelBits::from_slice(&[true; 3]))
            .is_err());
        pruned
            .submit(WorkerId(1), TaskId(1), LabelBits::from_slice(&[false; 3]))
            .unwrap();
        reference
            .submit(WorkerId(1), TaskId(1), LabelBits::from_slice(&[false; 3]))
            .unwrap();
        assert_eq!(pruned.params(), reference.params());
        assert_eq!(pruned.log().stream_len(), stream.len() + 1);
        assert_eq!(pruned.log().n_answers_by(WorkerId(1)), 3);
    }

    #[test]
    fn duplicate_submission_rejected_and_state_unchanged() {
        let mut fw = build(10, 1);
        let bits = LabelBits::from_slice(&[true, false, false]);
        fw.submit(WorkerId(0), TaskId(0), bits).unwrap();
        let before = fw.log().len();
        assert!(fw.submit(WorkerId(0), TaskId(0), bits).is_err());
        assert_eq!(fw.log().len(), before);
    }
}
