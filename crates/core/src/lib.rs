//! Location-aware crowdsourced POI labelling: result inference and task
//! assignment.
//!
//! This crate is a faithful implementation of the system described in
//! *Hu, Zheng, Bao, Li, Feng, Cheng — "Crowdsourced POI Labelling:
//! Location-Aware Result Inference and Task Assignment", ICDE 2016*:
//!
//! * a **graphical inference model** combining each worker's inherent
//!   quality `P(i_w)`, their distance-aware quality (a mixture `P(d_w)` over
//!   a set of bell-shaped distance functions) and each POI's influence
//!   `P(d_t)`, estimated by EM ([`model`]);
//! * an **online task assigner** that greedily maximises the expected
//!   accuracy improvement of assigning tasks to the currently available
//!   workers ([`assign`], [`accuracy`]);
//! * the **framework** alternating the two under an assignment budget
//!   ([`framework`], Figure 1 of the paper).
//!
//! # Quick start
//!
//! ```
//! use crowd_core::prelude::*;
//! use crowd_geo::Point;
//!
//! // Two POIs with three candidate labels each.
//! let tasks = TaskSet::new(vec![
//!     synthetic_task("Olympic Park", Point::new(0.2, 0.8), 3),
//!     synthetic_task("Botanical Garden", Point::new(0.7, 0.1), 3),
//! ]);
//! let workers = WorkerPool::from_workers(vec![
//!     Worker::at("alice", Point::new(0.25, 0.75)),
//!     Worker::at("bob", Point::new(0.6, 0.2)),
//! ]).unwrap();
//!
//! let mut fw = Framework::new(tasks, workers, FrameworkConfig::default());
//!
//! // Workers request tasks; ACCOPT picks the most informative ones.
//! let mut assigner = AccOptAssigner::new();
//! let assignment = fw.request(&mut assigner, &[WorkerId(0), WorkerId(1)]).unwrap();
//! assert_eq!(assignment.total(), 4); // h = 2 tasks per worker
//!
//! // Answers feed the online inference model.
//! for (worker, task) in assignment.pairs() {
//!     fw.submit(worker, task, LabelBits::from_slice(&[true, false, true])).unwrap();
//! }
//! let inference = fw.inference();
//! assert!(inference.decision(TaskId(0)).get(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
mod answers;
pub mod assign;
mod distfn;
mod error;
pub mod framework;
mod ids;
mod labels;
pub mod model;
pub mod obs;
pub mod prob;
mod reserve;
mod task;
mod worker;

pub use accuracy::{AccuracyEstimator, GainSemantics, LabelAccuracy};
pub use answers::{Answer, AnswerLog};
pub use assign::{AccOptAssigner, AssignContext, Assigner, Assignment, InnerLoop};
pub use distfn::{BellShaped, DistanceFunctionSet};
pub use error::{CoreError, Result};
pub use framework::{Framework, FrameworkConfig};
pub use ids::{TaskId, WorkerId};
pub use labels::LabelBits;
pub use model::{
    AnswerGeometry, EmConfig, EmParallelism, EmReport, InferenceResult, InitStrategy, ModelParams,
    OnlineModel, PeerStats, SufficientStats, UpdatePolicy, WorkerStatDelta,
};
pub use obs::{Recorder, RecorderHandle};
pub use reserve::ReservationSet;
pub use task::{synthetic_task, Label, Task, TaskSet};
pub use worker::{Distances, Worker, WorkerPool};

/// One-stop imports for typical users.
pub mod prelude {
    pub use crate::accuracy::{AccuracyEstimator, GainSemantics, LabelAccuracy};
    pub use crate::assign::{AccOptAssigner, AssignContext, Assigner, Assignment, InnerLoop};
    pub use crate::framework::{Framework, FrameworkConfig};
    pub use crate::model::{
        run_em, run_em_naive, AnswerGeometry, EmConfig, EmParallelism, EmReport, InferenceResult,
        InitStrategy, ModelParams, OnlineModel, PeerStats, UpdatePolicy, WorkerStatDelta,
    };
    pub use crate::task::{synthetic_task, Label, Task, TaskSet};
    pub use crate::worker::{Distances, Worker, WorkerPool};
    pub use crate::{
        Answer, AnswerLog, BellShaped, CoreError, DistanceFunctionSet, LabelBits, Recorder,
        RecorderHandle, ReservationSet, TaskId, WorkerId,
    };
}
