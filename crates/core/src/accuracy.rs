//! Accuracy estimation for task assignment (Section IV-B of the paper):
//! answer accuracy (Equation 9), expected post-assignment accuracy
//! (Equations 16–18), the multi-worker recursion (Lemma 2), and the expected
//! accuracy improvement (Equation 20).

use crate::{AnswerLog, DistanceFunctionSet, ModelParams, Task, TaskSet, WorkerId};

/// Evaluates the model-implied probability that a worker's answer matches
/// the truth, `P(r_{w,t,k} = z_{t,k})` (Equation 9).
///
/// Note the probability depends on the worker and the task but *not* on the
/// label index or the answer value — Equation 9 is symmetric in match /
/// mismatch.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyEstimator<'a> {
    params: &'a ModelParams,
    fset: &'a DistanceFunctionSet,
    log: &'a AnswerLog,
    alpha: f64,
}

impl<'a> AccuracyEstimator<'a> {
    /// Creates an estimator over the current model state.
    #[must_use]
    pub fn new(
        params: &'a ModelParams,
        fset: &'a DistanceFunctionSet,
        log: &'a AnswerLog,
        alpha: f64,
    ) -> Self {
        Self {
            params,
            fset,
            log,
            alpha,
        }
    }

    /// `P(r = z)` for worker `w` answering `task` from normalised distance
    /// `d`.
    ///
    /// Cold start (footnote 3 of the paper): a worker with no recorded
    /// answers is assumed best-quality (`P(i_w = 1) = 1`, all mass on the
    /// flattest `f_λ`), and an unanswered task is assumed maximally
    /// influential — this prioritises exploring unknown workers and tasks.
    #[must_use]
    pub fn answer_accuracy(&self, w: WorkerId, task: &Task, d: f64) -> f64 {
        let flattest = self.fset.flattest();
        let worker_is_new = w.index() >= self.params.n_workers() || self.log.n_answers_by(w) == 0;
        let task_is_new = self.log.n_answers_on(task.id) == 0;

        let (pi1, qw) = if worker_is_new {
            (1.0, self.fset.functions()[flattest].eval(d))
        } else {
            (
                self.params.inherent(w),
                self.fset.mixture(self.params.dw(w), d),
            )
        };
        let qt = if task_is_new {
            self.fset.functions()[flattest].eval(d)
        } else {
            self.fset.mixture(self.params.dt(task.id), d)
        };

        let q = self.alpha * qw + (1.0 - self.alpha) * qt;
        // Equation 9: spammers match with probability 0.5.
        (1.0 - pi1) * 0.5 + pi1 * q
    }

    /// [`AccuracyEstimator::answer_accuracy`] fed from precomputed
    /// distance-function values `fvals[j] = f_λj(d)` instead of evaluating
    /// the bell curves in place.
    ///
    /// Bit-identical to the re-evaluating path: the mixtures decompose
    /// into exactly the same multiply-add sequence
    /// (`Σ_j weights[j] · fvals[j]`), and the cold-start branch reads the
    /// flattest function's cached value. ACCOPT's candidate scorer uses
    /// this with a per-(worker, task) memo so each `exp` is evaluated once
    /// per pair across assignment rounds rather than once per score.
    #[must_use]
    pub fn answer_accuracy_from_values(&self, w: WorkerId, task: &Task, fvals: &[f64]) -> f64 {
        debug_assert_eq!(fvals.len(), self.fset.len());
        let flattest = self.fset.flattest();
        let worker_is_new = w.index() >= self.params.n_workers() || self.log.n_answers_by(w) == 0;
        let task_is_new = self.log.n_answers_on(task.id) == 0;

        let (pi1, qw) = if worker_is_new {
            (1.0, fvals[flattest])
        } else {
            (
                self.params.inherent(w),
                DistanceFunctionSet::mixture_from_values(self.params.dw(w), fvals),
            )
        };
        let qt = if task_is_new {
            fvals[flattest]
        } else {
            DistanceFunctionSet::mixture_from_values(self.params.dt(task.id), fvals)
        };

        let q = self.alpha * qw + (1.0 - self.alpha) * qt;
        (1.0 - pi1) * 0.5 + pi1 * q
    }
}

/// The expected inference accuracy of one label under both possible truths
/// (Equation 15): `acc1 = PE(z = 1 | ·)` assuming `z ≡ 1`, `acc0` likewise
/// for `z ≡ 0`.
///
/// Tracking both lets the assigner compute the truth-weighted expected
/// improvement of Equation 20 without knowing the ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelAccuracy {
    /// Expected accuracy if the label's true result is 1.
    pub acc1: f64,
    /// Expected accuracy if the label's true result is 0.
    pub acc0: f64,
}

impl LabelAccuracy {
    /// Before any additional assignment, the accuracy is the current
    /// inference probability itself: `Acc = P(z = 1)` if `z ≡ 1`, else
    /// `P(z = 0)`.
    #[must_use]
    pub fn from_prior(pz1: f64) -> Self {
        Self {
            acc1: pz1,
            acc0: 1.0 - pz1,
        }
    }

    /// One step of the Lemma 2 recursion: the expected accuracy after one
    /// more worker with answer-accuracy `p` joins, given `n_prior` answers
    /// already counted (`|W(t)|` plus workers already added this round).
    ///
    /// Both truth tracks use the same update because Equation 18 is
    /// symmetric: with probability `p` the new answer matches the truth and
    /// contributes `p` to the mean, with probability `1 − p` it mismatches
    /// and contributes `1 − p`.
    #[must_use]
    pub fn step(&self, p: f64, n_prior: usize) -> Self {
        let n = n_prior as f64;
        let update = |acc: f64| -> f64 {
            let matched = (n * acc + p) / (n + 1.0);
            let mismatched = (n * acc + (1.0 - p)) / (n + 1.0);
            matched * p + mismatched * (1.0 - p)
        };
        Self {
            acc1: update(self.acc1),
            acc0: update(self.acc0),
        }
    }

    /// Expected accuracy improvement of this state over the prior
    /// (Equation 20), weighting each truth track by the current belief.
    #[must_use]
    pub fn improvement_over_prior(&self, pz1: f64) -> f64 {
        pz1 * (self.acc1 - pz1) + (1.0 - pz1) * (self.acc0 - (1.0 - pz1))
    }

    /// Marginal gain of moving from `before` to `self`, truth-weighted by
    /// `pz1`. This is the default greedy objective (DESIGN.md §6.2).
    #[must_use]
    pub fn marginal_gain(&self, before: &Self, pz1: f64) -> f64 {
        pz1 * (self.acc1 - before.acc1) + (1.0 - pz1) * (self.acc0 - before.acc0)
    }
}

/// Brute-force oracle for Lemma 2: computes `PE(z = truth | r_1, …, r_m)` by
/// enumerating all `2^m` concrete answer combinations.
///
/// `ps[j]` is worker `j`'s match probability `P(r_j = z)`; `n0 = |W(t)|` is
/// the number of pre-existing answers; `start` is the prior accuracy on the
/// assumed-truth track. Exponential — test-only sizes.
#[must_use]
pub fn expected_accuracy_brute(start: f64, ps: &[f64], n0: usize) -> f64 {
    let m = ps.len();
    let mut total = 0.0;
    for mask in 0..(1u32 << m) {
        let mut acc = start;
        let mut weight = 1.0;
        for (j, &p) in ps.iter().enumerate() {
            let matches = (mask >> j) & 1 == 1;
            let contribution = if matches { p } else { 1.0 - p };
            weight *= contribution;
            let n = (n0 + j) as f64;
            acc = (n * acc + contribution) / (n + 1.0);
        }
        total += weight * acc;
    }
    total
}

/// Computes `Σ_k ∆Acc_{t,k}` for assigning one more worker (accuracy `p`) to
/// a task whose labels are in state `pairs` with prior beliefs `pz1s`,
/// `n_prior` answers counted so far. Helper shared by both greedy variants.
#[must_use]
pub fn task_gain(
    pairs: &[LabelAccuracy],
    pz1s: &[f64],
    p: f64,
    n_prior: usize,
    semantics: GainSemantics,
) -> f64 {
    debug_assert_eq!(pairs.len(), pz1s.len());
    let mut gain = 0.0;
    for (pair, &pz1) in pairs.iter().zip(pz1s) {
        let after = pair.step(p, n_prior);
        gain += match semantics {
            GainSemantics::Marginal => after.marginal_gain(pair, pz1),
            GainSemantics::TotalSet => after.improvement_over_prior(pz1),
        };
    }
    gain
}

/// Which quantity the greedy assigner maximises when scoring a candidate
/// (worker, task) pair — see DESIGN.md §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GainSemantics {
    /// Marginal gain `∆Acc(Ŵ ∪ {w}) − ∆Acc(Ŵ)` (default; standard greedy
    /// for monotone objectives and reproduces Table II's even assignment
    /// spread).
    #[default]
    Marginal,
    /// The paper-literal Algorithm 1 line 19: the *total* improvement of
    /// `Ŵ ∪ {w}` over the pre-round state. Kept as an ablation.
    TotalSet,
}

/// Convenience: prior beliefs `P(z_{t,k} = 1)` for every label of a task.
#[must_use]
pub fn task_pz1(tasks: &TaskSet, params: &ModelParams, task: &Task) -> Vec<f64> {
    let base = tasks.label_offset(task.id);
    (0..task.n_labels())
        .map(|k| params.z_slot(base + k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::synthetic_task;
    use crate::{Answer, InitStrategy, LabelBits, TaskId};
    use crowd_geo::Point;

    #[test]
    fn paper_example_2_single_worker() {
        // Example 2: P(z=1)=0.59, |W(t)|=2, p=0.87 →
        // PE(z=1|r)=0.65, PE(z=0|r)=0.53.
        let pair = LabelAccuracy::from_prior(0.59);
        let after = pair.step(0.87, 2);
        assert!((after.acc1 - 0.6506).abs() < 5e-3, "acc1 {}", after.acc1);
        assert!((after.acc0 - 0.5332).abs() < 5e-3, "acc0 {}", after.acc0);
    }

    #[test]
    fn paper_example_3_two_workers() {
        // Example 3 continues: adding w3 with p=0.86. The paper prints 0.69
        // and 0.61, but evaluating its own Lemma 2 formula exactly gives
        // 0.678 and 0.588 (the paper rounds intermediates to two digits);
        // we assert the exact recursion values with slack covering the
        // paper's rounding.
        let pair = LabelAccuracy::from_prior(0.59);
        let after_w2 = pair.step(0.87, 2);
        let after_w3 = after_w2.step(0.86, 3);
        assert!(
            (after_w3.acc1 - 0.678).abs() < 1e-3,
            "acc1 {}",
            after_w3.acc1
        );
        assert!(
            (after_w3.acc0 - 0.588).abs() < 1e-3,
            "acc0 {}",
            after_w3.acc0
        );
        // Exponential brute-force enumeration agrees with the recursion.
        let brute1 = expected_accuracy_brute(0.59, &[0.87, 0.86], 2);
        assert!((after_w3.acc1 - brute1).abs() < 1e-12);
    }

    #[test]
    fn paper_example_4_improvement() {
        // Example 4: ∆Acc = 0.59·(0.65−0.59) + 0.41·(0.53−0.41) ≈ 0.08.
        let pz1 = 0.59;
        let pair = LabelAccuracy::from_prior(pz1);
        let after = pair.step(0.87, 2);
        let delta = after.improvement_over_prior(pz1);
        assert!((delta - 0.084).abs() < 5e-3, "delta {delta}");
    }

    #[test]
    fn recursion_matches_brute_force() {
        let start = 0.62;
        let ps = [0.9, 0.75, 0.55, 0.85];
        for n0 in [0usize, 1, 3] {
            for m in 0..=ps.len() {
                let mut pair = LabelAccuracy {
                    acc1: start,
                    acc0: start,
                };
                for (j, &p) in ps[..m].iter().enumerate() {
                    pair = pair.step(p, n0 + j);
                }
                let brute = expected_accuracy_brute(start, &ps[..m], n0);
                assert!(
                    (pair.acc1 - brute).abs() < 1e-12,
                    "n0={n0} m={m}: {} vs {brute}",
                    pair.acc1
                );
            }
        }
    }

    #[test]
    fn lemma_1_order_invariance() {
        // Acc(w1, w2) == Acc(w2, w1) for arbitrary accuracies.
        let pair = LabelAccuracy::from_prior(0.7);
        let ab = pair.step(0.9, 2).step(0.6, 3);
        let ba = pair.step(0.6, 2).step(0.9, 3);
        assert!((ab.acc1 - ba.acc1).abs() < 1e-12);
        assert!((ab.acc0 - ba.acc0).abs() < 1e-12);
    }

    #[test]
    fn informative_worker_improves_expected_accuracy() {
        // Any worker with p > 0.5 yields a positive expected improvement on
        // an uncertain label; a coin-flip worker yields none.
        let pz1 = 0.5;
        let pair = LabelAccuracy::from_prior(pz1);
        let good = pair.step(0.9, 0).improvement_over_prior(pz1);
        let coin = pair.step(0.5, 0).improvement_over_prior(pz1);
        assert!(good > 0.0);
        assert!(coin.abs() < 1e-12);
    }

    #[test]
    fn confident_labels_gain_less_than_uncertain_ones() {
        let p = 0.85;
        let uncertain = LabelAccuracy::from_prior(0.5);
        let confident = LabelAccuracy::from_prior(0.95);
        let gain_uncertain = uncertain.step(p, 2).improvement_over_prior(0.5);
        let gain_confident = confident.step(p, 2).improvement_over_prior(0.95);
        assert!(
            gain_uncertain > gain_confident,
            "{gain_uncertain} vs {gain_confident}"
        );
    }

    fn estimator_world() -> (TaskSet, AnswerLog, ModelParams, DistanceFunctionSet) {
        let tasks = TaskSet::new(vec![
            synthetic_task("answered", Point::new(0.0, 0.0), 2),
            synthetic_task("fresh", Point::new(1.0, 0.0), 2),
        ]);
        let mut log = AnswerLog::new(tasks.len(), 2);
        log.push(
            &tasks,
            Answer {
                worker: WorkerId(0),
                task: TaskId(0),
                bits: LabelBits::from_slice(&[true, false]),
                distance: 0.1,
            },
        )
        .unwrap();
        let params = ModelParams::init(&tasks, 2, 3, InitStrategy::Uniform, &log);
        (tasks, log, params, DistanceFunctionSet::paper_default())
    }

    #[test]
    fn answer_accuracy_in_valid_range() {
        let (tasks, log, params, fset) = estimator_world();
        let est = AccuracyEstimator::new(&params, &fset, &log, 0.5);
        for d in [0.0, 0.3, 1.0] {
            let p = est.answer_accuracy(WorkerId(0), tasks.task(TaskId(0)), d);
            assert!((0.5..=1.0).contains(&p), "d={d} p={p}");
        }
    }

    #[test]
    fn cold_start_boosts_new_workers_and_tasks() {
        let (tasks, log, params, fset) = estimator_world();
        let est = AccuracyEstimator::new(&params, &fset, &log, 0.5);
        let d = 0.3;
        // Worker 1 never answered: treated as perfect quality.
        let p_new = est.answer_accuracy(WorkerId(1), tasks.task(TaskId(1)), d);
        // Worker 0 has history: prior-quality mixture applies.
        let p_known = est.answer_accuracy(WorkerId(0), tasks.task(TaskId(0)), d);
        assert!(p_new > p_known, "{p_new} vs {p_known}");
        // Cold-start accuracy equals the flattest bell function exactly
        // (pi1 = 1 and both mixtures collapse to f_flattest).
        let expected = fset.functions()[fset.flattest()].eval(d);
        assert!((p_new - expected).abs() < 1e-12);
    }

    #[test]
    fn answer_accuracy_decreases_with_distance() {
        let (tasks, log, params, fset) = estimator_world();
        let est = AccuracyEstimator::new(&params, &fset, &log, 0.5);
        let near = est.answer_accuracy(WorkerId(0), tasks.task(TaskId(0)), 0.05);
        let far = est.answer_accuracy(WorkerId(0), tasks.task(TaskId(0)), 0.95);
        assert!(near > far, "{near} vs {far}");
    }

    #[test]
    fn task_gain_semantics_differ_after_first_assignment() {
        let pairs = vec![LabelAccuracy::from_prior(0.5); 2];
        let pz1s = vec![0.5; 2];
        // First assignment: marginal == total (empty set baseline).
        let m = task_gain(&pairs, &pz1s, 0.9, 0, GainSemantics::Marginal);
        let t = task_gain(&pairs, &pz1s, 0.9, 0, GainSemantics::TotalSet);
        assert!((m - t).abs() < 1e-12);
        // After one simulated assignment the tracks diverge.
        let stepped: Vec<LabelAccuracy> = pairs.iter().map(|p| p.step(0.9, 0)).collect();
        let m2 = task_gain(&stepped, &pz1s, 0.9, 1, GainSemantics::Marginal);
        let t2 = task_gain(&stepped, &pz1s, 0.9, 1, GainSemantics::TotalSet);
        assert!(t2 > m2, "total {t2} should exceed marginal {m2}");
    }
}
