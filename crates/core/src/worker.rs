//! Crowd workers and worker-task distances.

use crowd_geo::Point;

use crate::{CoreError, Result, Task, WorkerId};

/// A crowd worker.
///
/// Workers "select and submit one or several familiar locations" (home,
/// office, interest zones); the model measures `d(w, t)` as the *minimum*
/// distance from any of the worker's locations to the task (footnote 2 of
/// the paper).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Worker {
    /// Dense worker id.
    pub id: WorkerId,
    /// Display name (platform handle).
    pub name: String,
    /// One or more familiar locations; never empty.
    pub locations: Vec<Point>,
}

impl Worker {
    /// Creates a worker with a single location.
    #[must_use]
    pub fn at(name: impl Into<String>, location: Point) -> Self {
        Self {
            id: WorkerId(0), // reassigned on registration
            name: name.into(),
            locations: vec![location],
        }
    }

    /// Creates a worker with several familiar locations.
    #[must_use]
    pub fn with_locations(name: impl Into<String>, locations: Vec<Point>) -> Self {
        Self {
            id: WorkerId(0),
            name: name.into(),
            locations,
        }
    }
}

/// A growable, id-indexed pool of workers.
///
/// Workers arrive dynamically on a crowdsourcing platform; registration
/// assigns the next dense id.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers every worker in `workers`, in order.
    ///
    /// # Errors
    /// Fails if any worker has no location.
    pub fn from_workers(workers: Vec<Worker>) -> Result<Self> {
        let mut pool = Self::new();
        for w in workers {
            pool.register(w)?;
        }
        Ok(pool)
    }

    /// Registers a worker, assigning and returning its dense id.
    ///
    /// # Errors
    /// Fails with [`CoreError::WorkerWithoutLocation`] if the worker has no
    /// location — the model cannot compute `d(w, t)` without one.
    pub fn register(&mut self, mut worker: Worker) -> Result<WorkerId> {
        let id = WorkerId::from_index(self.workers.len());
        if worker.locations.is_empty() {
            return Err(CoreError::WorkerWithoutLocation(id));
        }
        worker.id = id;
        self.workers.push(worker);
        Ok(id)
    }

    /// Number of registered workers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// `true` when no workers are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The worker with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[must_use]
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[id.index()]
    }

    /// The worker with the given id, or `None` if out of range.
    #[must_use]
    pub fn get(&self, id: WorkerId) -> Option<&Worker> {
        self.workers.get(id.index())
    }

    /// Iterates over workers in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter()
    }

    /// Iterates over all worker ids.
    pub fn ids(&self) -> impl Iterator<Item = WorkerId> {
        (0..self.workers.len()).map(WorkerId::from_index)
    }
}

/// Computes normalised worker-task distances `d(w, t) ∈ [0, 1]`.
///
/// Raw distances are euclidean (the synthetic datasets live in a planar
/// box), take the minimum over the worker's locations, and are divided by a
/// dataset-level maximum distance (footnote 2), clamping into `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Distances {
    max_distance: f64,
}

impl Distances {
    /// Creates a distance model normalising by `max_distance`.
    ///
    /// # Panics
    /// Panics unless `max_distance` is positive and finite.
    #[must_use]
    pub fn new(max_distance: f64) -> Self {
        assert!(
            max_distance.is_finite() && max_distance > 0.0,
            "normalisation constant must be positive and finite, got {max_distance}"
        );
        Self { max_distance }
    }

    /// Derives the constant from the task set's diameter (the paper's
    /// suggested normaliser: "the maximum distance between POIs").
    /// Falls back to `1.0` for degenerate task sets.
    #[must_use]
    pub fn from_tasks(tasks: &crate::TaskSet) -> Self {
        let locations = tasks.locations();
        let max = crowd_geo::DistanceNormalizer::max_pairwise(&locations, &crowd_geo::Euclidean)
            .map_or(1.0, |n| n.max_distance());
        Self::new(max)
    }

    /// The normalisation constant.
    #[must_use]
    pub fn max_distance(&self) -> f64 {
        self.max_distance
    }

    /// Normalised distance between a worker and a task: the minimum over the
    /// worker's locations, divided by the constant, clamped into `[0, 1]`.
    #[must_use]
    pub fn between(&self, worker: &Worker, task: &Task) -> f64 {
        let raw = worker
            .locations
            .iter()
            .map(|loc| loc.distance(task.location))
            .fold(f64::INFINITY, f64::min);
        (raw / self.max_distance).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::synthetic_task;
    use crate::TaskSet;

    #[test]
    fn register_assigns_dense_ids() {
        let mut pool = WorkerPool::new();
        let a = pool.register(Worker::at("alice", Point::ORIGIN)).unwrap();
        let b = pool
            .register(Worker::at("bob", Point::new(1.0, 1.0)))
            .unwrap();
        assert_eq!(a, WorkerId(0));
        assert_eq!(b, WorkerId(1));
        assert_eq!(pool.worker(b).name, "bob");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn register_rejects_location_free_worker() {
        let mut pool = WorkerPool::new();
        let err = pool
            .register(Worker::with_locations("ghost", vec![]))
            .unwrap_err();
        assert!(matches!(err, CoreError::WorkerWithoutLocation(_)));
        assert!(pool.is_empty());
    }

    #[test]
    fn distance_takes_minimum_over_locations() {
        let tasks = TaskSet::new(vec![synthetic_task("poi", Point::new(10.0, 0.0), 3)]);
        let d = Distances::new(10.0);
        let w =
            Worker::with_locations("commuter", vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)]);
        let task = tasks.task(crate::TaskId(0));
        // min(10, 2) / 10 = 0.2
        assert!((d.between(&w, task) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn distance_is_clamped_to_one() {
        let tasks = TaskSet::new(vec![synthetic_task("far", Point::new(100.0, 0.0), 3)]);
        let d = Distances::new(10.0);
        let w = Worker::at("home", Point::ORIGIN);
        assert_eq!(d.between(&w, tasks.task(crate::TaskId(0))), 1.0);
    }

    #[test]
    fn from_tasks_uses_poi_diameter() {
        let tasks = TaskSet::new(vec![
            synthetic_task("a", Point::new(0.0, 0.0), 2),
            synthetic_task("b", Point::new(3.0, 4.0), 2),
        ]);
        let d = Distances::from_tasks(&tasks);
        assert!((d.max_distance() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_tasks_degenerate_falls_back_to_one() {
        let tasks = TaskSet::new(vec![synthetic_task("only", Point::ORIGIN, 2)]);
        assert_eq!(Distances::from_tasks(&tasks).max_distance(), 1.0);
    }

    #[test]
    fn from_workers_bulk_registration() {
        let pool = WorkerPool::from_workers(vec![
            Worker::at("a", Point::ORIGIN),
            Worker::at("b", Point::new(1.0, 0.0)),
        ])
        .unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.ids().count(), 2);
    }
}
