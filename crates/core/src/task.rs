//! POI labelling tasks.

use crowd_geo::Point;

use crate::{LabelBits, TaskId};

/// A candidate label for a POI.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Label {
    /// Human-readable label text (e.g. "park", "Olympics").
    pub text: String,
}

impl Label {
    /// Creates a label from its text.
    #[must_use]
    pub fn new(text: impl Into<String>) -> Self {
        Self { text: text.into() }
    }
}

/// A POI labelling task `t = {O_t, L_t}`: a named, geo-located POI together
/// with its candidate label set.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Task {
    /// Dense task id.
    pub id: TaskId,
    /// POI name (e.g. "Beijing Olympic Forest Park").
    pub name: String,
    /// POI geo-location.
    pub location: Point,
    /// Candidate labels `L_t`.
    pub labels: Vec<Label>,
}

impl Task {
    /// Number of candidate labels `|L_t|`.
    #[must_use]
    pub fn n_labels(&self) -> usize {
        self.labels.len()
    }
}

/// An immutable, id-indexed collection of tasks.
///
/// Tasks may carry *different* numbers of labels (the paper supports this;
/// its experiments fix `|L_t| = 10`). Label-level quantities are stored in
/// flat arrays addressed through [`TaskSet::label_offset`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskSet {
    tasks: Vec<Task>,
    /// `offsets[t] .. offsets[t + 1]` is task `t`'s slot range in flat
    /// label-level arrays; `offsets[n_tasks]` is the total label count.
    offsets: Vec<u32>,
}

impl TaskSet {
    /// Builds a task set, assigning dense ids in input order.
    ///
    /// Input `Task::id` values are overwritten with the dense index — this
    /// keeps construction infallible and ids trustworthy.
    ///
    /// # Panics
    /// Panics if any task has more than [`LabelBits::MAX_LABELS`] labels.
    #[must_use]
    pub fn new(mut tasks: Vec<Task>) -> Self {
        let mut offsets = Vec::with_capacity(tasks.len() + 1);
        offsets.push(0u32);
        for (i, task) in tasks.iter_mut().enumerate() {
            assert!(
                task.n_labels() <= LabelBits::MAX_LABELS,
                "task {} has {} labels; max is {}",
                task.name,
                task.n_labels(),
                LabelBits::MAX_LABELS
            );
            task.id = TaskId::from_index(i);
            let last = *offsets.last().expect("non-empty offsets");
            offsets.push(last + task.n_labels() as u32);
        }
        Self { tasks, offsets }
    }

    /// Number of tasks `|T|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the set has no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total number of label slots `Σ_t |L_t|`.
    #[must_use]
    pub fn total_labels(&self) -> usize {
        *self.offsets.last().expect("offsets never empty") as usize
    }

    /// The task with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// The task with the given id, or `None` if out of range.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.index())
    }

    /// Starting slot of task `id` in flat label-level arrays.
    #[must_use]
    pub fn label_offset(&self, id: TaskId) -> usize {
        self.offsets[id.index()] as usize
    }

    /// Flat slot of label `k` of task `id`.
    #[must_use]
    pub fn label_slot(&self, id: TaskId, k: usize) -> usize {
        debug_assert!(k < self.task(id).n_labels());
        self.label_offset(id) + k
    }

    /// Number of labels of task `id`.
    #[must_use]
    pub fn n_labels(&self, id: TaskId) -> usize {
        (self.offsets[id.index() + 1] - self.offsets[id.index()]) as usize
    }

    /// Iterates over tasks in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Iterates over all task ids.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len()).map(TaskId::from_index)
    }

    /// All task locations in id order (used to build spatial indexes).
    #[must_use]
    pub fn locations(&self) -> Vec<Point> {
        self.tasks.iter().map(|t| t.location).collect()
    }
}

/// Builds a task with `n` generically named labels — a convenience for
/// tests, examples and synthetic datasets.
#[must_use]
pub fn synthetic_task(name: impl Into<String>, location: Point, n_labels: usize) -> Task {
    let name = name.into();
    Task {
        id: TaskId(0), // reassigned by TaskSet::new
        labels: (0..n_labels)
            .map(|k| Label::new(format!("{name}-label-{k}")))
            .collect(),
        name,
        location,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_tasks() -> TaskSet {
        TaskSet::new(vec![
            synthetic_task("a", Point::new(0.0, 0.0), 10),
            synthetic_task("b", Point::new(1.0, 0.0), 5),
            synthetic_task("c", Point::new(0.0, 1.0), 7),
        ])
    }

    #[test]
    fn ids_are_dense_and_overwritten() {
        let ts = three_tasks();
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(t.id, TaskId::from_index(i));
        }
    }

    #[test]
    fn offsets_partition_the_flat_space() {
        let ts = three_tasks();
        assert_eq!(ts.total_labels(), 22);
        assert_eq!(ts.label_offset(TaskId(0)), 0);
        assert_eq!(ts.label_offset(TaskId(1)), 10);
        assert_eq!(ts.label_offset(TaskId(2)), 15);
        assert_eq!(ts.label_slot(TaskId(1), 4), 14);
        assert_eq!(ts.n_labels(TaskId(2)), 7);
    }

    #[test]
    fn variable_label_counts_supported() {
        let ts = three_tasks();
        assert_eq!(ts.task(TaskId(0)).n_labels(), 10);
        assert_eq!(ts.task(TaskId(1)).n_labels(), 5);
    }

    #[test]
    fn get_returns_none_out_of_range() {
        let ts = three_tasks();
        assert!(ts.get(TaskId(2)).is_some());
        assert!(ts.get(TaskId(3)).is_none());
    }

    #[test]
    fn empty_set_is_consistent() {
        let ts = TaskSet::new(vec![]);
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
        assert_eq!(ts.total_labels(), 0);
        assert_eq!(ts.ids().count(), 0);
    }

    #[test]
    fn locations_in_id_order() {
        let ts = three_tasks();
        let locs = ts.locations();
        assert_eq!(locs.len(), 3);
        assert_eq!(locs[1], Point::new(1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "max is 64")]
    fn oversized_label_set_rejected() {
        let _ = TaskSet::new(vec![synthetic_task("big", Point::ORIGIN, 65)]);
    }
}
