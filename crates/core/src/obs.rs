//! Instrumentation hooks: the [`Recorder`] trait and its handle.
//!
//! `crowd_core` stays dependency-free, so instead of depending on an
//! observability crate it *defines* the sink interface and lets the
//! embedding layer (e.g. `crowd_serve`) plug one in. When no recorder
//! is attached — the default — the hot paths skip even the clock reads:
//! every instrumentation site checks [`RecorderHandle::is_enabled`]
//! before touching `Instant::now()`, so an uninstrumented `Framework`
//! pays one branch on a `None` per event, nothing more.
//!
//! The handle is deliberately excluded from `serde` state: recorders
//! describe a *process*, not a campaign, so snapshots neither carry nor
//! restore them (the embedder re-attaches after restore).

use std::sync::Arc;
use std::time::Duration;

/// A sink for timing events produced inside the core framework.
///
/// Implementations must be cheap and non-blocking — these methods are
/// called from the EM and assignment hot paths.
pub trait Recorder: Send + Sync {
    /// An EM rebuild finished. `full_sweep` distinguishes an
    /// unconditional full sweep from a dirty (incremental) sweep;
    /// `answers_swept` is how many answers the sweep visited; `threads`
    /// is the effective E-step thread count the sweep ran with (1 = the
    /// sequential path).
    fn em_rebuild(&self, took: Duration, full_sweep: bool, answers_swept: usize, threads: usize);

    /// One assignment round finished: the assigner produced `pairs`
    /// worker–task pairs in `took`.
    fn assignment(&self, took: Duration, pairs: usize);
}

/// A cloneable, optional [`Recorder`] slot held by [`Framework`] and
/// [`OnlineModel`].
///
/// The handle is [`Default`]-empty, compares irrelevant to model state
/// (it is skipped by `serde`), and is safe to clone across shards — all
/// clones share the same underlying recorder.
///
/// [`Framework`]: crate::Framework
/// [`OnlineModel`]: crate::OnlineModel
#[derive(Clone, Default)]
pub struct RecorderHandle(Option<Arc<dyn Recorder>>);

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RecorderHandle")
            .field(&if self.0.is_some() { "attached" } else { "none" })
            .finish()
    }
}

impl RecorderHandle {
    /// A handle wrapping `recorder`.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self(Some(recorder))
    }

    /// The empty handle: every event is a no-op.
    #[must_use]
    pub fn none() -> Self {
        Self(None)
    }

    /// Whether a recorder is attached. Instrumentation sites gate their
    /// `Instant::now()` calls on this, keeping the disabled path free
    /// of clock reads.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Forwards an EM rebuild event, if a recorder is attached.
    pub fn em_rebuild(
        &self,
        took: Duration,
        full_sweep: bool,
        answers_swept: usize,
        threads: usize,
    ) {
        if let Some(r) = &self.0 {
            r.em_rebuild(took, full_sweep, answers_swept, threads);
        }
    }

    /// Forwards an assignment event, if a recorder is attached.
    pub fn assignment(&self, took: Duration, pairs: usize) {
        if let Some(r) = &self.0 {
            r.assignment(took, pairs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting {
        em: AtomicUsize,
        assign: AtomicUsize,
    }

    impl Recorder for Counting {
        fn em_rebuild(
            &self,
            _took: Duration,
            _full_sweep: bool,
            _answers_swept: usize,
            _threads: usize,
        ) {
            self.em.fetch_add(1, Ordering::Relaxed);
        }

        fn assignment(&self, _took: Duration, _pairs: usize) {
            self.assign.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn handle_forwards_when_attached_and_noops_when_not() {
        let none = RecorderHandle::default();
        assert!(!none.is_enabled());
        none.em_rebuild(Duration::ZERO, true, 0, 1); // no-op, no panic

        let sink = Arc::new(Counting {
            em: AtomicUsize::new(0),
            assign: AtomicUsize::new(0),
        });
        let handle = RecorderHandle::new(sink.clone());
        assert!(handle.is_enabled());
        let clone = handle.clone();
        handle.em_rebuild(Duration::from_millis(1), false, 7, 2);
        clone.assignment(Duration::from_millis(2), 3);
        assert_eq!(sink.em.load(Ordering::Relaxed), 1);
        assert_eq!(sink.assign.load(Ordering::Relaxed), 1);
        assert_eq!(format!("{handle:?}"), "RecorderHandle(\"attached\")");
    }
}
