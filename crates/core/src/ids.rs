//! Dense integer ids for tasks and workers.
//!
//! The whole workspace uses id-indexed `Vec` storage instead of hash maps:
//! ids are allocated densely from zero, so `id.index()` addresses flat
//! arrays directly (a hot-loop idiom recommended by the perf guide).

use std::fmt;

/// Identifier of a POI labelling task (equivalently, of its POI — the paper
/// uses task `t` and POI `O_t` interchangeably).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct TaskId(pub u32);

/// Identifier of a crowd worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct WorkerId(pub u32);

macro_rules! impl_id {
    ($name:ident, $prefix:literal) => {
        impl $name {
            /// Constructs the id from a dense index.
            #[must_use]
            pub const fn from_index(index: usize) -> Self {
                Self(index as u32)
            }

            /// The dense index backing this id.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

impl_id!(TaskId, "t");
impl_id!(WorkerId, "w");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        assert_eq!(TaskId::from_index(7).index(), 7);
        assert_eq!(WorkerId::from_index(0).index(), 0);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(TaskId(4).to_string(), "t4");
        assert_eq!(WorkerId(2).to_string(), "w2");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(TaskId(1) < TaskId(2));
        assert!(WorkerId(9) > WorkerId(3));
    }

    #[test]
    fn from_u32_conversion() {
        let t: TaskId = 5u32.into();
        assert_eq!(t, TaskId(5));
    }
}
