//! The bell-shaped distance quality functions and the distance-function set
//! (Definitions 3–6 of the paper).

use crate::prob;

/// A bell-shaped distance quality function (Definition 3):
///
/// ```text
/// f_λ(d) = (1 + e^(−λ·d²)) / 2,   d ∈ [0, 1]
/// ```
///
/// Values lie in `[0.5, 1]`: at distance 0 a worker is modelled as perfectly
/// reliable, at large distances reliability decays toward a random coin flip
/// (0.5). `λ` controls the decay rate — the paper's examples use
/// `λ ∈ {0.1, 10, 100}` (flat, medium, steep).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BellShaped {
    /// Decay-rate parameter λ (non-negative).
    pub lambda: f64,
}

impl BellShaped {
    /// Creates a bell-shaped function.
    ///
    /// # Panics
    /// Panics if `lambda` is negative or non-finite.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be finite and non-negative, got {lambda}"
        );
        Self { lambda }
    }

    /// Evaluates `f_λ(d)`. The distance is clamped into `[0, 1]` first, so
    /// callers never observe values outside `[0.5, 1]`.
    #[inline]
    #[must_use]
    pub fn eval(&self, d: f64) -> f64 {
        let d = d.clamp(0.0, 1.0);
        (1.0 + (-self.lambda * d * d).exp()) / 2.0
    }
}

/// The distance-function set `F = {f_λ1, …, f_λ|F|}` (Definition 4).
///
/// Both a worker's distance-aware quality (Definition 5) and a POI's
/// influence (Definition 6) are mixtures over this shared set; the mixture
/// weights `P(d_w = f_λ)` / `P(d_t = f_λ)` are multinomial parameters
/// estimated by the EM algorithm.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DistanceFunctionSet {
    functions: Vec<BellShaped>,
}

impl DistanceFunctionSet {
    /// Builds a set from decay parameters.
    ///
    /// # Panics
    /// Panics if `lambdas` is empty or any λ is invalid.
    #[must_use]
    pub fn new(lambdas: &[f64]) -> Self {
        assert!(
            !lambdas.is_empty(),
            "distance function set must be non-empty"
        );
        Self {
            functions: lambdas.iter().map(|&l| BellShaped::new(l)).collect(),
        }
    }

    /// The paper's experimental configuration: `F = {f_0.1, f_10, f_100}`.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(&[0.1, 10.0, 100.0])
    }

    /// Number of functions `|F|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Always `false`: construction rejects empty sets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// The functions in declaration order.
    #[must_use]
    pub fn functions(&self) -> &[BellShaped] {
        &self.functions
    }

    /// Index of the *flattest* function (smallest λ) — the one assigning the
    /// highest quality at any distance. Footnote 3 of the paper gives new
    /// workers / unanswered tasks all their mixture mass here.
    #[must_use]
    pub fn flattest(&self) -> usize {
        self.functions
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.lambda.total_cmp(&b.lambda))
            .map(|(i, _)| i)
            .expect("non-empty set")
    }

    /// Index of the *steepest* function (largest λ).
    #[must_use]
    pub fn steepest(&self) -> usize {
        self.functions
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.lambda.total_cmp(&b.lambda))
            .map(|(i, _)| i)
            .expect("non-empty set")
    }

    /// Evaluates every function at distance `d` into `out` (cleared first).
    ///
    /// This is the hot-path variant: EM precomputes these values once per
    /// answer and reuses them across iterations.
    pub fn values_into(&self, d: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.functions.iter().map(|f| f.eval(d)));
    }

    /// Evaluates every function at distance `d` into a fresh vector.
    #[must_use]
    pub fn values(&self, d: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        self.values_into(d, &mut out);
        out
    }

    /// Mixture quality `Σ_i weights[i] · f_λi(d)` (Definitions 5 and 6).
    ///
    /// # Panics
    /// Panics (debug) if `weights` is not a simplex of matching length.
    #[must_use]
    pub fn mixture(&self, weights: &[f64], d: f64) -> f64 {
        debug_assert_eq!(weights.len(), self.len());
        debug_assert!(prob::is_simplex(weights, 1e-6), "weights {weights:?}");
        self.functions
            .iter()
            .zip(weights)
            .map(|(f, &w)| w * f.eval(d))
            .sum()
    }

    /// Mixture quality from precomputed function values (`fvals[i] =
    /// f_λi(d)`), avoiding the `exp` calls in inner loops.
    #[inline]
    #[must_use]
    pub fn mixture_from_values(weights: &[f64], fvals: &[f64]) -> f64 {
        debug_assert_eq!(weights.len(), fvals.len());
        weights.iter().zip(fvals).map(|(&w, &f)| w * f).sum()
    }
}

impl Default for DistanceFunctionSet {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_value_range_and_endpoints() {
        for lambda in [0.0, 0.1, 1.0, 10.0, 100.0] {
            let f = BellShaped::new(lambda);
            assert_eq!(f.eval(0.0), 1.0);
            for d in [0.0, 0.1, 0.5, 0.9, 1.0] {
                let v = f.eval(d);
                assert!((0.5..=1.0).contains(&v), "λ={lambda} d={d} v={v}");
            }
        }
    }

    #[test]
    fn bell_matches_paper_figure4_anchors() {
        // Figure 4: with λ=100 the quality reaches ~0.5 at distance 0.2;
        // with λ=0.1 it stays above 0.9 at distance 1.0.
        let steep = BellShaped::new(100.0);
        assert!(steep.eval(0.2) < 0.51);
        let flat = BellShaped::new(0.1);
        assert!(flat.eval(1.0) > 0.9);
    }

    #[test]
    fn bell_is_monotone_decreasing_in_distance() {
        let f = BellShaped::new(10.0);
        let mut prev = f.eval(0.0);
        for i in 1..=100 {
            let v = f.eval(f64::from(i) / 100.0);
            assert!(v <= prev + 1e-15);
            prev = v;
        }
    }

    #[test]
    fn bell_clamps_out_of_range_distances() {
        let f = BellShaped::new(10.0);
        assert_eq!(f.eval(-0.5), f.eval(0.0));
        assert_eq!(f.eval(2.0), f.eval(1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn bell_rejects_negative_lambda() {
        let _ = BellShaped::new(-1.0);
    }

    #[test]
    fn set_flattest_and_steepest() {
        let set = DistanceFunctionSet::paper_default();
        assert_eq!(set.len(), 3);
        assert_eq!(set.flattest(), 0); // λ = 0.1
        assert_eq!(set.steepest(), 2); // λ = 100
    }

    #[test]
    fn values_match_individual_evaluation() {
        let set = DistanceFunctionSet::paper_default();
        let d = 0.37;
        let vals = set.values(d);
        for (v, f) in vals.iter().zip(set.functions()) {
            assert_eq!(*v, f.eval(d));
        }
    }

    #[test]
    fn mixture_of_uniform_weights_is_mean() {
        let set = DistanceFunctionSet::paper_default();
        let w = vec![1.0 / 3.0; 3];
        let d = 0.4;
        let mean: f64 = set.values(d).iter().sum::<f64>() / 3.0;
        assert!((set.mixture(&w, d) - mean).abs() < 1e-12);
    }

    #[test]
    fn mixture_from_values_matches_mixture() {
        let set = DistanceFunctionSet::paper_default();
        let w = vec![0.2, 0.3, 0.5];
        let d = 0.61;
        let fvals = set.values(d);
        assert!(
            (set.mixture(&w, d) - DistanceFunctionSet::mixture_from_values(&w, &fvals)).abs()
                < 1e-12
        );
    }

    #[test]
    fn degenerate_mixture_recovers_single_function() {
        let set = DistanceFunctionSet::paper_default();
        let d = 0.25;
        assert_eq!(set.mixture(&[1.0, 0.0, 0.0], d), set.functions()[0].eval(d));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_set_rejected() {
        let _ = DistanceFunctionSet::new(&[]);
    }
}
