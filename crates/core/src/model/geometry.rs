//! The answer-geometry cache: per-answer terms that never change once the
//! answer is logged, precomputed at submit time and shared by every
//! inference path.
//!
//! EM's E-step evaluates, for every answer in every iteration, the distance
//! function values `f_λj(d(w, t))` and the answer's flat label-slot base.
//! Both are pure functions of the (immutable) answer record, so the
//! [`OnlineModel`](crate::OnlineModel) appends them to this cache exactly
//! once per submission and the batch, dirty-set and incremental estimators
//! all read the same flat matrix instead of recomputing `exp` calls and
//! offset lookups per iteration.

use crate::{Answer, AnswerLog, DistanceFunctionSet, TaskSet};

/// Append-only flat matrix of per-answer precomputed geometry.
///
/// For answer stream position `i` (matching [`AnswerLog`] arrival order):
/// * `fvals(i)[j] = f_λj(d_i)` — the distance-function values;
/// * `base(i)` — the flat label-slot offset of the answer's task;
/// * `bit_range(i)` — the answer's span in the global bit stream (one slot
///   per label verdict), used to index per-answer statistic caches.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AnswerGeometry {
    n_funcs: usize,
    /// `f_λj(d_i)`, flat: answer-major, function-minor.
    fvals: Vec<f64>,
    /// Flat label-slot base of the answer's task.
    base: Vec<u32>,
    /// Cumulative label-bit offsets; `len() + 1` entries.
    bit_offset: Vec<u32>,
}

impl AnswerGeometry {
    /// An empty cache for a distance-function set of size `n_funcs`.
    #[must_use]
    pub fn new(n_funcs: usize) -> Self {
        assert!(n_funcs > 0, "distance function set must be non-empty");
        Self {
            n_funcs,
            fvals: Vec::new(),
            base: Vec::new(),
            bit_offset: vec![0],
        }
    }

    /// Builds the cache for every answer already in `log`.
    #[must_use]
    pub fn build(tasks: &TaskSet, log: &AnswerLog, fset: &DistanceFunctionSet) -> Self {
        let mut out = Self::new(fset.len());
        out.sync(tasks, log, fset);
        out
    }

    /// Appends the geometry of one just-logged answer. Call in arrival
    /// order: entry `i` must describe `log.answers()[i]`.
    ///
    /// # Panics
    /// Panics if the task's label-slot base or the cumulative label-bit
    /// count exceeds `u32::MAX` — failing loudly beats silently aliasing
    /// earlier answers' slots.
    pub fn push(&mut self, tasks: &TaskSet, fset: &DistanceFunctionSet, answer: &Answer) {
        debug_assert_eq!(fset.len(), self.n_funcs);
        for f in fset.functions() {
            self.fvals.push(f.eval(answer.distance));
        }
        self.base.push(
            u32::try_from(tasks.label_offset(answer.task)).expect("label slots exceed u32 range"),
        );
        let last = *self.bit_offset.last().expect("non-empty offsets");
        let bits = u32::try_from(answer.bits.len()).expect("label count exceeds u32 range");
        self.bit_offset
            .push(last.checked_add(bits).expect("label bits exceed u32 range"));
    }

    /// Catches up with `log`: appends entries for any answers logged beyond
    /// the cache's current length. A no-op when already in sync.
    pub fn sync(&mut self, tasks: &TaskSet, log: &AnswerLog, fset: &DistanceFunctionSet) {
        for answer in &log.answers()[self.len()..] {
            self.push(tasks, fset, answer);
        }
    }

    /// Number of answers covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// `true` when no answers are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// `|F|` — functions per answer.
    #[must_use]
    pub fn n_funcs(&self) -> usize {
        self.n_funcs
    }

    /// Total label bits across all covered answers.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        *self.bit_offset.last().expect("non-empty offsets") as usize
    }

    /// Precomputed function values for answer stream position `i`.
    #[must_use]
    pub fn fvals(&self, i: usize) -> &[f64] {
        &self.fvals[i * self.n_funcs..(i + 1) * self.n_funcs]
    }

    /// The flat label-slot base of answer `i`'s task.
    #[must_use]
    pub fn base(&self, i: usize) -> usize {
        self.base[i] as usize
    }

    /// Answer `i`'s span in the global label-bit stream.
    #[must_use]
    pub fn bit_range(&self, i: usize) -> std::ops::Range<usize> {
        self.bit_offset[i] as usize..self.bit_offset[i + 1] as usize
    }

    /// Cumulative label-bit offset *before* answer `i`; valid for
    /// `i ∈ 0..=len()` (`bit_offset_at(len()) == total_bits()`). The
    /// data-parallel E-step uses this to translate an answer-index chunk
    /// boundary into its span of the flat posterior buffer.
    #[must_use]
    pub fn bit_offset_at(&self, i: usize) -> usize {
        self.bit_offset[i] as usize
    }

    /// Drops all entries (the task set changed; offsets are invalid).
    pub fn clear(&mut self) {
        self.fvals.clear();
        self.base.clear();
        self.bit_offset.truncate(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::synthetic_task;
    use crate::{LabelBits, TaskId, WorkerId};
    use crowd_geo::Point;

    fn world() -> (TaskSet, AnswerLog) {
        let tasks = TaskSet::new(vec![
            synthetic_task("a", Point::new(0.0, 0.0), 3),
            synthetic_task("b", Point::new(1.0, 0.0), 2),
        ]);
        let mut log = AnswerLog::new(tasks.len(), 2);
        for (w, t, d) in [(0u32, 1u32, 0.3), (1, 0, 0.7), (0, 0, 0.05)] {
            let n = tasks.n_labels(TaskId(t));
            log.push(
                &tasks,
                crate::Answer {
                    worker: WorkerId(w),
                    task: TaskId(t),
                    bits: LabelBits::zeros(n),
                    distance: d,
                },
            )
            .unwrap();
        }
        (tasks, log)
    }

    #[test]
    fn build_matches_direct_evaluation() {
        let (tasks, log) = world();
        let fset = DistanceFunctionSet::paper_default();
        let geo = AnswerGeometry::build(&tasks, &log, &fset);
        assert_eq!(geo.len(), log.len());
        assert_eq!(geo.n_funcs(), 3);
        for (i, answer) in log.answers().iter().enumerate() {
            assert_eq!(geo.fvals(i), fset.values(answer.distance).as_slice());
            assert_eq!(geo.base(i), tasks.label_offset(answer.task));
        }
    }

    #[test]
    fn bit_ranges_partition_the_bit_stream() {
        let (tasks, log) = world();
        let fset = DistanceFunctionSet::paper_default();
        let geo = AnswerGeometry::build(&tasks, &log, &fset);
        // Answers: task 1 (2 labels), task 0 (3), task 0 (3) → 8 bits.
        assert_eq!(geo.total_bits(), 8);
        assert_eq!(geo.bit_range(0), 0..2);
        assert_eq!(geo.bit_range(1), 2..5);
        assert_eq!(geo.bit_range(2), 5..8);
    }

    #[test]
    fn sync_appends_only_missing_entries() {
        let (tasks, mut log) = world();
        let fset = DistanceFunctionSet::paper_default();
        let mut geo = AnswerGeometry::build(&tasks, &log, &fset);
        let before = geo.len();
        geo.sync(&tasks, &log, &fset); // no-op
        assert_eq!(geo.len(), before);
        log.push(
            &tasks,
            crate::Answer {
                worker: WorkerId(1),
                task: TaskId(1),
                bits: LabelBits::zeros(2),
                distance: 0.9,
            },
        )
        .unwrap();
        geo.sync(&tasks, &log, &fset);
        assert_eq!(geo.len(), log.len());
        assert_eq!(geo.fvals(before), fset.values(0.9).as_slice());
    }

    #[test]
    fn clear_resets_to_empty() {
        let (tasks, log) = world();
        let fset = DistanceFunctionSet::paper_default();
        let mut geo = AnswerGeometry::build(&tasks, &log, &fset);
        geo.clear();
        assert!(geo.is_empty());
        assert_eq!(geo.total_bits(), 0);
        geo.sync(&tasks, &log, &fset);
        assert_eq!(geo.len(), log.len());
    }
}
